#!/usr/bin/env bash
# Zero-copy artifact smoke test against the real CLI.
#
# Exercises the v2 sectioned engine artifact end to end:
#   1. `thor inspect --engine` prints the section directory and verifies
#      every section checksum on a fresh artifact;
#   2. mapped serving (`--engine-mmap on`, the default) is byte-identical
#      to owned serving (`--engine-mmap off`) on the same documents;
#   3. streaming ingestion over a corpus directory (`--stream --chunk`)
#      is byte-identical to the all-in-memory batch run;
#   4. two `thor serve` processes mmap the same artifact concurrently and
#      both answer byte-identically to the batch CLI;
#   5. a corrupted section is rejected by name by both `thor inspect`
#      (non-zero exit) and `thor enrich --engine`, never served.
#
# Usage: scripts/mmap_smoke.sh  (run from anywhere; builds if needed)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
THOR="$ROOT/target/release/thor"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/thor-mmap.XXXXXX")"
SERVE_PIDS=()
cleanup() {
    for pid in "${SERVE_PIDS[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

if [[ ! -x "$THOR" ]]; then
    cargo build --release --manifest-path "$ROOT/Cargo.toml"
fi

DATA="$WORK/data"
"$THOR" generate --dataset disease --scale 0.08 --seed 7 --out "$DATA" 2>/dev/null
CORPUS="$DATA/docs/validation"
DOCS=("$CORPUS"/*.txt)
ENGINE="$WORK/disease.thorengine"
"$THOR" build --table "$DATA/enrichment_table.csv" --vectors "$DATA/vectors.txt" \
    --tau 0.7 --engine "$ENGINE" 2>/dev/null
echo "mmap smoke: ${#DOCS[@]} documents"

echo "-- inspect the fresh artifact"
"$THOR" inspect --engine "$ENGINE" >"$WORK/inspect.log" \
    || fail "thor inspect rejected a fresh artifact: $(cat "$WORK/inspect.log")"
grep -q "THORENG v2" "$WORK/inspect.log" || fail "inspect did not name the format"
grep -q "^meta " "$WORK/inspect.log" || fail "inspect directory is missing the meta section"
grep -q "section checksums verified" "$WORK/inspect.log" \
    || fail "inspect did not verify section checksums"
echo "   directory printed, all checksums verified"

echo "-- mapped vs owned enrich: byte-identical"
"$THOR" enrich --engine "$ENGINE" --engine-mmap off \
    --out "$WORK/owned.csv" --entities "$WORK/owned.tsv" "${DOCS[@]}" 2>/dev/null
"$THOR" enrich --engine "$ENGINE" --engine-mmap on \
    --out "$WORK/mapped.csv" --entities "$WORK/mapped.tsv" "${DOCS[@]}" 2>/dev/null
cmp "$WORK/owned.csv" "$WORK/mapped.csv" || fail "mapped CSV differs from owned"
cmp "$WORK/owned.tsv" "$WORK/mapped.tsv" || fail "mapped entities differ from owned"
echo "   identical output owned vs mapped"

echo "-- streaming corpus-directory ingestion: byte-identical to batch"
"$THOR" enrich --engine "$ENGINE" --stream --chunk 3 \
    --out "$WORK/stream.csv" --entities "$WORK/stream.tsv" "$CORPUS" 2>/dev/null
cmp "$WORK/owned.csv" "$WORK/stream.csv" || fail "streaming CSV differs from batch"
cmp "$WORK/owned.tsv" "$WORK/stream.tsv" || fail "streaming entities differ from batch"
echo "   identical output streamed in chunks of 3"

echo "-- two concurrent serve processes share one artifact"
json_escape_file() {
    awk 'BEGIN{ORS=""} {gsub(/\\/,"\\\\"); gsub(/"/,"\\\""); gsub(/\t/,"\\t"); gsub(/\r/,"\\r");
         if (NR>1) printf "\\n"; printf "%s", $0}' "$1"
}
BODY="$WORK/batch.json"
{
    printf '{"documents":['
    sep=""
    for doc in "${DOCS[@]}"; do
        stem="$(basename "$doc" .txt)"
        printf '%s{"id":"%s","text":"' "$sep" "$stem"
        json_escape_file "$doc"
        printf '"}'
        sep=","
    done
    printf ']}'
} >"$BODY"
ADDRS=()
for i in 1 2; do
    : >"$WORK/addr$i"
    "$THOR" serve --engine "$ENGINE" --addr 127.0.0.1:0 --addr-file "$WORK/addr$i" \
        2>"$WORK/serve$i.log" &
    SERVE_PIDS+=($!)
done
for i in 1 2; do
    addr=""
    for _ in $(seq 1 100); do
        addr="$(cat "$WORK/addr$i" 2>/dev/null || true)"
        [[ -n "$addr" ]] && break
        kill -0 "${SERVE_PIDS[$((i - 1))]}" 2>/dev/null \
            || fail "serve $i died on startup: $(cat "$WORK/serve$i.log")"
        sleep 0.1
    done
    [[ -n "$addr" ]] || fail "serve $i never wrote its bound address"
    ADDRS+=("$addr")
done
for i in 1 2; do
    curl -sS -o "$WORK/served$i.csv" --data-binary @"$BODY" \
        "http://${ADDRS[$((i - 1))]}/enrich" || fail "POST /enrich to serve $i failed"
    cmp "$WORK/owned.csv" "$WORK/served$i.csv" \
        || fail "serve $i CSV differs from batch CLI"
done
for pid in "${SERVE_PIDS[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
done
SERVE_PIDS=()
echo "   both processes served the batch-CLI bytes"

echo "-- corrupted section is rejected by name"
cp "$ENGINE" "$WORK/corrupt.thorengine"
# Offset 100 lands inside `meta`, the first (eagerly verified) section.
printf '\xff' | dd of="$WORK/corrupt.thorengine" bs=1 seek=100 conv=notrunc 2>/dev/null
set +e
"$THOR" inspect --engine "$WORK/corrupt.thorengine" >"$WORK/badinspect.log" 2>&1
status=$?
set -e
[[ $status -ne 0 ]] || fail "inspect passed a corrupted artifact"
grep -q "checksum mismatch" "$WORK/badinspect.log" \
    || fail "inspect corruption error is not named: $(cat "$WORK/badinspect.log")"
set +e
"$THOR" enrich --engine "$WORK/corrupt.thorengine" \
    --out "$WORK/x.csv" --entities "$WORK/x.tsv" "${DOCS[@]}" 2>"$WORK/badenrich.log"
status=$?
set -e
[[ $status -ne 0 ]] || fail "enrich served a corrupted mapped artifact"
grep -Eq "checksum|truncated|artifact" "$WORK/badenrich.log" \
    || fail "enrich corruption error is not named: $(cat "$WORK/badenrich.log")"
[[ ! -f "$WORK/x.csv" ]] || fail "corrupted run still wrote output"
echo "   inspect and enrich both reject the flipped byte"

echo "mmap smoke: OK"
