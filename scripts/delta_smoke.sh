#!/usr/bin/env bash
# Incremental-engine smoke test against the real CLI.
#
# Exercises the delta-artifact chain end to end:
#   1. build a base engine; stack two seed deltas on it with `thor
#      delta`; enriching from the chain — mapped and owned — is
#      byte-identical to a fresh `thor build` of the evolved table;
#   2. `thor inspect` recognizes the chain: depth 2, the base build's
#      fingerprint, every checksum verified;
#   3. a running `thor serve` hot-swaps the chain on SIGHUP, reports
#      its depth in /healthz, and serves the fresh build's exact bytes;
#   4. `thor compact` folds the chain into the very bytes the fresh
#      build saved; swapping to the folded artifact changes nothing.
#
# Usage: scripts/delta_smoke.sh  (run from anywhere; builds if needed)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
THOR="$ROOT/target/release/thor"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/thor-delta.XXXXXX")"
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

if [[ ! -x "$THOR" ]]; then
    cargo build --release --manifest-path "$ROOT/Cargo.toml"
fi

DATA="$WORK/data"
"$THOR" generate --dataset disease --scale 0.08 --seed 7 --out "$DATA" 2>/dev/null
DOCS=("$DATA"/docs/validation/*.txt)
TABLE="$DATA/enrichment_table.csv"
VECTORS="$DATA/vectors.txt"
echo "delta smoke: ${#DOCS[@]} documents"

BASE_FP="$("$THOR" build --table "$TABLE" --vectors "$VECTORS" \
    --engine "$WORK/base.eng" 2>&1 | sed -n 's/.*fingerprint \([^ ]*\)$/\1/p')"
[[ -n "$BASE_FP" ]] || fail "base build did not report a fingerprint"

# Two seed deltas: a new subject row each, filling the first non-subject
# column with a word that exists in the vector vocabulary.
SUBJECT_COL="$(head -1 "$TABLE" | cut -d, -f1)"
VALUE_COL="$(head -1 "$TABLE" | cut -d, -f2)"
ARITY="$(head -1 "$TABLE" | awk -F, '{print NF}')"
W1="$(awk 'NR==2{print $1}' "$VECTORS")"
W2="$(awk 'NR==3{print $1}' "$VECTORS")"
printf '%s,%s\nZeta Fever,%s\n' "$SUBJECT_COL" "$VALUE_COL" "$W1" >"$WORK/rows1.csv"
printf '%s,%s\nOmega Pox,%s\n' "$SUBJECT_COL" "$VALUE_COL" "$W2" >"$WORK/rows2.csv"

"$THOR" delta --engine "$WORK/base.eng" --add-seeds "$WORK/rows1.csv" \
    --out "$WORK/d1.eng" --note "smoke delta 1" 2>/dev/null
"$THOR" delta --engine "$WORK/d1.eng" --add-seeds "$WORK/rows2.csv" \
    --out "$WORK/d2.eng" --note "smoke delta 2" 2>/dev/null

# The same final table, built from scratch: the enrichment table plus
# the two delta rows (empty cells for the remaining concepts).
PAD="$(printf '%*s' $((ARITY - 2)) '' | tr ' ' ',')"
{
    cat "$TABLE"
    printf 'Zeta Fever,%s%s\n' "$W1" "$PAD"
    printf 'Omega Pox,%s%s\n' "$W2" "$PAD"
} >"$WORK/evolved.csv"
"$THOR" build --table "$WORK/evolved.csv" --vectors "$VECTORS" \
    --engine "$WORK/fresh.eng" 2>/dev/null

echo "-- chain enrich output vs fresh build of the evolved table"
"$THOR" enrich --engine "$WORK/fresh.eng" --out "$WORK/direct.csv" "${DOCS[@]}" 2>/dev/null
"$THOR" enrich --engine "$WORK/d2.eng" --out "$WORK/chain_mapped.csv" "${DOCS[@]}" 2>/dev/null
"$THOR" enrich --engine "$WORK/d2.eng" --engine-mmap off \
    --out "$WORK/chain_owned.csv" "${DOCS[@]}" 2>/dev/null
cmp "$WORK/direct.csv" "$WORK/chain_mapped.csv" || fail "mapped chain diverged from fresh build"
cmp "$WORK/direct.csv" "$WORK/chain_owned.csv" || fail "owned chain diverged from fresh build"
echo "   byte-identical (mapped and owned)"

echo "-- inspect recognizes the chain"
"$THOR" inspect --engine "$WORK/d2.eng" >"$WORK/inspect.txt" || fail "inspect rejected the chain"
grep -q "delta chain" "$WORK/inspect.txt" || fail "inspect did not call the artifact a chain"
grep -q "depth 2" "$WORK/inspect.txt" || fail "inspect did not report depth 2"
grep -q "$BASE_FP" "$WORK/inspect.txt" || fail "inspect did not name the base fingerprint"
grep -q "smoke delta 2" "$WORK/inspect.txt" || fail "inspect did not echo the delta note"
grep -q "checksums verified" "$WORK/inspect.txt" || fail "inspect did not verify the chain"
echo "   chain printed and verified"

# The documents as a JSON request body (id = file stem, like the CLI).
json_escape_file() {
    awk 'BEGIN{ORS=""} {gsub(/\\/,"\\\\"); gsub(/"/,"\\\""); gsub(/\t/,"\\t"); gsub(/\r/,"\\r");
         if (NR>1) printf "\\n"; printf "%s", $0}' "$1"
}
BODY="$WORK/batch.json"
{
    printf '{"documents":['
    sep=""
    for doc in "${DOCS[@]}"; do
        stem="$(basename "$doc" .txt)"
        printf '%s{"id":"%s","text":"' "$sep" "$stem"
        json_escape_file "$doc"
        printf '"}'
        sep=","
    done
    printf ']}'
} >"$BODY"

ENGINE="$WORK/serve.eng"
install_engine() { # args: source
    cp "$1" "$ENGINE.tmp"
    mv "$ENGINE.tmp" "$ENGINE"
}
healthz() {
    curl -sS "http://$ADDR/healthz"
}
wait_for_epoch() { # args: want
    for _ in $(seq 1 100); do
        [[ "$(healthz | grep -o '"epoch":[0-9]*' | cut -d: -f2)" == "$1" ]] && return 0
        sleep 0.1
    done
    fail "server never reached epoch $1 (log: $(tail -3 "$WORK/serve.log"))"
}

echo "-- SIGHUP hot-swap of the chain into a running serve"
install_engine "$WORK/base.eng"
: >"$WORK/addr"
"$THOR" serve --engine "$ENGINE" --addr 127.0.0.1:0 --addr-file "$WORK/addr" \
    2>"$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    ADDR="$(cat "$WORK/addr" 2>/dev/null || true)"
    [[ -n "$ADDR" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "serve died on startup: $(cat "$WORK/serve.log")"
    sleep 0.1
done
[[ -n "$ADDR" ]] || fail "serve never wrote its bound address"
healthz | grep -q '"chain_depth":0' || fail "base generation should report chain_depth 0"

install_engine "$WORK/d2.eng"
kill -HUP "$SERVE_PID"
wait_for_epoch 2
healthz | grep -q '"chain_depth":2' || fail "swapped chain should report chain_depth 2"
curl -sS -o "$WORK/served_chain.csv" --data-binary @"$BODY" "http://$ADDR/enrich" \
    || fail "POST /enrich on the chain failed"
cmp "$WORK/direct.csv" "$WORK/served_chain.csv" || fail "served chain diverged from fresh build"
echo "   chain swapped in, depth 2 in /healthz, byte-identical"

echo "-- compact folds the chain into the fresh build's bytes"
"$THOR" compact --engine "$WORK/d2.eng" --out "$WORK/folded.eng" 2>/dev/null \
    || fail "thor compact failed"
cmp "$WORK/folded.eng" "$WORK/fresh.eng" \
    || fail "compacted artifact is not byte-identical to the fresh build"
install_engine "$WORK/folded.eng"
kill -HUP "$SERVE_PID"
wait_for_epoch 3
healthz | grep -q '"chain_depth":0' || fail "folded artifact should report chain_depth 0"
curl -sS -o "$WORK/served_folded.csv" --data-binary @"$BODY" "http://$ADDR/enrich" \
    || fail "POST /enrich on the folded artifact failed"
cmp "$WORK/direct.csv" "$WORK/served_folded.csv" || fail "folded artifact served foreign bytes"
echo "   folded byte-identical, depth back to 0"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || fail "drain after delta smoke failed"
SERVE_PID=""

echo "delta smoke: OK"
