#!/usr/bin/env bash
# Engine build/serve smoke test against the real CLI.
#
# Exercises the PreparedEngine artifact end to end:
#   1. `thor build` writes an engine artifact; `thor enrich --engine`
#      serves byte-identical enriched CSV and entities TSV to a direct
#      `thor enrich` from the same table/vectors/tau, for thread
#      counts 1 and 4 (the artifact freezes behavior, not parallelism);
#   2. frozen options (--table/--vectors/--tau) conflict with --engine
#      and are rejected with a named error;
#   3. a corrupted artifact (single flipped payload byte) is rejected
#      with a checksum error, never served;
#   4. checkpoint/resume works when serving from an artifact: a run
#      killed mid-extraction and resumed off the same engine file is
#      byte-identical to the uninterrupted engine run.
#
# Usage: scripts/engine_smoke.sh  (run from anywhere; builds if needed)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
THOR="$ROOT/target/release/thor"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/thor-engine.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

if [[ ! -x "$THOR" ]]; then
    cargo build --release --manifest-path "$ROOT/Cargo.toml"
fi

DATA="$WORK/data"
"$THOR" generate --dataset disease --scale 0.08 --seed 7 --out "$DATA" 2>/dev/null
DOCS=("$DATA"/docs/validation/*.txt)
TABLE="$DATA/enrichment_table.csv"
VECS="$DATA/vectors.txt"
ENGINE="$WORK/disease.thorengine"
echo "engine smoke: ${#DOCS[@]} documents"

echo "-- build the engine artifact"
"$THOR" build --table "$TABLE" --vectors "$VECS" --tau 0.7 \
    --engine "$ENGINE" 2>"$WORK/build.log"
[[ -s "$ENGINE" ]] || fail "thor build wrote no artifact"
grep -q "fingerprint" "$WORK/build.log" || fail "build did not report a fingerprint"

echo "-- direct enrich vs engine-served enrich: byte-identical"
"$THOR" enrich --table "$TABLE" --vectors "$VECS" --tau 0.7 \
    --out "$WORK/direct.csv" --entities "$WORK/direct.tsv" "${DOCS[@]}" 2>/dev/null
for threads in 1 4; do
    "$THOR" enrich --engine "$ENGINE" --threads "$threads" \
        --out "$WORK/served.csv" --entities "$WORK/served.tsv" "${DOCS[@]}" 2>/dev/null
    cmp "$WORK/direct.csv" "$WORK/served.csv" \
        || fail "engine-served CSV differs from direct enrich (threads $threads)"
    cmp "$WORK/direct.tsv" "$WORK/served.tsv" \
        || fail "engine-served entities differ from direct enrich (threads $threads)"
    rm -f "$WORK/served.csv" "$WORK/served.tsv"
done
echo "   identical output at threads 1 and 4"

echo "-- frozen options conflict with --engine"
for flag in "--table $TABLE" "--vectors $VECS" "--tau 0.7"; do
    set +e
    # shellcheck disable=SC2086
    "$THOR" enrich --engine "$ENGINE" $flag \
        --out "$WORK/x.csv" --entities "$WORK/x.tsv" "${DOCS[@]}" 2>"$WORK/conflict.log"
    status=$?
    set -e
    [[ $status -ne 0 ]] || fail "enrich accepted --engine with $flag"
    grep -q "conflicts with --engine" "$WORK/conflict.log" \
        || fail "conflict error for $flag is not named"
done
echo "   all three frozen options rejected by name"

echo "-- corrupted artifact is rejected, never served"
cp "$ENGINE" "$WORK/corrupt.thorengine"
# Flip one payload byte (offset 100 is well past the 28-byte header).
printf '\xff' | dd of="$WORK/corrupt.thorengine" bs=1 seek=100 conv=notrunc 2>/dev/null
set +e
"$THOR" enrich --engine "$WORK/corrupt.thorengine" \
    --out "$WORK/x.csv" --entities "$WORK/x.tsv" "${DOCS[@]}" 2>"$WORK/corrupt.log"
status=$?
set -e
[[ $status -ne 0 ]] || fail "enrich served a corrupted engine artifact"
grep -Eq "checksum|truncated|artifact" "$WORK/corrupt.log" \
    || fail "corruption error is not named: $(cat "$WORK/corrupt.log")"
[[ ! -f "$WORK/x.csv" ]] || fail "corrupted run still wrote output"
echo "   checksum rejection works"

echo "-- checkpoint/resume off the engine artifact"
ABORT_AT=$((${#DOCS[@]} / 2 + 1))
CKPT="$WORK/ckpt"
set +e
THOR_FAILPOINTS="extract:abort@$ABORT_AT" \
    "$THOR" enrich --engine "$ENGINE" --checkpoint "$CKPT" \
    --out "$WORK/dead.csv" --entities "$WORK/dead.tsv" "${DOCS[@]}" 2>/dev/null
status=$?
set -e
[[ $status -ne 0 ]] || fail "aborted engine run exited 0"
[[ -f "$CKPT/state.tsv" ]] || fail "no partial checkpoint on disk"
"$THOR" enrich --engine "$ENGINE" --checkpoint "$CKPT" --resume \
    --out "$WORK/resumed.csv" --entities "$WORK/resumed.tsv" "${DOCS[@]}" 2>"$WORK/resume.log"
grep -q "resumed from checkpoint" "$WORK/resume.log" \
    || fail "resume did not pick up the checkpoint"
cmp "$WORK/direct.csv" "$WORK/resumed.csv" \
    || fail "resumed engine run differs from uninterrupted output"
cmp "$WORK/direct.tsv" "$WORK/resumed.tsv" \
    || fail "resumed engine entities differ from uninterrupted output"
echo "   resume off the artifact is byte-identical"

echo "engine smoke: OK"
