#!/usr/bin/env bash
# Hot-reload chaos smoke test against the real CLI.
#
# Exercises `thor serve` engine hot-swapping end to end:
#   1. serve engine v_a; a served batch is byte-identical to the batch
#      CLI on v_a, and X-Thor-Engine names generation @1;
#   2. rebuild the artifact as v_b in place, SIGHUP: the server swaps
#      without restarting, serves v_b's exact bytes as generation @2,
#      and logs one `reloaded` line;
#   3. corrupt the artifact, SIGHUP: the reload is rejected by name in
#      the log, the epoch does not move, and v_b keeps answering
#      byte-identically;
#   4. a `worker_panic` failpoint kills an accept worker: the
#      supervisor restarts it (worker.restarts in /metrics) and the
#      server keeps serving.
#
# Usage: scripts/reload_smoke.sh  (run from anywhere; builds if needed)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
THOR="$ROOT/target/release/thor"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/thor-reload.XXXXXX")"
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

if [[ ! -x "$THOR" ]]; then
    cargo build --release --manifest-path "$ROOT/Cargo.toml"
fi

DATA="$WORK/data"
"$THOR" generate --dataset disease --scale 0.08 --seed 7 --out "$DATA" 2>/dev/null
DOCS=("$DATA"/docs/validation/*.txt)
ENGINE="$WORK/disease.thorengine"

# Two generations of the same engine: different tau, different
# fingerprints, each with its own batch-CLI reference output.
"$THOR" build --table "$DATA/enrichment_table.csv" --vectors "$DATA/vectors.txt" \
    --tau 0.7 --engine "$WORK/v_a.thorengine" 2>/dev/null
"$THOR" build --table "$DATA/enrichment_table.csv" --vectors "$DATA/vectors.txt" \
    --tau 0.55 --engine "$WORK/v_b.thorengine" 2>/dev/null
"$THOR" enrich --engine "$WORK/v_a.thorengine" --out "$WORK/direct_a.csv" "${DOCS[@]}" 2>/dev/null
"$THOR" enrich --engine "$WORK/v_b.thorengine" --out "$WORK/direct_b.csv" "${DOCS[@]}" 2>/dev/null
echo "reload smoke: ${#DOCS[@]} documents, two engine generations"

# The documents as a JSON request body (id = file stem, like the CLI).
json_escape_file() {
    awk 'BEGIN{ORS=""} {gsub(/\\/,"\\\\"); gsub(/"/,"\\\""); gsub(/\t/,"\\t"); gsub(/\r/,"\\r");
         if (NR>1) printf "\\n"; printf "%s", $0}' "$1"
}
BODY="$WORK/batch.json"
{
    printf '{"documents":['
    sep=""
    for doc in "${DOCS[@]}"; do
        stem="$(basename "$doc" .txt)"
        printf '%s{"id":"%s","text":"' "$sep" "$stem"
        json_escape_file "$doc"
        printf '"}'
        sep=","
    done
    printf ']}'
} >"$BODY"

# Atomically install a generation at the served path (rename, so a
# polling server never reads a half-written artifact).
install_engine() { # args: source
    cp "$1" "$ENGINE.tmp"
    mv "$ENGINE.tmp" "$ENGINE"
}

serving_epoch() {
    curl -sS "http://$ADDR/healthz" | grep -o '"epoch":[0-9]*' | cut -d: -f2
}

wait_for_epoch() { # args: want
    for _ in $(seq 1 100); do
        [[ "$(serving_epoch)" == "$1" ]] && return 0
        sleep 0.1
    done
    fail "server never reached epoch $1 (log: $(tail -3 "$WORK/serve.log"))"
}

install_engine "$WORK/v_a.thorengine"
: >"$WORK/addr"
"$THOR" serve --engine "$ENGINE" --addr 127.0.0.1:0 --addr-file "$WORK/addr" \
    --watch-engine 5000 2>"$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    ADDR="$(cat "$WORK/addr" 2>/dev/null || true)"
    [[ -n "$ADDR" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "serve died on startup: $(cat "$WORK/serve.log")"
    sleep 0.1
done
[[ -n "$ADDR" ]] || fail "serve never wrote its bound address"

echo "-- generation 1 (v_a): served bytes match the batch CLI"
curl -sS -D "$WORK/h1" -o "$WORK/served_a.csv" --data-binary @"$BODY" "http://$ADDR/enrich" \
    || fail "POST /enrich on v_a failed"
cmp "$WORK/direct_a.csv" "$WORK/served_a.csv" || fail "generation 1 served foreign bytes"
grep -qi '^X-Thor-Engine: .*@1' "$WORK/h1" \
    || fail "generation 1 not named in X-Thor-Engine: $(grep -i x-thor-engine "$WORK/h1")"
echo "   v_a byte-identical, tagged @1"

echo "-- SIGHUP swap to v_b under the same process"
install_engine "$WORK/v_b.thorengine"
kill -HUP "$SERVE_PID"
wait_for_epoch 2
grep -q "serve: reloaded" "$WORK/serve.log" || fail "no reload log line"
curl -sS -D "$WORK/h2" -o "$WORK/served_b.csv" --data-binary @"$BODY" "http://$ADDR/enrich" \
    || fail "POST /enrich on v_b failed"
cmp "$WORK/direct_b.csv" "$WORK/served_b.csv" || fail "generation 2 served foreign bytes"
grep -qi '^X-Thor-Engine: .*@2' "$WORK/h2" \
    || fail "generation 2 not named in X-Thor-Engine: $(grep -i x-thor-engine "$WORK/h2")"
echo "   v_b byte-identical, tagged @2"

echo "-- corrupt replacement artifact: rejected, v_b keeps answering"
head -c 100 "$WORK/v_a.thorengine" >"$ENGINE.tmp"
mv "$ENGINE.tmp" "$ENGINE"
kill -HUP "$SERVE_PID"
for _ in $(seq 1 100); do
    grep -q "rejected" "$WORK/serve.log" && break
    sleep 0.1
done
grep -q "rejected" "$WORK/serve.log" || fail "corrupt reload was not rejected in the log"
[[ "$(serving_epoch)" == "2" ]] || fail "corrupt artifact moved the epoch"
curl -sS -o "$WORK/after_corrupt.csv" --data-binary @"$BODY" "http://$ADDR/enrich" \
    || fail "POST /enrich after corrupt reload failed"
cmp "$WORK/direct_b.csv" "$WORK/after_corrupt.csv" \
    || fail "old generation's bytes changed after a rejected reload"
install_engine "$WORK/v_b.thorengine"
echo "   rejected by name, old generation byte-identical"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || fail "drain after reload chaos failed"
SERVE_PID=""

echo "-- worker panic: supervisor restarts, serving continues"
: >"$WORK/addr"
THOR_FAILPOINTS=worker_panic:panic@1 \
    "$THOR" serve --engine "$ENGINE" --addr 127.0.0.1:0 --addr-file "$WORK/addr" \
    2>"$WORK/panic.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    ADDR="$(cat "$WORK/addr" 2>/dev/null || true)"
    [[ -n "$ADDR" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "serve died on startup: $(cat "$WORK/panic.log")"
    sleep 0.1
done
for _ in $(seq 1 100); do
    grep -q "restart" "$WORK/panic.log" && break
    sleep 0.1
done
grep -q "restart" "$WORK/panic.log" || fail "worker panic was never supervised"
curl -sS -o "$WORK/after_panic.csv" --data-binary @"$BODY" "http://$ADDR/enrich" \
    || fail "POST /enrich after worker panic failed"
cmp "$WORK/direct_b.csv" "$WORK/after_panic.csv" || fail "post-panic bytes differ"
curl -sS "http://$ADDR/metrics" | grep -q '"worker.restarts":{"type":"counter","value":[1-9]' \
    || fail "worker.restarts not counted in /metrics"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || fail "drain after worker panic failed"
SERVE_PID=""
echo "   restarted and kept serving"

echo "reload smoke: OK"
