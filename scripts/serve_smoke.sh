#!/usr/bin/env bash
# Serve chaos smoke test against the real CLI.
#
# Exercises `thor serve` end to end over a built engine artifact:
#   1. a served batch (`POST /enrich`, `POST /extract`) is byte-identical
#      to the batch CLI (`thor enrich --engine`) on the same documents;
#   2. SIGKILL mid-request is survivable state-wise: a restart on the
#      same artifact serves the re-issued batch byte-identically;
#   3. quarantine is per-document (X-Thor-Quarantined header) and both
#      quarantine and latency histograms appear in `GET /metrics`;
#   4. a stalled request holding the only admission permit turns the
#      next client away with 429 + Retry-After;
#   5. SIGTERM drains cleanly: exit 0 and a final metrics flush.
#
# Usage: scripts/serve_smoke.sh  (run from anywhere; builds if needed)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
THOR="$ROOT/target/release/thor"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/thor-serve.XXXXXX")"
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

if [[ ! -x "$THOR" ]]; then
    cargo build --release --manifest-path "$ROOT/Cargo.toml"
fi

DATA="$WORK/data"
"$THOR" generate --dataset disease --scale 0.08 --seed 7 --out "$DATA" 2>/dev/null
DOCS=("$DATA"/docs/validation/*.txt)
ENGINE="$WORK/disease.thorengine"
"$THOR" build --table "$DATA/enrichment_table.csv" --vectors "$DATA/vectors.txt" \
    --tau 0.7 --engine "$ENGINE" 2>/dev/null
echo "serve smoke: ${#DOCS[@]} documents"

# The batch-CLI reference output the server must reproduce byte for byte.
"$THOR" enrich --engine "$ENGINE" \
    --out "$WORK/direct.csv" --entities "$WORK/direct.tsv" "${DOCS[@]}" 2>/dev/null

# The same documents as a JSON request body (id = file stem, like the CLI).
json_escape_file() {
    awk 'BEGIN{ORS=""} {gsub(/\\/,"\\\\"); gsub(/"/,"\\\""); gsub(/\t/,"\\t"); gsub(/\r/,"\\r");
         if (NR>1) printf "\\n"; printf "%s", $0}' "$1"
}
BODY="$WORK/batch.json"
{
    printf '{"documents":['
    sep=""
    for doc in "${DOCS[@]}"; do
        stem="$(basename "$doc" .txt)"
        printf '%s{"id":"%s","text":"' "$sep" "$stem"
        json_escape_file "$doc"
        printf '"}'
        sep=","
    done
    printf ']}'
} >"$BODY"

start_serve() { # args: extra serve flags...
    : >"$WORK/addr"
    "$THOR" serve --engine "$ENGINE" --addr 127.0.0.1:0 --addr-file "$WORK/addr" "$@" \
        2>"$WORK/serve.log" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        ADDR="$(cat "$WORK/addr" 2>/dev/null || true)"
        [[ -n "$ADDR" ]] && break
        kill -0 "$SERVE_PID" 2>/dev/null || fail "serve died on startup: $(cat "$WORK/serve.log")"
        sleep 0.1
    done
    [[ -n "$ADDR" ]] || fail "serve never wrote its bound address"
}

echo "-- served batch vs batch CLI: byte-identical"
start_serve
curl -sS -o "$WORK/served.csv" --data-binary @"$BODY" "http://$ADDR/enrich" \
    || fail "POST /enrich failed"
cmp "$WORK/direct.csv" "$WORK/served.csv" || fail "served CSV differs from batch enrich"
curl -sS -o "$WORK/served.tsv" --data-binary @"$BODY" "http://$ADDR/extract" \
    || fail "POST /extract failed"
cmp "$WORK/direct.tsv" "$WORK/served.tsv" || fail "served TSV differs from batch extract"
echo "   /enrich and /extract match the CLI"

echo "-- SIGKILL mid-request, restart on the same artifact"
# Fire a request and kill the server while it is (plausibly) in flight;
# the client is allowed to fail, the artifact must not care.
curl -s -o /dev/null --max-time 5 --data-binary @"$BODY" "http://$ADDR/enrich" 2>/dev/null &
CURL_PID=$!
kill -9 "$SERVE_PID" 2>/dev/null || fail "server already gone before SIGKILL"
wait "$CURL_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
start_serve
curl -sS -o "$WORK/rekilled.csv" --data-binary @"$BODY" "http://$ADDR/enrich" \
    || fail "POST /enrich after SIGKILL restart failed"
cmp "$WORK/direct.csv" "$WORK/rekilled.csv" \
    || fail "restart on the same artifact changed the served bytes"
echo "   restart serves byte-identical output"

echo "-- per-document quarantine + metrics exposure"
# One good document, one empty one: the empty doc is quarantined, the
# batch still answers 200.
printf '{"documents":[{"id":"good","text":"Tuberculosis damages the lungs."},{"id":"empty","text":""}]}' \
    >"$WORK/dirty.json"
HDRS="$WORK/dirty.headers"
curl -sS -D "$HDRS" -o "$WORK/dirty.csv" --data-binary @"$WORK/dirty.json" \
    "http://$ADDR/enrich" || fail "dirty batch failed outright"
grep -qi "^X-Thor-Quarantined: 1" "$HDRS" \
    || fail "expected 1 quarantined doc, headers: $(cat "$HDRS")"
curl -sS -o "$WORK/metrics.json" "http://$ADDR/metrics" || fail "GET /metrics failed"
grep -q '"serve.latency.enrich"' "$WORK/metrics.json" \
    || fail "latency histogram missing from /metrics"
grep -q '"quarantine.docs"' "$WORK/metrics.json" \
    || fail "quarantine counter missing from /metrics"
grep -q '"type":"histogram"' "$WORK/metrics.json" \
    || fail "/metrics carries no histogram-typed metric"
echo "   quarantine header + latency histogram present"

echo "-- overload: stalled permit-holder turns the next client away"
kill -TERM "$SERVE_PID" && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
start_serve --queue 1 --read-timeout-ms 5000
# Hold the only permit: a complete head whose body never arrives.
exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
printf 'POST /enrich HTTP/1.1\r\nContent-Length: 100\r\n\r\n' >&3
sleep 0.5
STATUS="$(curl -sS -o "$WORK/overload.json" -w '%{http_code}' \
    --data-binary @"$BODY" "http://$ADDR/enrich" || true)"
[[ "$STATUS" == "429" ]] || fail "expected 429 while the queue is full, got $STATUS"
grep -q '"overloaded"' "$WORK/overload.json" || fail "429 body is not named"
exec 3>&- 3<&-
echo "   429 with a full admission queue"

echo "-- SIGTERM drains: exit 0 + final metrics flush"
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
status=$?
set -e
SERVE_PID=""
[[ $status -eq 0 ]] || fail "drained serve exited $status: $(cat "$WORK/serve.log")"
grep -q "drained:" "$WORK/serve.log" || fail "no drain summary in the log"
grep -q "serve.requests" "$WORK/serve.log" || fail "no final metrics flush in the log"
echo "   clean drain"

echo "serve smoke: OK"
