#!/usr/bin/env bash
# Chaos smoke test: deterministic fault injection against the real CLI.
#
# Exercises the fault-tolerance guarantees end to end:
#   1. a run killed mid-extraction (abort failpoint = deterministic
#      kill -9) and restarted with --resume produces byte-identical
#      enriched CSV and entities TSV to an uninterrupted run, for
#      thread counts 1 and 4;
#   2. a lenient run over a corpus with an invalid-UTF-8 document
#      finishes, quarantines exactly that document, and leaves the
#      enriched output untouched; strict mode refuses the same input;
#   3. an injected per-document extract fault is counted exactly once
#      in the quarantine TSV.
#
# Usage: scripts/chaos_smoke.sh  (run from anywhere; builds if needed)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
THOR="$ROOT/target/release/thor"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/thor-chaos.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

if [[ ! -x "$THOR" ]]; then
    cargo build --release --manifest-path "$ROOT/Cargo.toml"
fi

DATA="$WORK/data"
"$THOR" generate --dataset disease --scale 0.08 --seed 7 --out "$DATA" 2>/dev/null
DOCS=("$DATA"/docs/validation/*.txt)
TABLE="$DATA/enrichment_table.csv"
VECS="$DATA/vectors.txt"
echo "chaos smoke: ${#DOCS[@]} documents"

enrich() { # <out.csv> <entities.tsv> [extra flags...]
    local out="$1" ents="$2"
    shift 2
    "$THOR" enrich --table "$TABLE" --vectors "$VECS" --tau 0.7 \
        --out "$out" --entities "$ents" "$@" "${DOCS[@]}"
}

echo "-- clean baseline"
enrich "$WORK/clean.csv" "$WORK/clean.tsv" 2>/dev/null

# The abort fires mid-corpus, past the default checkpoint interval (4),
# so the single-thread run is guaranteed to leave a partial checkpoint.
ABORT_AT=$((${#DOCS[@]} / 2 + 1))
for threads in 1 4; do
    CKPT="$WORK/ckpt-$threads"
    echo "-- kill at extract hit $ABORT_AT (threads $threads), then resume"
    set +e
    THOR_FAILPOINTS="extract:abort@$ABORT_AT" \
        enrich "$WORK/dead.csv" "$WORK/dead.tsv" \
        --threads "$threads" --checkpoint "$CKPT" 2>/dev/null
    status=$?
    set -e
    [[ $status -ne 0 ]] || fail "aborted run exited 0"
    [[ ! -f "$WORK/dead.csv" ]] || fail "killed run still wrote its output"
    if [[ $threads -eq 1 ]]; then
        [[ -f "$CKPT/state.tsv" ]] || fail "no partial checkpoint on disk"
    fi
    enrich "$WORK/resumed.csv" "$WORK/resumed.tsv" \
        --threads "$threads" --checkpoint "$CKPT" --resume 2>"$WORK/resume.log"
    if [[ $threads -eq 1 ]]; then
        grep -q "resumed from checkpoint" "$WORK/resume.log" \
            || fail "resume did not pick up the checkpoint"
    fi
    cmp "$WORK/clean.csv" "$WORK/resumed.csv" \
        || fail "resumed CSV differs from uninterrupted run (threads $threads)"
    cmp "$WORK/clean.tsv" "$WORK/resumed.tsv" \
        || fail "resumed entities TSV differs from uninterrupted run (threads $threads)"
    rm -f "$WORK/resumed.csv" "$WORK/resumed.tsv"
    echo "   resume is byte-identical"
done

echo "-- invalid-UTF-8 document: quarantined in lenient mode, fatal in strict"
printf 'Valid start \xff\xfe then garbage bytes' >"$WORK/bad.txt"
set +e
"$THOR" enrich --table "$TABLE" --vectors "$VECS" --tau 0.7 \
    --out "$WORK/strict.csv" --entities "$WORK/strict.tsv" \
    "${DOCS[@]}" "$WORK/bad.txt" 2>/dev/null
status=$?
set -e
[[ $status -ne 0 ]] || fail "strict run accepted an invalid-UTF-8 document"
"$THOR" enrich --table "$TABLE" --vectors "$VECS" --tau 0.7 --lenient \
    --out "$WORK/lenient.csv" --entities "$WORK/lenient.tsv" \
    --quarantine "$WORK/q.tsv" "${DOCS[@]}" "$WORK/bad.txt" 2>/dev/null
rows=$(($(wc -l <"$WORK/q.tsv") - 1)) # minus header
[[ $rows -eq 1 ]] || fail "expected 1 quarantined document, got $rows"
grep -q "read_doc" "$WORK/q.tsv" || fail "quarantine TSV missing the read_doc stage"
cmp "$WORK/clean.csv" "$WORK/lenient.csv" \
    || fail "quarantined document changed the enriched output"
echo "   exactly one document quarantined, output untouched"

echo "-- injected extract fault: counted exactly once"
THOR_FAILPOINTS="extract:err@2" \
    "$THOR" enrich --table "$TABLE" --vectors "$VECS" --tau 0.7 --lenient \
    --out "$WORK/fault.csv" --entities "$WORK/fault.tsv" \
    --quarantine "$WORK/qf.tsv" "${DOCS[@]}" 2>/dev/null
rows=$(($(wc -l <"$WORK/qf.tsv") - 1))
[[ $rows -eq 1 ]] || fail "expected 1 quarantined document, got $rows"
grep -q "injected" "$WORK/qf.tsv" || fail "quarantine TSV missing the injected fault"
echo "   exactly one injected fault quarantined"

echo "chaos smoke: OK"
