#!/usr/bin/env bash
# Refinement-kernel smoke test against the real CLI.
#
# The kernel scoring path (allocation-free jaccard/gestalt + score-bound
# early abandon, the default) must be a byte-exact drop-in for the
# documented reference implementations:
#   1. `thor enrich` (kernel) and `thor enrich --refine reference`
#      produce byte-identical enriched CSV and entities TSV at thread
#      counts 1 and 4;
#   2. the same equality holds when serving from a frozen engine
#      artifact (`--engine` + `--refine` compose: the refine path is a
#      serve-time knob, not part of the frozen model);
#   3. a bad `--refine` value is rejected with a named error;
#   4. `--metrics` surfaces the refine.scored / refine.pruned counters,
#      and the kernel path actually prunes on this workload.
#
# Usage: scripts/extract_smoke.sh  (run from anywhere; builds if needed)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
THOR="$ROOT/target/release/thor"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/thor-extract.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

if [[ ! -x "$THOR" ]]; then
    cargo build --release --manifest-path "$ROOT/Cargo.toml"
fi

DATA="$WORK/data"
"$THOR" generate --dataset disease --scale 0.08 --seed 7 --out "$DATA" 2>/dev/null
DOCS=("$DATA"/docs/validation/*.txt)
TABLE="$DATA/enrichment_table.csv"
VECS="$DATA/vectors.txt"
echo "extract smoke: ${#DOCS[@]} documents"

echo "-- kernel vs reference refinement: byte-identical output"
"$THOR" enrich --table "$TABLE" --vectors "$VECS" --tau 0.7 --refine reference \
    --out "$WORK/reference.csv" --entities "$WORK/reference.tsv" "${DOCS[@]}" 2>/dev/null
for threads in 1 4; do
    "$THOR" enrich --table "$TABLE" --vectors "$VECS" --tau 0.7 \
        --refine kernel --threads "$threads" \
        --out "$WORK/kernel.csv" --entities "$WORK/kernel.tsv" "${DOCS[@]}" 2>/dev/null
    cmp "$WORK/reference.csv" "$WORK/kernel.csv" \
        || fail "kernel CSV differs from reference refinement (threads $threads)"
    cmp "$WORK/reference.tsv" "$WORK/kernel.tsv" \
        || fail "kernel entities differ from reference refinement (threads $threads)"
    rm -f "$WORK/kernel.csv" "$WORK/kernel.tsv"
done
echo "   identical output at threads 1 and 4"

echo "-- --refine composes with --engine (serve-time knob)"
ENGINE="$WORK/disease.thorengine"
"$THOR" build --table "$TABLE" --vectors "$VECS" --tau 0.7 \
    --engine "$ENGINE" 2>/dev/null
for refine in kernel reference; do
    "$THOR" enrich --engine "$ENGINE" --refine "$refine" \
        --out "$WORK/served.csv" --entities "$WORK/served.tsv" "${DOCS[@]}" 2>/dev/null
    cmp "$WORK/reference.csv" "$WORK/served.csv" \
        || fail "engine-served CSV differs under --refine $refine"
    cmp "$WORK/reference.tsv" "$WORK/served.tsv" \
        || fail "engine-served entities differ under --refine $refine"
    rm -f "$WORK/served.csv" "$WORK/served.tsv"
done
echo "   engine serving identical under both refine paths"

echo "-- bad --refine value is rejected by name"
set +e
"$THOR" enrich --table "$TABLE" --vectors "$VECS" --refine fast \
    --out "$WORK/x.csv" "${DOCS[@]}" 2>"$WORK/refine.log"
status=$?
set -e
[[ $status -ne 0 ]] || fail "enrich accepted --refine fast"
grep -q 'kernel.*reference' "$WORK/refine.log" \
    || fail "refine error is not named: $(cat "$WORK/refine.log")"
echo "   rejected with a named error"

echo "-- metrics surface the prune accounting"
"$THOR" enrich --table "$TABLE" --vectors "$VECS" --tau 0.7 --metrics \
    --out "$WORK/metered.csv" "${DOCS[@]}" 2>"$WORK/metrics.log"
grep -q "refine.scored" "$WORK/metrics.log" || fail "refine.scored counter missing"
grep -q "refine.pruned" "$WORK/metrics.log" || fail "refine.pruned counter missing"
PRUNED=$(awk '$1 == "refine.pruned" { print $3 }' "$WORK/metrics.log")
[[ "$PRUNED" =~ ^[0-9]+$ ]] || fail "refine.pruned is not a count: $PRUNED"
[[ "$PRUNED" -gt 0 ]] || fail "early abandon pruned nothing on the smoke workload"
echo "   refine.pruned = $PRUNED"

echo "extract smoke: OK"
