#!/usr/bin/env bash
# Sub-linear candidate-generation smoke test against the real CLI.
#
# Exercises the bound-pruned scan end to end:
#   1. enriching with `--prune exact`, `--prune off`, and the default
#      (no flag) is byte-identical — pruning is a pure execution knob;
#   2. `--prune approx --prune-margin 0.1` runs and writes output, and
#      malformed `--prune` / `--prune-margin` values are rejected by
#      name;
#   3. `thor inspect` prints the pruning sections (cluster shape and
#      i8 quantization) and verifies their checksums;
#   4. a flipped byte inside a pruning section is rejected by name —
#      at inspect time and at load time — never served.
#
# Usage: scripts/prune_smoke.sh  (run from anywhere; builds if needed)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
THOR="$ROOT/target/release/thor"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/thor-prune.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

if [[ ! -x "$THOR" ]]; then
    cargo build --release --manifest-path "$ROOT/Cargo.toml"
fi

DATA="$WORK/data"
"$THOR" generate --dataset disease --scale 0.08 --seed 7 --out "$DATA" 2>/dev/null
DOCS=("$DATA"/docs/validation/*.txt)
TABLE="$DATA/enrichment_table.csv"
VECTORS="$DATA/vectors.txt"
echo "prune smoke: ${#DOCS[@]} documents"

ENGINE="$WORK/engine.thorengine"
"$THOR" build --table "$TABLE" --vectors "$VECTORS" --engine "$ENGINE" 2>/dev/null

echo "-- exact pruning is byte-identical to the exhaustive scan"
"$THOR" enrich --engine "$ENGINE" --out "$WORK/default.csv" "${DOCS[@]}" 2>/dev/null
"$THOR" enrich --engine "$ENGINE" --prune exact \
    --out "$WORK/exact.csv" "${DOCS[@]}" 2>/dev/null
"$THOR" enrich --engine "$ENGINE" --prune off \
    --out "$WORK/off.csv" "${DOCS[@]}" 2>/dev/null
cmp "$WORK/default.csv" "$WORK/exact.csv" || fail "--prune exact diverged from the default"
cmp "$WORK/default.csv" "$WORK/off.csv" || fail "--prune exact diverged from --prune off"
echo "   default == exact == off"

echo "-- approx mode runs; malformed knobs are rejected by name"
"$THOR" enrich --engine "$ENGINE" --prune approx --prune-margin 0.1 \
    --out "$WORK/approx.csv" "${DOCS[@]}" 2>/dev/null \
    || fail "--prune approx --prune-margin 0.1 failed"
[[ -s "$WORK/approx.csv" ]] || fail "approx enrich wrote no output"
set +e
"$THOR" enrich --engine "$ENGINE" --prune sideways \
    --out "$WORK/bad.csv" "${DOCS[@]}" 2>"$WORK/bad.log"
status=$?
set -e
[[ $status -ne 0 ]] || fail "--prune sideways was accepted"
grep -q 'exact' "$WORK/bad.log" || fail "bad --prune error is unnamed: $(cat "$WORK/bad.log")"
set +e
"$THOR" enrich --engine "$ENGINE" --prune off --prune-margin 0.1 \
    --out "$WORK/bad2.csv" "${DOCS[@]}" 2>"$WORK/bad2.log"
status=$?
set -e
[[ $status -ne 0 ]] || fail "--prune-margin without approx was accepted"
grep -q 'prune-margin' "$WORK/bad2.log" \
    || fail "margin misuse error is unnamed: $(cat "$WORK/bad2.log")"
echo "   approx runs, bad knobs rejected"

echo "-- inspect prints and verifies the pruning sections"
"$THOR" inspect --engine "$ENGINE" >"$WORK/inspect.txt" || fail "inspect rejected the engine"
grep -q "candidate pruning:" "$WORK/inspect.txt" \
    || fail "inspect did not summarize candidate pruning"
grep -q "i8 quantization on" "$WORK/inspect.txt" \
    || fail "inspect did not report the quantized rows"
grep -q "prune.centroids" "$WORK/inspect.txt" \
    || fail "inspect did not list the prune.centroids section"
grep -q "checksums verified" "$WORK/inspect.txt" || fail "inspect did not verify checksums"
echo "   sections listed, checksums verified"

echo "-- a corrupted pruning section is rejected by name"
CORRUPT="$WORK/corrupt.thorengine"
cp "$ENGINE" "$CORRUPT"
OFF="$(awk '$1 == "prune.centroids" {print $2}' "$WORK/inspect.txt")"
[[ -n "$OFF" ]] || fail "could not locate the prune.centroids payload offset"
CUR="$(od -An -tu1 -j "$OFF" -N1 "$CORRUPT" | tr -d ' ')"
# shellcheck disable=SC2059
printf "$(printf '\\x%02x' $(((CUR + 1) % 256)))" |
    dd of="$CORRUPT" bs=1 seek="$OFF" conv=notrunc 2>/dev/null
set +e
"$THOR" inspect --engine "$CORRUPT" >"$WORK/corrupt_inspect.txt" 2>&1
status=$?
set -e
[[ $status -ne 0 ]] || fail "inspect accepted a corrupted pruning section"
grep -q "prune.centroids" "$WORK/corrupt_inspect.txt" \
    || fail "inspect did not name the corrupted section: $(tail -1 "$WORK/corrupt_inspect.txt")"
set +e
"$THOR" enrich --engine "$CORRUPT" --out "$WORK/x.csv" "${DOCS[@]}" 2>"$WORK/corrupt.log"
status=$?
set -e
[[ $status -ne 0 ]] || fail "enrich served a corrupted pruning section"
grep -Eq "prune.centroids|checksum" "$WORK/corrupt.log" \
    || fail "load corruption error is unnamed: $(cat "$WORK/corrupt.log")"
[[ ! -f "$WORK/x.csv" ]] || fail "corrupted run still wrote output"
echo "   flipped byte rejected at inspect and at load"

echo "prune smoke: OK"
