#!/usr/bin/env bash
# Regenerate every table/figure of the paper's evaluation into results/.
#
# Usage: scripts/reproduce.sh [SCALE] [SEED]
#   SCALE  corpus scale (default 1.0 = paper-sized; 0.25 runs in seconds)
#   SEED   generator seed (default 42)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"
SEED="${2:-42}"
OUT=results
mkdir -p "$OUT"

export THOR_SCALE="$SCALE" THOR_SEED="$SEED"

cargo build --release -p thor-bench

run() {
  local bin="$1"; shift
  echo "== $bin =="
  cargo run --release -q -p thor-bench --bin "$bin" -- "$@" | tee "$OUT/$bin.txt"
}

run exp_datasets
run exp_table5 --pr-curve
run exp_fig6
run exp_table6 --bars
run exp_table7
run exp_table8
run exp_table9
run exp_table10 --curve
run exp_table11 --bars
run exp_fig10
run exp_schemas
run exp_context_window
run abl_scores
run abl_expansion
run abl_np
run abl_segment
run abl_context

echo "all experiment outputs written to $OUT/"
