//! Cross-system integration tests: every comparison system runs on the
//! same generated dataset through the shared harness, and the relations
//! the paper's evaluation depends on hold.

use thor_bench::harness::{disease_dataset, gold_annotations, run_system, System};
use thor_datagen::Split;

fn dataset() -> thor_datagen::GeneratedDataset {
    disease_dataset(42, 0.1)
}

#[test]
fn all_systems_produce_valid_reports() {
    let d = dataset();
    let systems = [
        System::Thor(0.7),
        System::Baseline,
        System::LmSd,
        System::LmHuman(usize::MAX),
        System::Gpt4,
        System::UniNer,
    ];
    for s in systems {
        let out = run_system(&s, &d);
        let r = &out.report;
        assert!(
            (0.0..=1.0).contains(&r.precision),
            "{}: P {}",
            out.system,
            r.precision
        );
        assert!(
            (0.0..=1.0).contains(&r.recall),
            "{}: R {}",
            out.system,
            r.recall
        );
        assert!((0.0..=1.0).contains(&r.f1), "{}: F1 {}", out.system, r.f1);
        assert_eq!(
            r.tp + r.fp,
            r.predicted_total,
            "{}: count identity",
            out.system
        );
        assert!(
            r.predicted_total > 0,
            "{} produced no predictions",
            out.system
        );
    }
}

#[test]
fn thor_prediction_volume_monotone_in_tau() {
    let d = dataset();
    let mut prev = usize::MAX;
    for tau10 in 5..=10 {
        let tau = tau10 as f64 / 10.0;
        let out = run_system(&System::Thor(tau), &d);
        assert!(
            out.report.predicted_total <= prev,
            "predictions must not grow with tau (tau={tau}: {} > {prev})",
            out.report.predicted_total
        );
        prev = out.report.predicted_total;
    }
}

#[test]
fn thor_dominates_baseline_on_f1() {
    let d = dataset();
    let thor = run_system(&System::Thor(0.7), &d);
    let baseline = run_system(&System::Baseline, &d);
    assert!(
        thor.report.f1 > baseline.report.f1,
        "THOR {} must beat exact matching {}",
        thor.report.f1,
        baseline.report.f1
    );
    assert!(
        thor.report.recall > baseline.report.recall,
        "THOR's recall advantage is the headline claim"
    );
}

#[test]
fn baseline_predictions_come_from_the_dictionary() {
    let d = dataset();
    let out = run_system(&System::Baseline, &d);
    let table = d.enrichment_table();
    for p in &out.predictions {
        let known = table
            .column_values(&p.concept)
            .iter()
            .any(|v| thor_text::normalize_phrase(v) == p.phrase);
        assert!(known, "baseline invented `{}` ({})", p.phrase, p.concept);
    }
}

#[test]
fn lm_human_improves_with_more_annotation() {
    let d = dataset();
    let small = run_system(&System::LmHuman(6), &d);
    let large = run_system(&System::LmHuman(usize::MAX), &d);
    assert!(
        large.report.f1 > small.report.f1,
        "more annotated docs must help ({} -> {})",
        small.report.f1,
        large.report.f1
    );
}

#[test]
fn simulated_llms_are_seed_stable() {
    let d = dataset();
    let a = run_system(&System::Gpt4, &d);
    let b = run_system(&System::Gpt4, &d);
    assert_eq!(a.report.predicted_total, b.report.predicted_total);
    assert_eq!(a.report.tp, b.report.tp);
}

#[test]
fn gold_annotations_score_perfectly() {
    // Oracle consistency: evaluating the gold set against itself is 1.0.
    let d = dataset();
    let gold = gold_annotations(&d, Split::Test);
    let report = thor_eval::evaluate(&gold, &gold);
    assert_eq!(report.f1, 1.0);
    assert_eq!(report.spurious, 0);
    assert_eq!(report.missing, 0);
}

#[test]
fn uniner_misses_composition_entirely() {
    // The paper's Table VII observation, reproduced by the profile.
    let d = dataset();
    let out = run_system(&System::UniNer, &d);
    if let Some(c) = out
        .report
        .per_concept
        .iter()
        .find(|c| c.concept == "composition")
    {
        assert_eq!(c.tp, 0, "UniNER must not detect Composition entities");
    }
}
