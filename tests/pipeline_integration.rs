//! End-to-end integration tests for the THOR pipeline, built around the
//! paper's running example (Fig. 1 → Fig. 4).

use thor_core::{Document, Thor, ThorConfig};
use thor_data::{outer_join, sparsity, Schema, Table};
use thor_embed::{SemanticSpaceBuilder, VectorStore};

fn fig1_store() -> VectorStore {
    SemanticSpaceBuilder::new(32, 7)
        .spread(0.4)
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "skin", "lungs", "ear",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "deafness",
                "empyema",
                "non-cancerous",
            ],
        )
        .generic_words(["slow-growing", "grows", "damages", "may", "cause"])
        .build()
        .into_store()
}

fn fig1_table() -> Table {
    let mut d1 = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    d1.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    d1.fill_slot("Acne", "Anatomy", "skin");
    let mut d2 = Table::new(Schema::new(["Disease", "Complication"], "Disease"));
    d2.fill_slot("Acne", "Complication", "skin cancer");
    d2.row_for_subject("Tuberculosis");
    outer_join(&d1, &d2)
}

fn fig1_doc() -> Document {
    Document::new(
        "doc",
        "Acoustic Neuroma is a slow-growing non-cancerous brain tumor. \
         It may cause unsteadiness and deafness. \
         Tuberculosis generally damages the lungs and may cause empyema.",
    )
}

#[test]
fn fig1_to_fig4_end_to_end() {
    let table = fig1_table();
    let before = sparsity(&table);
    assert!(before.ratio > 0.0, "integration must create sparsity");

    let thor = Thor::new(fig1_store(), ThorConfig::with_tau(0.6));
    let result = thor.enrich(&table, &[fig1_doc()]);

    // Fig. 4: Complication slots filled for both subjects.
    let an = result.table.get_row("Acoustic Neuroma").expect("row");
    let compl = result.table.schema().index_of("Complication").unwrap();
    assert!(
        !an.cell(compl).is_null(),
        "Acoustic Neuroma Complication filled"
    );
    let tb = result.table.get_row("Tuberculosis").expect("row");
    assert!(
        !tb.cell(compl).is_null(),
        "Tuberculosis Complication filled"
    );

    // Sparsity strictly reduced.
    let after = sparsity(&result.table);
    assert!(after.ratio < before.ratio);

    // Entities attributed to the right subjects.
    assert!(result
        .entities
        .iter()
        .any(|e| e.subject == "Tuberculosis" && e.phrase.contains("empyema")));
    assert!(result
        .entities
        .iter()
        .any(|e| e.subject == "Acoustic Neuroma" && e.phrase.contains("unsteadiness")));
}

#[test]
fn enrichment_is_idempotent() {
    let thor = Thor::new(fig1_store(), ThorConfig::with_tau(0.6));
    let table = fig1_table();
    let once = thor.enrich(&table, &[fig1_doc()]);
    let twice = thor.enrich(&once.table, &[fig1_doc()]);
    assert_eq!(
        once.table.instance_count(),
        twice.table.instance_count(),
        "re-running on enriched output must add nothing"
    );
    assert_eq!(twice.slot_stats.inserted, 0);
}

#[test]
fn schema_evolution_without_retraining() {
    let store = SemanticSpaceBuilder::new(32, 11)
        .spread(0.4)
        .topic("anatomy")
        .topic("symptom")
        .words("anatomy", ["lungs", "brain", "nerve"])
        .words(
            "symptom",
            ["fever", "cough", "fatigue", "dizziness", "nausea"],
        )
        .generic_words(["damages", "patients", "generally"])
        .build()
        .into_store();
    let docs = vec![Document::new(
        "d",
        "Tuberculosis generally damages the lungs. Patients often report fever and cough.",
    )];
    let thor = Thor::new(store, ThorConfig::with_tau(0.6));

    let mut v1 = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    v1.fill_slot("Tuberculosis", "Anatomy", "brain");
    let r1 = thor.enrich(&v1, &docs);
    assert!(r1.entities.iter().all(|e| e.concept != "Symptom"));

    let mut v2 = Table::new(Schema::new(["Disease", "Anatomy", "Symptom"], "Disease"));
    v2.fill_slot("Tuberculosis", "Anatomy", "brain");
    v2.fill_slot("Tuberculosis", "Symptom", "dizziness");
    let r2 = thor.enrich(&v2, &docs);
    let symptoms: Vec<&str> = r2
        .entities
        .iter()
        .filter(|e| e.concept == "Symptom")
        .map(|e| e.phrase.as_str())
        .collect();
    assert!(
        !symptoms.is_empty(),
        "evolved concept must be fillable from the same text"
    );
}

#[test]
fn original_table_is_never_mutated() {
    let thor = Thor::new(fig1_store(), ThorConfig::with_tau(0.5));
    let table = fig1_table();
    let before = thor_data::csv::to_csv(&table);
    let _ = thor.enrich(&table, &[fig1_doc()]);
    assert_eq!(before, thor_data::csv::to_csv(&table));
}

#[test]
fn tau_one_restricts_to_known_vocabulary() {
    let thor = Thor::new(fig1_store(), ThorConfig::with_tau(1.0));
    let result = thor.enrich(&fig1_table(), &[fig1_doc()]);
    // Every matched instance must be a table value (exact similarity can
    // only hit seed vectors).
    for e in &result.entities {
        assert!(
            !e.matched_instance.is_empty(),
            "entity without a seed anchor at tau=1.0: {e:?}"
        );
    }
}

#[test]
fn csv_round_trip_of_enriched_table() {
    let thor = Thor::new(fig1_store(), ThorConfig::with_tau(0.6));
    let result = thor.enrich(&fig1_table(), &[fig1_doc()]);
    let csv = thor_data::csv::to_csv(&result.table);
    let back = thor_data::csv::from_csv(&csv).expect("parse");
    assert_eq!(back.len(), result.table.len());
    assert_eq!(back.instance_count(), result.table.instance_count());
}
