//! Property tests feeding corrupt inputs through the ingestion layer:
//! truncated/garbage CSV, malformed vector files, and invalid-UTF-8 /
//! garbage documents. The contract under test: parsers never panic,
//! errors name the offending line or byte, lenient mode finishes, and
//! quarantine accounting is *exact* — every injected corruption is
//! counted once and clean inputs are untouched.

use proptest::prelude::*;
use thor_repro::core::{Document, PreparedEngine, ResilientOptions, RunMode, Thor, ThorConfig};
use thor_repro::data::{from_csv, from_csv_lenient};
use thor_repro::embed::{SemanticSpaceBuilder, VectorStore};
use thor_repro::fault::{decode_document, DocumentPolicy, ErrorKind, SectionFile};

/// Serialized engine artifact for the corruption properties, built once.
fn engine_artifact_bytes() -> &'static Vec<u8> {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let (thor, table, _) = fixture();
        let engine = thor.prepare(&table);
        let path = scratch_path("seed");
        engine.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    })
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "thor-corrupt-{tag}-{}.thorengine",
        std::process::id()
    ))
}

fn clamp_to_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// A small enrichment fixture shared by the document properties.
fn fixture() -> (Thor, thor_repro::data::Table, Vec<Document>) {
    let store = SemanticSpaceBuilder::new(16, 7)
        .topic("anatomy")
        .words("anatomy", ["lungs", "brain", "skin", "nerve"])
        .generic_words(["damages", "grows"])
        .build()
        .into_store();
    let mut table = thor_repro::data::Table::new(thor_repro::data::Schema::new(
        ["Disease", "Anatomy"],
        "Disease",
    ));
    table.fill_slot("Tuberculosis", "Anatomy", "lungs");
    table.row_for_subject("Acne");
    let docs = vec![
        Document::new("c0", "Tuberculosis damages the lungs and the brain."),
        Document::new("c1", "Acne grows on the skin."),
        Document::new("c2", "Tuberculosis damages the nerve."),
    ];
    (Thor::new(store, ThorConfig::with_tau(0.6)), table, docs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary text never panics either CSV parser.
    #[test]
    fn arbitrary_text_never_panics_csv(text in "\\PC{0,300}") {
        let _ = from_csv(&text);
        let _ = from_csv_lenient(&text);
    }

    /// Truncating a valid CSV mid-stream (plus trailing junk) never
    /// panics, and lenient parsing accepts everything strict parsing
    /// accepts.
    #[test]
    fn truncated_csv_never_panics(cut in 0usize..110, junk in "\\PC{0,40}") {
        let base = "Disease,Anatomy,Complication\n\
                    Tuberculosis,lungs,empyema\n\
                    Acne,skin,scarring\n\
                    Neuroma,nerve,deafness\n";
        let cut = clamp_to_char_boundary(base, cut);
        let text = format!("{}{junk}", &base[..cut]);
        let strict = from_csv(&text);
        let lenient = from_csv_lenient(&text);
        if strict.is_ok() {
            prop_assert!(lenient.is_ok());
        }
    }

    /// Lenient CSV skips exactly the malformed rows, with their 1-based
    /// line numbers, and keeps every well-formed one.
    #[test]
    fn lenient_csv_skips_exactly_injected_rows(bad_rows in 0usize..6, word in "[a-z]{1,8}") {
        let mut text = String::from("Disease,Anatomy\nTuberculosis,lungs\nAcne,skin\n");
        for i in 0..bad_rows {
            // Arity 4 against a 2-column header.
            text.push_str(&format!("{word}{i},x,y,z\n"));
        }
        let lenient = from_csv_lenient(&text).unwrap();
        prop_assert_eq!(lenient.skipped.len(), bad_rows);
        prop_assert_eq!(lenient.table.len(), 2);
        for (i, row) in lenient.skipped.iter().enumerate() {
            prop_assert_eq!(row.line, 4 + i);
        }
    }

    /// Arbitrary text never panics the vector-file parser.
    #[test]
    fn arbitrary_text_never_panics_vectors(text in "\\PC{0,300}") {
        let _ = VectorStore::from_text(&text);
    }

    /// A corrupted vector row is reported with its 1-based line number.
    #[test]
    fn corrupt_vector_line_is_named(victim in 0usize..4, junk in "[a-z]{2,6}") {
        let mut store = VectorStore::new(3);
        for (i, w) in ["brain", "nerve", "skin", "lungs"].iter().enumerate() {
            store.insert(w, thor_repro::embed::Vector(vec![i as f32, 1.0, 0.0]));
        }
        let mut lines: Vec<String> = store.to_text().lines().map(str::to_string).collect();
        let line_no = victim + 2; // 1-based, after the header
        lines[line_no - 1] = format!("badword\t{junk} {junk}");
        let err = VectorStore::from_text(&lines.join("\n")).unwrap_err();
        prop_assert_eq!(err.kind(), ErrorKind::Parse);
        prop_assert!(
            err.to_string().contains(&format!("line {line_no}")),
            "error `{}` should name line {}", err, line_no
        );
    }

    /// Flipping any single byte of a saved engine artifact makes the
    /// fully-verified load fail with a named error — never a panic,
    /// never a silent success. (Header flips hit the magic/version/
    /// length checks; directory flips hit the directory checksum;
    /// padding flips hit the zero-padding check; payload flips hit the
    /// per-section FNV-1a checksum.)
    #[test]
    fn corrupt_engine_artifact_rejected(pos in 0usize..8192, xor in 1u8..=255) {
        let bytes = engine_artifact_bytes();
        let pos = pos % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= xor;
        let path = scratch_path("flip");
        std::fs::write(&path, &corrupted).unwrap();
        let err = PreparedEngine::load(&path).unwrap_err();
        let msg = err.to_string();
        prop_assert!(
            msg.contains("artifact") || msg.contains("checksum")
                || msg.contains("truncated") || msg.contains("version")
                || msg.contains("fingerprint") || msg.contains("payload")
                || msg.contains("magic") || msg.contains("padding")
                || msg.contains("section") || msg.contains("digest"),
            "byte {pos}: unnamed error `{msg}`"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Stamping any stale or future container version into the header
    /// is rejected by name — version 1 gets the explicit
    /// "pre-sectioned" migration message, everything else the
    /// "unsupported container version" one. Never a checksum error:
    /// version is checked *before* the header checksum, so the message
    /// survives cross-version header layout changes.
    #[test]
    fn stale_engine_version_rejected_by_name(version in 0u32..1024) {
        let bytes = engine_artifact_bytes();
        if version == thor_repro::core::ENGINE_FORMAT_VERSION {
            // The one version the loader accepts; nothing to reject.
            return;
        }
        let mut stamped = bytes.clone();
        stamped[8..12].copy_from_slice(&version.to_le_bytes());
        let path = scratch_path("stale");
        std::fs::write(&path, &stamped).unwrap();
        let err = PreparedEngine::load(&path).unwrap_err();
        let msg = err.to_string();
        if version == 1 {
            prop_assert!(msg.contains("pre-sectioned"), "v1: `{msg}`");
            prop_assert!(msg.contains("thor build --engine"), "v1: `{msg}`");
        } else {
            prop_assert!(
                msg.contains(&format!("unsupported container version {version}")),
                "v{version}: `{msg}`"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// Knocking any section's recorded offset off its 64-byte alignment
    /// (or out of bounds) in the directory is rejected by name before
    /// any payload is interpreted. The directory checksum is patched to
    /// match, so this exercises the bounds/alignment layer itself.
    #[test]
    fn misaligned_section_rejected_by_name(victim in 0usize..16, nudge in 1u64..64) {
        let bytes = engine_artifact_bytes();
        let file = SectionFile::from_bytes(bytes.clone()).unwrap();
        let entries = file.entries();
        let victim = victim % entries.len();
        // Locate the victim's offset field inside the directory: each
        // entry is `name (u64 len + bytes), offset u64, len u64,
        // align u32, version u32, checksum u64`.
        let dir_off = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let mut cursor = dir_off;
        for e in entries.iter().take(victim) {
            cursor += 8 + e.name.len() + 8 + 8 + 4 + 4 + 8;
        }
        let field = cursor + 8 + entries[victim].name.len();
        let mut tampered = bytes.clone();
        let bad = entries[victim].offset + nudge;
        tampered[field..field + 8].copy_from_slice(&bad.to_le_bytes());
        // Re-stamp the directory checksum so only the alignment check fires.
        let dir_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        let sum = thor_repro::fault::fnv1a(&tampered[dir_off..dir_off + dir_len]);
        tampered[32..40].copy_from_slice(&sum.to_le_bytes());
        let hsum = thor_repro::fault::fnv1a(&tampered[..48]);
        tampered[48..56].copy_from_slice(&hsum.to_le_bytes());

        let path = scratch_path("misalign");
        std::fs::write(&path, &tampered).unwrap();
        let err = PreparedEngine::load(&path).unwrap_err();
        let msg = err.to_string();
        prop_assert!(
            msg.contains("align") || msg.contains("bounds") || msg.contains("overlap")
                || msg.contains("order") || msg.contains("padding"),
            "section {victim} nudged by {nudge}: `{msg}`"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Truncating a saved engine artifact anywhere is rejected (short
    /// header or short payload), never a panic.
    #[test]
    fn truncated_engine_artifact_rejected(cut in 0usize..4096) {
        let bytes = engine_artifact_bytes();
        let cut = cut % bytes.len(); // strictly shorter than the file
        let path = scratch_path("cut");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = PreparedEngine::load(&path).unwrap_err();
        prop_assert!(
            err.to_string().contains("truncated"),
            "cut {cut}: `{}` should say truncated", err
        );
        std::fs::remove_file(&path).ok();
    }

    /// Invalid UTF-8 is rejected by admission control with the exact
    /// byte offset of the first bad sequence.
    #[test]
    fn invalid_utf8_rejected_with_offset(prefix in "[a-z ]{0,40}", suffix in "[a-z ]{0,20}") {
        let mut bytes = prefix.clone().into_bytes();
        let offset = bytes.len();
        bytes.push(0xFF);
        bytes.extend_from_slice(suffix.as_bytes());
        let err = decode_document("doc", &bytes, &DocumentPolicy::default()).unwrap_err();
        prop_assert_eq!(err.kind(), ErrorKind::Validation);
        prop_assert_eq!(err.offset(), Some(offset));
    }

    /// A lenient enrichment run over a corpus with injected garbage
    /// documents finishes, quarantines exactly the garbage, and produces
    /// the same entities as a run over only the clean documents.
    #[test]
    fn lenient_enrich_quarantines_exactly_the_garbage(n_bad in 0usize..4) {
        let (thor, table, clean_docs) = fixture();
        let mut docs = clean_docs.clone();
        for i in 0..n_bad {
            // Control-character soup: parses as UTF-8, rejected by the
            // garbage-ratio admission check.
            docs.push(Document::new(
                format!("gb{i}"),
                "\u{FFFD}\u{0001}\u{FFFD}\u{0002}".to_string(),
            ));
        }
        let opts = ResilientOptions {
            mode: RunMode::Lenient,
            ..ResilientOptions::default()
        };
        let outcome = thor.enrich_resilient(&table, &docs, &opts).unwrap();
        prop_assert_eq!(outcome.quarantine.len(), n_bad);
        prop_assert_eq!(outcome.processed_docs, docs.len());
        for (i, entry) in outcome.quarantine.entries().iter().enumerate() {
            prop_assert_eq!(entry.doc_id.clone(), format!("gb{i}"));
            prop_assert_eq!(entry.stage.as_str(), "validate");
        }
        let clean = thor.enrich(&table, &clean_docs);
        prop_assert_eq!(outcome.result.entities, clean.entities);
    }
}
