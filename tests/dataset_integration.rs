//! Integration tests for the dataset generator: determinism, structural
//! invariants, and the properties the evaluation design depends on.

use thor_datagen::{bio_tags, corpus_stats, generate, Bio, DatasetSpec};

#[test]
fn generation_is_deterministic_across_calls() {
    let a = generate(&DatasetSpec::disease_az(123, 0.05));
    let b = generate(&DatasetSpec::disease_az(123, 0.05));
    assert_eq!(a.test.len(), b.test.len());
    for (da, db) in a.test.iter().zip(&b.test) {
        assert_eq!(da.doc.text, db.doc.text);
        assert_eq!(da.gold.len(), db.gold.len());
    }
    assert_eq!(
        thor_data::csv::to_csv(&a.table),
        thor_data::csv::to_csv(&b.table),
        "integrated tables must be byte-identical"
    );
}

#[test]
fn splits_are_subject_disjoint() {
    let d = generate(&DatasetSpec::disease_az(5, 0.1));
    let subjects = |docs: &[thor_datagen::AnnotatedDoc]| {
        docs.iter()
            .flat_map(|d| d.subjects.iter().cloned())
            .collect::<std::collections::BTreeSet<String>>()
    };
    let train = subjects(&d.train);
    let val = subjects(&d.validation);
    let test = subjects(&d.test);
    assert!(train.is_disjoint(&val), "train/val share subjects");
    assert!(train.is_disjoint(&test), "train/test share subjects");
    assert!(val.is_disjoint(&test), "val/test share subjects");
}

#[test]
fn every_gold_phrase_is_locatable_in_its_document() {
    let d = generate(&DatasetSpec::disease_az(7, 0.05));
    for doc in d.test.iter().chain(d.train.iter().take(10)) {
        for g in &doc.gold {
            assert!(
                doc.doc.text.contains(&g.phrase),
                "gold `{}` not in doc `{}`",
                g.phrase,
                doc.doc.id
            );
        }
    }
}

#[test]
fn gold_annotations_project_to_bio() {
    let d = generate(&DatasetSpec::disease_az(9, 0.05));
    let doc = &d.test[0];
    let tagged = bio_tags(doc);
    let b_count: usize = tagged
        .iter()
        .flatten()
        .filter(|(_, l)| matches!(l, Bio::B(_)))
        .count();
    // Each distinct gold phrase of the doc should anchor at least one
    // B- token (duplicates share spans).
    let distinct: std::collections::BTreeSet<&str> =
        doc.gold.iter().map(|g| g.phrase.as_str()).collect();
    assert!(
        b_count >= distinct.len() / 2,
        "too few projected spans: {b_count} vs {} distinct phrases",
        distinct.len()
    );
}

#[test]
fn enrichment_table_contains_train_knowledge_and_stripped_test_rows() {
    let d = generate(&DatasetSpec::disease_az(11, 0.05));
    let et = d.enrichment_table();
    // Same instances as R plus only subject values for test rows.
    let extra_rows: usize = d
        .test
        .iter()
        .flat_map(|t| t.subjects.iter())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert_eq!(et.len(), d.table.len() + extra_rows);
    assert_eq!(et.instance_count(), d.table.instance_count() + extra_rows);
}

#[test]
fn gold_test_table_matches_annotations() {
    let d = generate(&DatasetSpec::disease_az(13, 0.05));
    let gold_table = d.gold_test_table();
    for doc in &d.test {
        for g in &doc.gold {
            if d.schema.index_of(&g.concept) == Some(d.schema.subject_index()) {
                continue;
            }
            let row = gold_table.get_row(&g.subject).expect("subject row");
            let ci = gold_table.schema().index_of(&g.concept).expect("concept");
            assert!(
                row.cell(ci).contains(&g.phrase),
                "gold ({}, {}, {}) missing from gold test table",
                g.subject,
                g.concept,
                g.phrase
            );
        }
    }
}

#[test]
fn resume_documents_bundle_five_subjects() {
    let d = generate(&DatasetSpec::resume(3, 0.5));
    let full: usize = d.test.iter().filter(|doc| doc.subjects.len() == 5).count();
    assert!(
        full >= d.test.len() - 1,
        "all but possibly the last doc hold 5 CVs"
    );
}

#[test]
fn full_scale_statistics_match_table_iii_band() {
    // Structural check at scale 1.0 (counts, not timings).
    let spec = DatasetSpec::disease_az(42, 1.0);
    let d = generate(&spec);
    let test = corpus_stats(&d.test);
    assert_eq!(test.subjects, 13);
    assert_eq!(test.documents, 78);
    // The paper's test split has 2,222 entities over 90 documents; ours
    // lands in the same order of magnitude.
    assert!(
        test.entities > 800 && test.entities < 4000,
        "entities {}",
        test.entities
    );
    let train = corpus_stats(&d.train);
    assert_eq!(train.subjects, 240);
    assert!(train.words > 50_000, "train words {}", train.words);
}

#[test]
fn novel_test_instances_are_absent_from_table() {
    let d = generate(&DatasetSpec::disease_az(17, 0.1));
    let mut novel = 0usize;
    let mut total = 0usize;
    for doc in &d.test {
        for g in &doc.gold {
            if d.schema.index_of(&g.concept) == Some(d.schema.subject_index()) {
                continue;
            }
            total += 1;
            let known = d
                .table
                .column_values(&g.concept)
                .iter()
                .any(|v| v.eq_ignore_ascii_case(&g.phrase));
            if !known {
                novel += 1;
            }
        }
    }
    let ratio = novel as f64 / total.max(1) as f64;
    assert!(
        ratio > 0.5,
        "most test gold should be unknown to the table (got {ratio:.2})"
    );
}
