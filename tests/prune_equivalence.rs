//! Property tests for the sub-linear candidate-generation tentpole:
//! **bound-pruned exact scans are bit-identical to the exhaustive
//! reference**. The pruned path (`PruneMode::Exact`, the default)
//! must reproduce `match_phrase_reference` exactly — same candidates,
//! same order, same score *bits* — across random semantic spaces, the
//! paper's τ sweep, worker threads {1, 4}, phrase cache {0, 4096},
//! backing {owned, mapped}, and after delta chains. `PruneMode::Off`
//! and `Exact` must agree everywhere (pruning is a pure execution
//! knob), the artifact bytes must not depend on the knob at all, and
//! pre-pruning artifacts (no `prune.*`/`quant.*` sections) must keep
//! loading with identical output. The one mode allowed to differ —
//! `Approx` — may only *miss*, and its measured recall is floored.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use thor_repro::core::{
    Document, EngineDelta, MapMode, PreparedEngine, PruneMode, SeedDelta, Thor, ThorConfig,
};
use thor_repro::data::{Schema, Table};
use thor_repro::embed::{SemanticSpaceBuilder, VectorStore};
use thor_repro::fault::{atomic_write, SectionFile, SectionWriter};
use thor_repro::matcher::{CandidateEntity, MatcherConfig, SimilarityMatcher};

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thor-prune-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn case_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Matcher-level properties: pruned == exhaustive, bit for bit.
// ---------------------------------------------------------------------

fn space(seed: u64) -> VectorStore {
    SemanticSpaceBuilder::new(24, seed)
        .spread(0.5)
        .topic("alpha")
        .topic("beta")
        .correlated_topic("gamma", "beta", 0.3)
        .words("alpha", ["ape", "ant", "asp", "auk"])
        .words("beta", ["bee", "bat", "boa", "bug"])
        .words("gamma", ["gnu", "gar", "goa"])
        .generic_words(["elk", "owl"])
        .build()
        .into_store()
}

fn concepts() -> Vec<(String, Vec<String>)> {
    vec![
        (
            "Alpha".to_string(),
            vec!["ape".to_string(), "ant".to_string()],
        ),
        (
            "Beta".to_string(),
            vec!["bee".to_string(), "bat".to_string()],
        ),
        ("Gamma".to_string(), vec!["gnu".to_string()]),
    ]
}

fn matcher(tau: f64, seed: u64, cache: usize) -> SimilarityMatcher {
    let config = MatcherConfig {
        tau,
        cache_capacity: cache,
        ..MatcherConfig::default()
    };
    SimilarityMatcher::fine_tune(&concepts(), space(seed), config)
}

/// Match every phrase over `threads` workers sharing the one matcher
/// (and therefore the one phrase cache), twice each so cache-hit
/// replays are covered too, and require all rounds to agree.
fn matched_concurrently(
    m: &SimilarityMatcher,
    phrases: &[String],
    threads: usize,
) -> Vec<Vec<CandidateEntity>> {
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    phrases
                        .iter()
                        .map(|p| m.match_phrase(p))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut rounds: Vec<Vec<Vec<CandidateEntity>>> = workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect();
        let first = rounds.remove(0);
        for later in &rounds {
            assert_eq!(&first, later, "concurrent rounds diverged");
        }
        first
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: `Exact` pruning reproduces the
    /// brute-force reference *bit-identically* — and `Off` agrees with
    /// `Exact` — for random spaces, every τ of the paper's sweep,
    /// cache {0, 4096} and threads {1, 4} on one shared matcher.
    #[test]
    fn pruned_exact_equals_exhaustive_bit_identically(
        words in prop::collection::vec(
            prop::collection::vec("(ape|ant|asp|auk|bee|bat|boa|bug|gnu|gar|goa|elk|owl|zzz)", 1..5),
            1..6,
        ),
        seed in 0u64..25,
        tau10 in 5u32..=10,
        cache_pick in 0usize..2,
        threads_pick in 0usize..2,
    ) {
        let cache = [0usize, 4096][cache_pick];
        let threads = [1usize, 4][threads_pick];
        let exact = matcher(tau10 as f64 / 10.0, seed, cache);
        let off = exact.with_prune_mode(PruneMode::Off);
        let phrases: Vec<String> = words.iter().map(|w| w.join(" ")).collect();

        let got = matched_concurrently(&exact, &phrases, threads);
        for (phrase, act) in phrases.iter().zip(&got) {
            let reference = exact.match_phrase_reference(phrase, |_| true);
            prop_assert_eq!(
                &reference, act,
                "pruned path diverged from reference on `{}`", phrase
            );
            let unpruned = off.match_phrase(phrase);
            prop_assert_eq!(
                &reference, &unpruned,
                "exhaustive mode diverged from reference on `{}`", phrase
            );
        }
    }
}

/// `Approx` may only lose candidates, never invent scores: with a
/// modest margin its measured recall against the exact candidate set
/// stays above the floor, and every candidate it does emit carries the
/// same exactly-rescored bits as the exact path's candidate for that
/// (phrase, concept).
#[test]
fn approx_recall_is_floored_and_survivors_are_exactly_rescored() {
    let mut exact_total = 0usize;
    let mut approx_hit = 0usize;
    for seed in 0..10u64 {
        let exact = matcher(0.6, seed, 0);
        let approx = exact.with_prune_mode(PruneMode::Approx { margin: 0.1 });
        let vocab = [
            "ape", "ant", "asp", "auk", "bee", "bat", "boa", "bug", "gnu", "gar", "goa", "elk",
            "owl",
        ];
        let mut phrases: Vec<String> = vocab.iter().map(|w| w.to_string()).collect();
        phrases.extend(vocab.windows(2).map(|w| w.join(" ")));
        for phrase in &phrases {
            let e = exact.match_phrase(phrase);
            let a = approx.match_phrase(phrase);
            let keys: BTreeSet<(String, String)> = a
                .iter()
                .map(|c| (c.phrase.clone(), c.concept.clone()))
                .collect();
            exact_total += e.len();
            for c in &e {
                if keys.contains(&(c.phrase.clone(), c.concept.clone())) {
                    approx_hit += 1;
                }
            }
            // Survivors are rescored through the exact f32 path: any
            // candidate approx emits for a (phrase, concept) the exact
            // path also emits must be bit-identical to it.
            for ac in &a {
                if let Some(ec) = e
                    .iter()
                    .find(|ec| ec.phrase == ac.phrase && ec.concept == ac.concept)
                {
                    assert_eq!(ec, ac, "approx survivor not exactly rescored: {phrase:?}");
                }
            }
        }
    }
    assert!(exact_total > 0, "workload produced no exact candidates");
    let recall = approx_hit as f64 / exact_total as f64;
    assert!(
        recall >= 0.9,
        "approx recall {recall:.3} fell below the 0.9 floor ({approx_hit}/{exact_total})"
    );
}

// ---------------------------------------------------------------------
// Engine-level properties: the knob is invisible to artifacts and to
// enrichment, including after delta chains and across map modes.
// ---------------------------------------------------------------------

fn engine_store() -> VectorStore {
    SemanticSpaceBuilder::new(24, 5)
        .topic("anatomy")
        .words(
            "anatomy",
            ["lungs", "brain", "skin", "nerve", "spine", "ear"],
        )
        .topic("medicine")
        .words("medicine", ["aspirin", "insulin"])
        .generic_words(["damages", "grows", "treats", "causes"])
        .build()
        .into_store()
}

fn base_table() -> Table {
    let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    table.fill_slot("Tuberculosis", "Anatomy", "lungs");
    table.row_for_subject("Acne");
    table
}

fn docs() -> Vec<Document> {
    vec![
        Document::new("d0", "Tuberculosis damages the lungs and the brain."),
        Document::new("d1", "Acne grows on the skin and damages the ear."),
        Document::new("d2", "Aspirin treats the nerve and the spine."),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// After a random delta chain, a chain-loaded engine enriches
    /// identically whether pruning is `Exact` (default) or `Off`, at
    /// every {cache} × {mmap} point — and the artifact bytes the
    /// evolved engine saves are byte-identical regardless of the
    /// execution knob it was running under.
    #[test]
    fn prune_modes_agree_after_delta_chains(
        seeds in prop::collection::vec((0usize..3, 0usize..6), 1..4),
        cache_pick in 0usize..2,
        mapped_pick in 0usize..2,
    ) {
        const SUBJECTS: [&str; 3] = ["Tuberculosis", "Acne", "Stroke"];
        const WORDS: [&str; 6] = ["lungs", "brain", "skin", "nerve", "spine", "ear"];
        let mode = [MapMode::Owned, MapMode::Mapped][mapped_pick];

        let mut config = ThorConfig::with_tau(0.6);
        config.cache_capacity = [0usize, 4096][cache_pick];
        let thor = Thor::new(engine_store(), config);
        let mut engine = thor.prepare(&base_table());

        let dir = scratch_dir();
        let case = case_id();
        let mut paths = vec![dir.join(format!("base-{case}.eng"))];
        engine.save(&paths[0]).unwrap();
        for (i, &(sub, word)) in seeds.iter().enumerate() {
            let mut rows = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
            rows.fill_slot(SUBJECTS[sub], "Anatomy", WORDS[word]);
            engine = engine.apply_delta(&EngineDelta::Seeds(SeedDelta::new(rows))).unwrap();
            let next = dir.join(format!("d{i}-{case}.eng"));
            engine.save_delta(paths.last().unwrap(), &next, "prune prop").unwrap();
            paths.push(next);
        }

        // The execution knob never reaches the artifact: the evolved
        // engine saves the same bytes under `Off` as under the default.
        let (pa, pb) = (
            dir.join(format!("exact-{case}.eng")),
            dir.join(format!("off-{case}.eng")),
        );
        engine.save(&pa).unwrap();
        engine.with_prune(PruneMode::Off).save(&pb).unwrap();
        prop_assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());

        let loaded = PreparedEngine::load_with(paths.last().unwrap(), mode).unwrap();
        prop_assert_eq!(loaded.fingerprint(), engine.fingerprint());
        let docs = docs();
        let exact = loaded.enrich(&docs);
        let off = loaded.with_prune(PruneMode::Off).enrich(&docs);
        prop_assert_eq!(&exact.entities, &off.entities);
        prop_assert_eq!(
            thor_repro::data::csv::to_csv(&exact.table),
            thor_repro::data::csv::to_csv(&off.table)
        );

        drop(loaded);
        for p in paths.iter().chain([&pa, &pb]) {
            std::fs::remove_file(p).ok();
        }
    }
}

/// A pre-pruning artifact — every `prune.*`/`quant.*` section stripped,
/// as a v2-era save would have produced — still loads under both map
/// modes, keeps its fingerprint, and enriches identically: the load
/// path rebuilds the pruning structures on the fly.
#[test]
fn artifacts_without_prune_sections_still_load_and_agree() {
    let dir = scratch_dir();
    let thor = Thor::new(engine_store(), ThorConfig::with_tau(0.6));
    let engine = thor.prepare(&base_table());
    let full = dir.join("compat-full.eng");
    engine.save(&full).unwrap();

    let file = SectionFile::open(&full, MapMode::Owned).unwrap();
    assert!(
        file.entry("prune.meta").is_some() && file.entry("quant.rows").is_some(),
        "fixture artifact should carry the pruning sections"
    );
    let mut w = SectionWriter::new();
    let mut dropped = 0;
    for e in file.entries() {
        if e.name.starts_with("prune.") || e.name.starts_with("quant.") {
            dropped += 1;
            continue;
        }
        w.add(&e.name, e.version, file.bytes(&e.name).unwrap());
    }
    assert_eq!(dropped, 8, "expected all eight pruning sections present");
    let stripped = dir.join("compat-stripped.eng");
    atomic_write(&stripped, &w.finish()).unwrap();
    drop(file);

    let docs = docs();
    let want = engine.enrich(&docs);
    for mode in [MapMode::Owned, MapMode::Mapped] {
        let loaded = PreparedEngine::load_with(&stripped, mode).unwrap();
        assert_eq!(loaded.fingerprint(), engine.fingerprint());
        let got = loaded.enrich(&docs);
        assert_eq!(want.entities, got.entities);
        assert_eq!(
            thor_repro::data::csv::to_csv(&want.table),
            thor_repro::data::csv::to_csv(&got.table)
        );
    }
    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&stripped).ok();
}
