//! Engine artifact round-trip contract: `thor build` persists a
//! [`PreparedEngine`] that, once loaded in a different process (or here,
//! a different instance), serves **byte-identical** enrichment output —
//! across worker-thread counts and with the phrase cache on or off — and
//! every tampered artifact is rejected with a named error, never a panic
//! or a silently different answer.

use std::time::Duration;

use thor_core::{
    Document, MapMode, PreparedEngine, Thor, ThorConfig, ENGINE_FORMAT_VERSION, ENGINE_MAGIC,
};
use thor_data::{outer_join, Schema, Table};
use thor_embed::{SemanticSpaceBuilder, VectorStore};
use thor_fault::ErrorKind;
use thor_obs::PipelineMetrics;

fn fixture_store() -> VectorStore {
    SemanticSpaceBuilder::new(32, 7)
        .spread(0.4)
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "skin", "lungs", "ear",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "deafness",
                "empyema",
                "non-cancerous",
            ],
        )
        .generic_words(["slow-growing", "grows", "damages", "may", "cause"])
        .build()
        .into_store()
}

fn fixture_table() -> Table {
    let mut d1 = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    d1.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    d1.fill_slot("Acne", "Anatomy", "skin");
    let mut d2 = Table::new(Schema::new(["Disease", "Complication"], "Disease"));
    d2.fill_slot("Acne", "Complication", "skin cancer");
    d2.row_for_subject("Tuberculosis");
    outer_join(&d1, &d2)
}

fn fixture_docs() -> Vec<Document> {
    vec![
        Document::new(
            "d0",
            "Acoustic Neuroma is a slow-growing non-cancerous brain tumor. \
             It may cause unsteadiness and deafness.",
        ),
        Document::new(
            "d1",
            "Tuberculosis generally damages the lungs and may cause empyema.",
        ),
        Document::new("d2", "Acne grows on the skin and may cause skin cancer."),
        Document::new("d3", "Tuberculosis may damage the nerve and the ear."),
    ]
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "thor-roundtrip-{tag}-{}-{:?}.thorengine",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Byte-identical serve output after a save → load cycle, across worker
/// thread counts {1, 4} and with the phrase cache on (4096) and off (0).
/// The cache and thread count are explicitly *not* part of the frozen
/// behavior — every combination must produce the same bytes.
#[test]
fn loaded_engine_serves_byte_identical_output() {
    let docs = fixture_docs();
    for cache in [0usize, 4096] {
        let mut config = ThorConfig::with_tau(0.6);
        config.cache_capacity = cache;
        let built = Thor::new(fixture_store(), config).prepare(&fixture_table());

        let path = scratch(&format!("serve-{cache}"));
        built.save(&path).expect("save engine");
        let loaded = PreparedEngine::load(&path).expect("load engine");
        std::fs::remove_file(&path).ok();

        assert_eq!(built.fingerprint(), loaded.fingerprint());
        let reference = built.enrich(&docs);
        let reference_csv = thor_data::csv::to_csv(&reference.table);
        for threads in [1usize, 4] {
            for (name, engine) in [("built", &built), ("loaded", &loaded)] {
                let out = engine.with_threads(threads).enrich(&docs);
                assert_eq!(
                    out.entities, reference.entities,
                    "{name} engine, cache={cache}, threads={threads}: entities diverged"
                );
                assert_eq!(
                    thor_data::csv::to_csv(&out.table),
                    reference_csv,
                    "{name} engine, cache={cache}, threads={threads}: enriched CSV diverged"
                );
                assert_eq!(out.slot_stats, reference.slot_stats);
            }
        }
    }
}

/// The loaded engine reports the same count-style pipeline metrics as
/// the in-memory build (timings are wall-clock and excluded).
#[test]
fn loaded_engine_count_metrics_match() {
    let docs = fixture_docs();
    let built = Thor::new(fixture_store(), ThorConfig::with_tau(0.6)).prepare(&fixture_table());
    let path = scratch("metrics");
    built.save(&path).expect("save engine");
    let loaded = PreparedEngine::load(&path).expect("load engine");
    std::fs::remove_file(&path).ok();

    let counts = |engine: &PreparedEngine| {
        let metrics = PipelineMetrics::new();
        engine.with_metrics(metrics.clone()).enrich(&docs);
        (
            [
                metrics.docs.get(),
                metrics.sentences.get(),
                metrics.noun_phrases.get(),
                metrics.subphrases.get(),
                metrics.candidates.get(),
                metrics.entities.get(),
                metrics.slots_inserted.get(),
                metrics.expansion_words.get(),
            ],
            [
                metrics.vocab_words.get(),
                metrics.cluster_representatives.get(),
            ],
            [metrics.prepare.spans(), metrics.inference.spans()],
        )
    };
    let (built_counts, built_gauges, built_spans) = counts(&built);
    let (loaded_counts, loaded_gauges, loaded_spans) = counts(&loaded);
    assert_eq!(built_counts, loaded_counts, "counters diverged");
    assert_eq!(built_gauges, loaded_gauges, "gauges diverged");
    assert_eq!(built_spans, loaded_spans, "span counts diverged");
    assert_eq!(built_spans, [1, 1], "one prepare span, one inference span");
}

/// Saving the same engine twice produces identical files — the artifact
/// encoder is fully deterministic (sorted store words, no timestamps).
#[test]
fn save_is_deterministic() {
    let engine = Thor::new(fixture_store(), ThorConfig::with_tau(0.7)).prepare(&fixture_table());
    let (a, b) = (scratch("det-a"), scratch("det-b"));
    engine.save(&a).unwrap();
    engine.save(&b).unwrap();
    let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    assert_eq!(ba, bb);
}

/// A derived engine (different τ or thread count) round-trips through
/// the artifact too — `save` is not restricted to freshly built engines.
#[test]
fn derived_engine_round_trips() {
    let docs = fixture_docs();
    let base = Thor::new(fixture_store(), ThorConfig::with_tau(0.5)).prepare(&fixture_table());
    let derived = base.with_tau(0.8).with_threads(4);
    let path = scratch("derived");
    derived.save(&path).unwrap();
    let loaded = PreparedEngine::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.tau(), 0.8);
    assert_eq!(loaded.config().threads, 4);
    assert_eq!(
        loaded.enrich(&docs).entities,
        derived.enrich(&docs).entities
    );
}

/// A version bump is rejected by name before any payload parsing runs.
#[test]
fn future_format_version_is_rejected() {
    let engine = Thor::new(fixture_store(), ThorConfig::with_tau(0.6)).prepare(&fixture_table());
    let path = scratch("version");
    engine.save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..8], ENGINE_MAGIC);
    bytes[8..12].copy_from_slice(&(ENGINE_FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = PreparedEngine::load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert_eq!(err.kind(), ErrorKind::Parse);
    let msg = err.to_string();
    assert!(
        msg.contains("unsupported") && msg.contains(&format!("{}", ENGINE_FORMAT_VERSION + 1)),
        "{msg}"
    );
}

/// Wrong magic, payload corruption, and truncation are each rejected
/// with their own named error (deterministic spot checks; the
/// exhaustive any-byte property lives in `corrupt_inputs.rs`).
#[test]
fn tampered_artifacts_are_rejected_by_name() {
    let engine = Thor::new(fixture_store(), ThorConfig::with_tau(0.6)).prepare(&fixture_table());
    let path = scratch("tamper");
    engine.save(&path).unwrap();
    let good = std::fs::read(&path).unwrap();

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xff;
    std::fs::write(&path, &bad_magic).unwrap();
    let err = PreparedEngine::load(&path).unwrap_err();
    assert!(err.to_string().contains("bad magic"), "{err}");

    let mut flipped = good.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    std::fs::write(&path, &flipped).unwrap();
    let err = PreparedEngine::load(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Validation);
    assert!(err.to_string().contains("checksum mismatch"), "{err}");

    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    let err = PreparedEngine::load(&path).unwrap_err();
    assert!(err.to_string().contains("truncated"), "{err}");

    std::fs::remove_file(&path).ok();
}

/// The full equivalence matrix of the zero-copy tentpole: backing
/// (owned vs mapped) × worker threads {1, 4} × phrase cache {0, 4096}
/// all serve byte-identical enriched CSVs and identical entity lists.
/// The mapped engine borrows its hot arrays straight from the file;
/// nothing about extraction may depend on that.
#[test]
fn mapped_and_owned_engines_are_byte_identical() {
    let docs = fixture_docs();
    for cache in [0usize, 4096] {
        let mut config = ThorConfig::with_tau(0.6);
        config.cache_capacity = cache;
        let built = Thor::new(fixture_store(), config).prepare(&fixture_table());
        let reference = built.enrich(&docs);
        let reference_csv = thor_data::csv::to_csv(&reference.table);

        let path = scratch(&format!("matrix-{cache}"));
        built.save(&path).expect("save engine");
        let owned = PreparedEngine::load_with(&path, MapMode::Owned).expect("owned load");
        let mapped = PreparedEngine::load_with(&path, MapMode::Mapped).expect("mapped load");
        for (name, engine) in [("owned", &owned), ("mapped", &mapped)] {
            assert_eq!(engine.fingerprint(), built.fingerprint(), "{name}");
            for threads in [1usize, 4] {
                let out = engine.with_threads(threads).enrich(&docs);
                assert_eq!(
                    out.entities, reference.entities,
                    "{name}, threads={threads}, cache={cache}: entities diverged"
                );
                assert_eq!(
                    thor_data::csv::to_csv(&out.table),
                    reference_csv,
                    "{name}, threads={threads}, cache={cache}: enriched CSV diverged"
                );
                assert_eq!(out.slot_stats, reference.slot_stats);
            }
        }
        // The mapped engine keeps the file borrowed; drop both loads
        // before removing the scratch file.
        drop((owned, mapped));
        std::fs::remove_file(&path).ok();
    }
}

/// One loaded engine shared across threads serves concurrently and
/// identically — the serve path is lock-free over immutable state.
#[test]
fn loaded_engine_is_shareable_across_threads() {
    let docs = fixture_docs();
    let built = Thor::new(fixture_store(), ThorConfig::with_tau(0.6)).prepare(&fixture_table());
    let path = scratch("share");
    built.save(&path).unwrap();
    let loaded = PreparedEngine::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let reference = built.enrich(&docs).entities;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = loaded.clone();
                let docs = &docs;
                scope.spawn(move || engine.enrich(docs).entities)
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), reference);
        }
    });
}

/// `prepare_time` of a loaded engine reflects the (fast) load, not the
/// original fine-tuning — serving from an artifact never pays the
/// Preparation cost again.
#[test]
fn loading_is_cheaper_than_building() {
    let t0 = std::time::Instant::now();
    let built = Thor::new(fixture_store(), ThorConfig::with_tau(0.6)).prepare(&fixture_table());
    let build_wall = t0.elapsed();
    let path = scratch("cheap");
    built.save(&path).unwrap();
    let loaded = PreparedEngine::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(loaded.prepare_time() > Duration::ZERO);
    // Not a timing assertion (CI noise) — just the bookkeeping contract:
    // the loaded engine's recorded prepare span is its own, not copied
    // from the builder.
    assert_ne!(loaded.prepare_time(), built.prepare_time());
    let _ = build_wall;
}
