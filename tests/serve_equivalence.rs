//! Serve/batch equivalence contract: the HTTP front end must return
//! **byte-identical** output to the batch CLI paths for the same frozen
//! engine — across worker-thread counts, phrase-cache settings, and the
//! early-abandon scorer — and concurrent clients must never see each
//! other's responses interleaved.

use std::collections::BTreeMap;

use thor_repro::core::{entities_tsv, Document, Thor, ThorConfig};
use thor_repro::data::{outer_join, to_csv, Schema, Table};
use thor_repro::embed::{SemanticSpaceBuilder, VectorStore};
use thor_repro::serve::http::request;
use thor_repro::serve::{ServeOptions, Server};

fn fixture_store() -> VectorStore {
    SemanticSpaceBuilder::new(32, 7)
        .spread(0.4)
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "skin", "lungs", "ear",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "deafness",
                "empyema",
                "non-cancerous",
            ],
        )
        .generic_words(["slow-growing", "grows", "damages", "may", "cause"])
        .build()
        .into_store()
}

fn fixture_table() -> Table {
    let mut d1 = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    d1.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    d1.fill_slot("Acne", "Anatomy", "skin");
    let mut d2 = Table::new(Schema::new(["Disease", "Complication"], "Disease"));
    d2.fill_slot("Acne", "Complication", "skin cancer");
    d2.row_for_subject("Tuberculosis");
    outer_join(&d1, &d2)
}

fn fixture_docs() -> Vec<Document> {
    vec![
        Document::new(
            "d0",
            "Acoustic Neuroma is a slow-growing non-cancerous brain tumor. \
             It may cause unsteadiness and deafness.",
        ),
        Document::new(
            "d1",
            "Tuberculosis generally damages the lungs and may cause empyema.",
        ),
        Document::new("d2", "Acne grows on the skin and may cause skin cancer."),
        Document::new("d3", "Tuberculosis may damage the nerve and the ear."),
    ]
}

/// The wire form of a document batch (`POST /enrich` / `POST /extract`).
fn batch_json(docs: &[Document]) -> Vec<u8> {
    use thor_obs::Json;
    let documents = docs
        .iter()
        .map(|d| {
            Json::Object(BTreeMap::from([
                ("id".to_string(), Json::Str(d.id.clone())),
                ("text".to_string(), Json::Str(d.text.clone())),
            ]))
        })
        .collect();
    Json::Object(BTreeMap::from([(
        "documents".to_string(),
        Json::Array(documents),
    )]))
    .render()
    .into_bytes()
}

/// Serve output is byte-identical to batch output across the execution
/// knob matrix: threads {1,4} x cache {0,4096} x early-abandon {on,off}.
/// None of these knobs may change a single output byte.
#[test]
fn serve_matches_batch_across_execution_knobs() {
    let docs = fixture_docs();
    let body = batch_json(&docs);
    let mut reference: Option<(String, String)> = None;

    for threads in [1usize, 4] {
        for cache in [0usize, 4096] {
            for early_abandon in [true, false] {
                let mut config = ThorConfig::with_tau(0.6);
                config.threads = threads;
                config.cache_capacity = cache;
                config.early_abandon = early_abandon;
                let engine = Thor::new(fixture_store(), config).prepare(&fixture_table());

                // Batch answers, straight from the engine.
                let batch = engine.enrich(&docs);
                let batch_csv = to_csv(&batch.table);
                let (entities, _) = engine.extract(&docs);
                let batch_tsv = entities_tsv(&entities);

                // Serve answers, over a real socket.
                let server = Server::bind(engine, "127.0.0.1:0", ServeOptions::default())
                    .expect("bind server");
                let addr = server.local_addr();
                let handle = server.shutdown_handle();
                let join = std::thread::spawn(move || server.run().expect("serve loop"));

                let tag = format!("threads={threads} cache={cache} abandon={early_abandon}");
                let enriched = request(&addr, "POST", "/enrich", &body).expect("POST /enrich");
                assert_eq!(enriched.status, 200, "{tag}: {}", enriched.body_str());
                assert_eq!(
                    enriched.header("X-Thor-Quarantined").map(str::trim),
                    Some("0"),
                    "{tag}: clean batch must not quarantine"
                );
                assert_eq!(
                    enriched.body_str(),
                    batch_csv,
                    "{tag}: /enrich differs from batch enrich"
                );

                let extracted = request(&addr, "POST", "/extract", &body).expect("POST /extract");
                assert_eq!(extracted.status, 200, "{tag}: {}", extracted.body_str());
                assert_eq!(
                    extracted.body_str(),
                    batch_tsv,
                    "{tag}: /extract differs from batch extract"
                );

                handle.shutdown();
                join.join().expect("server thread");

                // Every cell in the matrix must also agree with every
                // other cell — the knobs are execution-only.
                match &reference {
                    None => reference = Some((batch_csv, batch_tsv)),
                    Some((csv, tsv)) => {
                        assert_eq!(&batch_csv, csv, "{tag}: knob changed enrich bytes");
                        assert_eq!(&batch_tsv, tsv, "{tag}: knob changed extract bytes");
                    }
                }
            }
        }
    }
}

/// Concurrent clients hammering one server each get exactly their own
/// batch's answer — responses are never interleaved or swapped across
/// connections.
#[test]
fn concurrent_clients_get_their_own_responses() {
    let mut config = ThorConfig::with_tau(0.6);
    config.threads = 4;
    let engine = Thor::new(fixture_store(), config).prepare(&fixture_table());

    // Per-client expected bytes, computed from the engine before it
    // moves into the server.
    let all_docs = fixture_docs();
    let clients: Vec<(Vec<u8>, String)> = (0..8)
        .map(|i| {
            // Distinct batch per client: rotate through doc subsets.
            let subset: Vec<Document> = all_docs
                .iter()
                .cycle()
                .skip(i)
                .take(1 + (i % all_docs.len()))
                .cloned()
                .collect();
            let expected = to_csv(&engine.enrich(&subset).table);
            (batch_json(&subset), expected)
        })
        .collect();

    let server = Server::bind(engine, "127.0.0.1:0", ServeOptions::default()).expect("bind server");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));

    std::thread::scope(|scope| {
        for (i, (body, expected)) in clients.iter().enumerate() {
            scope.spawn(move || {
                // Several rounds per client to stretch the overlap
                // window between connections.
                for round in 0..4 {
                    let resp = request(&addr, "POST", "/enrich", body).expect("client request");
                    assert_eq!(resp.status, 200, "client {i} round {round}");
                    assert_eq!(
                        resp.body_str(),
                        *expected,
                        "client {i} round {round}: got someone else's (or corrupt) response"
                    );
                }
            });
        }
    });

    handle.shutdown();
    join.join().expect("server thread");
}
