//! Property tests for the incremental-engine tentpole: **a chain of
//! additive deltas is bit-identical to a fresh build of the final
//! state**. Random sequences of seed/concept additions are applied both
//! as in-memory deltas (persisted as stacked delta artifacts) and as
//! plain table edits fed to `Thor::prepare`; the two must agree on the
//! fingerprint, the saved artifact bytes, and the enrichment output —
//! across worker threads {1, 4} × phrase cache {0, 4096} × backing
//! {owned, mapped}. Corrupt or truncated delta files are rejected with
//! a named error (never a panic) while the base keeps serving, and a
//! delta whose recorded parent fingerprint does not match the chain
//! below it is rejected by name.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use thor_repro::core::{
    ConceptDelta, Document, EngineDelta, MapMode, PreparedEngine, SeedDelta, Thor, ThorConfig,
};
use thor_repro::data::{Schema, Table};
use thor_repro::embed::{SemanticSpaceBuilder, VectorStore};
use thor_repro::fault::{
    atomic_write, DeltaMeta, SectionFile, SectionWriter, DELTA_META_SECTION, DELTA_META_VERSION,
};

const SUBJECTS: [&str; 5] = ["Tuberculosis", "Acne", "Stroke", "Neuroma", "Asthma"];
const WORDS: [&str; 8] = [
    "lungs", "brain", "skin", "nerve", "spine", "ear", "aspirin", "insulin",
];
const NEW_CONCEPTS: [&str; 3] = ["Treatment", "Complication", "Symptom"];

fn store() -> VectorStore {
    SemanticSpaceBuilder::new(24, 5)
        .topic("anatomy")
        .words(
            "anatomy",
            ["lungs", "brain", "skin", "nerve", "spine", "ear"],
        )
        .topic("medicine")
        .words("medicine", ["aspirin", "insulin"])
        .generic_words(["damages", "grows", "treats", "causes"])
        .build()
        .into_store()
}

fn base_table() -> Table {
    let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    table.fill_slot("Tuberculosis", "Anatomy", "lungs");
    table.row_for_subject("Acne");
    table
}

fn docs() -> Vec<Document> {
    vec![
        Document::new("d0", "Tuberculosis damages the lungs and the brain."),
        Document::new("d1", "Acne grows on the skin and damages the ear."),
        Document::new("d2", "Aspirin treats the nerve and the spine."),
        Document::new("d3", "Stroke causes insulin problems."),
    ]
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thor-delta-chain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn case_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The table-side replay of a delta, applied to the mirror table.
type Replay = Box<dyn Fn(&mut Table)>;

/// Interpret one raw op tuple against the currently available schema:
/// a new concept column (while any remain), a seed value into an
/// existing column, or a bare new subject row.
fn interpret_op(
    kind: usize,
    sub: usize,
    word: usize,
    added: &mut Vec<&'static str>,
) -> (EngineDelta, Replay) {
    match kind {
        0 if added.len() < NEW_CONCEPTS.len() => {
            let name = NEW_CONCEPTS[added.len()];
            added.push(name);
            (
                EngineDelta::Concept(ConceptDelta::new(name)),
                Box::new(move |t: &mut Table| *t = t.with_concept(name)),
            )
        }
        1 => {
            let subject = SUBJECTS[sub];
            let mut columns = vec!["Anatomy"];
            columns.extend(added.iter().copied());
            let column = columns[(sub + word) % columns.len()];
            let value = WORDS[word];
            let mut rows = Table::new(Schema::new(["Disease", column], "Disease"));
            rows.fill_slot(subject, column, value);
            (
                EngineDelta::Seeds(SeedDelta::new(rows)),
                Box::new(move |t: &mut Table| {
                    t.row_for_subject(subject);
                    t.fill_slot(subject, column, value);
                }),
            )
        }
        _ => {
            let subject = SUBJECTS[sub];
            let mut rows = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
            rows.row_for_subject(subject);
            (
                EngineDelta::Seeds(SeedDelta::new(rows)),
                Box::new(move |t: &mut Table| {
                    t.row_for_subject(subject);
                }),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant under random addition sequences. Each case
    /// draws its own point of the {threads} × {cache} × {mmap} matrix,
    /// so the suite as a whole sweeps every combination.
    #[test]
    fn random_delta_chains_match_fresh_builds(
        ops in prop::collection::vec((0usize..3, 0usize..5, 0usize..8), 1..5),
        threads_pick in 0usize..2,
        cache_pick in 0usize..2,
        mapped_pick in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_pick];
        let cache = [0usize, 4096][cache_pick];
        let mode = [MapMode::Owned, MapMode::Mapped][mapped_pick];

        let mut config = ThorConfig::with_tau(0.6);
        config.cache_capacity = cache;
        let thor = Thor::new(store(), config);
        let mut engine = thor.prepare(&base_table());
        let mut mirror = base_table();

        let dir = scratch_dir();
        let case = case_id();
        let mut paths = vec![dir.join(format!("base-{case}.eng"))];
        engine.save(&paths[0]).unwrap();

        let mut added: Vec<&'static str> = Vec::new();
        for (i, &(kind, sub, word)) in ops.iter().enumerate() {
            let (delta, replay) = interpret_op(kind, sub, word, &mut added);
            engine = engine.apply_delta(&delta).unwrap();
            replay(&mut mirror);
            let next = dir.join(format!("d{i}-{case}.eng"));
            engine.save_delta(paths.last().unwrap(), &next, "prop case").unwrap();
            paths.push(next);
        }

        let fresh = thor.prepare(&mirror);
        prop_assert_eq!(engine.fingerprint(), fresh.fingerprint());

        // Saved-bytes identity of the evolved engine vs the fresh build.
        let (pa, pb) = (
            dir.join(format!("evolved-{case}.eng")),
            dir.join(format!("fresh-{case}.eng")),
        );
        engine.save(&pa).unwrap();
        fresh.save(&pb).unwrap();
        prop_assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());

        // The persisted chain serves byte-identically to the fresh build
        // at this case's matrix point.
        let loaded = PreparedEngine::load_with(paths.last().unwrap(), mode).unwrap();
        prop_assert_eq!(loaded.chain_depth(), ops.len());
        prop_assert_eq!(loaded.fingerprint(), fresh.fingerprint());
        let docs = docs();
        let a = loaded.with_threads(threads).enrich(&docs);
        let b = fresh.with_threads(threads).enrich(&docs);
        prop_assert_eq!(&a.entities, &b.entities);
        prop_assert_eq!(
            thor_repro::data::csv::to_csv(&a.table),
            thor_repro::data::csv::to_csv(&b.table)
        );

        drop(loaded);
        for p in paths.iter().chain([&pa, &pb]) {
            std::fs::remove_file(p).ok();
        }
    }
}

/// Shared fixture for the corruption properties: a base artifact plus
/// one delta file, built once.
fn corruption_fixture() -> &'static (PathBuf, Vec<u8>, String) {
    static FIXTURE: std::sync::OnceLock<(PathBuf, Vec<u8>, String)> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = scratch_dir();
        let thor = Thor::new(store(), ThorConfig::with_tau(0.6));
        let engine = thor.prepare(&base_table());
        let base = dir.join("corrupt-base.eng");
        engine.save(&base).unwrap();
        let mut rows = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
        rows.fill_slot("Stroke", "Anatomy", "nerve");
        let evolved = engine
            .apply_delta(&EngineDelta::Seeds(SeedDelta::new(rows)))
            .unwrap();
        let delta = dir.join("corrupt-delta.eng");
        evolved
            .save_delta(&base, &delta, "corruption fixture")
            .unwrap();
        let bytes = std::fs::read(&delta).unwrap();
        std::fs::remove_file(&delta).ok();
        (base, bytes, engine.fingerprint().to_string())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single-byte flip or truncation of a delta file is rejected
    /// with a named error — never a panic, never silently different
    /// output — and the base artifact keeps loading and serving.
    #[test]
    fn corrupt_or_truncated_delta_is_rejected_while_base_serves(
        pos in 0usize..100_000,
        flip in 0u8..=255,
        truncate in 0usize..2,
    ) {
        let (base, good, base_fingerprint) = corruption_fixture();
        let dir = scratch_dir();
        let path = dir.join(format!("corrupt-case-{}.eng", case_id()));
        let bad = if truncate == 1 {
            good[..pos % good.len()].to_vec()
        } else {
            let mut bytes = good.clone();
            let at = pos % bytes.len();
            bytes[at] ^= flip | 1; // guaranteed change
            bytes
        };
        atomic_write(&path, &bad).unwrap();
        // Owned load verifies every checksum up front: the damage must
        // surface as an error here, whatever byte it hit.
        let err = PreparedEngine::load_with(&path, MapMode::Owned);
        prop_assert!(err.is_err(), "corrupted delta accepted");
        // The base is untouched by the broken delta next to it.
        let served = PreparedEngine::load(base).unwrap();
        prop_assert_eq!(served.fingerprint(), base_fingerprint.as_str());
        std::fs::remove_file(&path).ok();
    }
}

/// A delta whose recorded parent *fingerprint* disagrees with the chain
/// below it — crafted via the public [`DeltaMeta`] — is rejected by
/// name, with both fingerprints in the message, even though every
/// checksum (including the directory link) is intact.
#[test]
fn stale_fingerprint_link_is_rejected_by_name() {
    let dir = scratch_dir();
    let thor = Thor::new(store(), ThorConfig::with_tau(0.6));
    let engine = thor.prepare(&base_table());
    let base = dir.join("fp-base.eng");
    engine.save(&base).unwrap();

    let parent = SectionFile::open(&base, MapMode::Owned).unwrap();
    let meta = DeltaMeta {
        parent: "fp-base.eng".into(),
        parent_dir_checksum: parent.dir_checksum(),
        parent_fingerprint: "deadbeef-not-the-real-fingerprint".into(),
        depth: 1,
        note: "crafted".into(),
    };
    drop(parent);
    let mut w = SectionWriter::new();
    w.add(DELTA_META_SECTION, DELTA_META_VERSION, &meta.encode());
    let delta = dir.join("fp-delta.eng");
    atomic_write(&delta, &w.finish()).unwrap();

    let err = PreparedEngine::load(&delta).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("delta base mismatch"), "{msg}");
    assert!(msg.contains("deadbeef-not-the-real-fingerprint"), "{msg}");
    assert!(msg.contains(engine.fingerprint()), "{msg}");
    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&delta).ok();
}
