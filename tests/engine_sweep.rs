//! τ-sweep equivalence: serving a whole τ sweep off **one**
//! [`PreparedEngine`] build (`run_thor_sweep`) must reproduce exactly
//! what a fresh per-τ fine-tune (`run_system(System::Thor(τ))`)
//! produces — same predictions, same evaluation report, same names.
//! This is the benchmark-harness-level face of τ-monotonicity: the
//! engine's frozen candidate lists at the lowest τ contain every
//! candidate any higher τ accepts.

use thor_bench::{disease_dataset, prepare_engine, run_system, run_thor_sweep, tau_sweep, System};
use thor_repro::datagen::Split;

#[test]
fn sweep_off_one_engine_matches_per_tau_rebuilds() {
    let dataset = disease_dataset(42, 0.1);
    let taus: Vec<f64> = tau_sweep().collect();
    let swept = run_thor_sweep(&dataset, &taus);
    assert_eq!(swept.len(), taus.len());
    for (out, &tau) in swept.iter().zip(&taus) {
        let fresh = run_system(&System::Thor(tau), &dataset);
        assert_eq!(out.system, fresh.system);
        assert_eq!(
            out.predictions, fresh.predictions,
            "tau={tau}: engine-served predictions diverged from a fresh fine-tune"
        );
        assert_eq!(out.report.precision, fresh.report.precision, "tau={tau}");
        assert_eq!(out.report.recall, fresh.report.recall, "tau={tau}");
        assert_eq!(out.report.f1, fresh.report.f1, "tau={tau}");
        assert!(out.time.is_some(), "THOR outcomes report wall-clock");
    }
}

#[test]
fn sweep_order_does_not_matter() {
    let dataset = disease_dataset(7, 0.1);
    let ascending: Vec<f64> = tau_sweep().collect();
    let mut descending = ascending.clone();
    descending.reverse();
    let up = run_thor_sweep(&dataset, &ascending);
    let mut down = run_thor_sweep(&dataset, &descending);
    down.reverse();
    for (a, b) in up.iter().zip(&down) {
        assert_eq!(a.system, b.system);
        assert_eq!(a.predictions, b.predictions);
    }
}

#[test]
fn empty_sweep_is_empty() {
    let dataset = disease_dataset(42, 0.1);
    assert!(run_thor_sweep(&dataset, &[]).is_empty());
}

/// Higher τ can only shrink the expansion, so predictions are
/// monotonically non-increasing across the sweep — served off the one
/// shared engine build.
#[test]
fn predictions_monotone_in_tau() {
    let dataset = disease_dataset(42, 0.1);
    let engine = prepare_engine(&dataset, 0.5);
    let docs = dataset.documents(Split::Test);
    let mut last = usize::MAX;
    for tau in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let n = engine.with_tau(tau).extract(&docs).0.len();
        assert!(
            n <= last,
            "tau={tau}: {n} predictions after {last} at the lower tau"
        );
        last = n;
    }
}
