//! Schema evolution — THOR's killer feature versus fine-tuned language
//! models: when the integrated schema gains a concept, an LM pipeline
//! must re-annotate its corpus and re-train; THOR only needs the new
//! concept's seed instances and a re-run of its (cheap) fine-tuning.
//!
//! This example enriches a table, then *evolves the schema* with a new
//! `Symptom` concept and a handful of seeds, and immediately extracts
//! entities for it from the same documents — no annotation involved.
//!
//! Run with: `cargo run --release --example schema_evolution`

use thor_core::{Document, Thor, ThorConfig};
use thor_data::{Schema, Table};
use thor_embed::SemanticSpaceBuilder;

fn main() {
    let store = SemanticSpaceBuilder::new(32, 11)
        .spread(0.4)
        .topic("anatomy")
        .topic("symptom")
        .words("anatomy", ["lungs", "brain", "nerve", "spine", "ear"])
        .words(
            "symptom",
            ["fever", "cough", "fatigue", "dizziness", "nausea"],
        )
        .generic_words(["damages", "patients", "generally"])
        .build()
        .into_store();

    let docs = vec![Document::new(
        "d1",
        "Tuberculosis generally damages the lungs. \
         Patients often report fever, cough and fatigue.",
    )];

    // ── Version 1 of the integrated schema: no Symptom concept ───────
    let mut v1 = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    v1.fill_slot("Tuberculosis", "Anatomy", "brain");

    let thor = Thor::new(store, ThorConfig::with_tau(0.6));
    let r1 = thor.enrich(&v1, &docs);
    println!("schema v1 (Disease, Anatomy):");
    for e in &r1.entities {
        println!("  {:<10} ← {}", e.concept, e.phrase);
    }
    println!("  (fever/cough/fatigue are invisible — no concept covers them)\n");

    // ── Schema evolves: Symptom is added with two known instances ────
    let mut v2 = Table::new(Schema::new(["Disease", "Anatomy", "Symptom"], "Disease"));
    v2.fill_slot("Tuberculosis", "Anatomy", "brain");
    v2.fill_slot("Tuberculosis", "Symptom", "dizziness");
    v2.fill_slot("Tuberculosis", "Symptom", "nausea");

    // Same THOR instance, same documents — just re-run. Fine-tuning is
    // per-call and takes milliseconds; no corpus re-annotation.
    let r2 = thor.enrich(&v2, &docs);
    println!("schema v2 (Disease, Anatomy, + Symptom) — same documents, re-run only:");
    for e in &r2.entities {
        println!("  {:<10} ← {} (score {:.2})", e.concept, e.phrase, e.score);
    }
    let symptoms: Vec<&str> = r2
        .entities
        .iter()
        .filter(|e| e.concept == "Symptom")
        .map(|e| e.phrase.as_str())
        .collect();
    println!(
        "\nnew Symptom slots filled from the same old text: {}",
        symptoms.join(", ")
    );
    println!(
        "fine-tuning took {:?} — compare with re-annotating a corpus for weeks.",
        r2.prepare_time
    );
}
