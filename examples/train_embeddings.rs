//! Learned embeddings — run THOR on vectors *trained from raw text*
//! with the from-scratch SGNS (word2vec) implementation, instead of the
//! synthetic oracle space. Demonstrates that the pipeline's semantics
//! come from plain co-occurrence statistics, like the paper's
//! pre-trained vectors.
//!
//! Run with: `cargo run --release --example train_embeddings`

use thor_core::{Thor, ThorConfig};
use thor_datagen::{generate, DatasetSpec, Split};
use thor_embed::{SgnsConfig, SgnsTrainer};
use thor_text::{normalize_phrase, split_sentences};

fn main() {
    // Generate the corpus (we only use its *text* for training).
    let dataset = generate(&DatasetSpec::disease_az(42, 0.08));

    // ── Train word vectors on the raw train+validation text ──────────
    let mut corpus: Vec<Vec<String>> = Vec::new();
    for doc in dataset.train.iter().chain(&dataset.validation) {
        for sentence in split_sentences(&doc.doc.text) {
            let words: Vec<String> = normalize_phrase(&sentence.text)
                .split_whitespace()
                .map(str::to_string)
                .collect();
            if words.len() > 2 {
                corpus.push(words);
            }
        }
    }
    println!("training SGNS on {} sentences...", corpus.len());
    let config = SgnsConfig {
        dim: 48,
        epochs: 6,
        window: 4,
        min_count: 3,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let learned = SgnsTrainer::new(config).train(&corpus);
    println!("trained {} vectors in {:?}\n", learned.len(), t0.elapsed());

    // ── Sanity: same-concept instances should be neighbours ──────────
    let sample_concept = dataset.schema.concepts()[1].name();
    let instances = dataset.table.column_values(sample_concept);
    if let (Some(a), Some(b)) = (instances.first(), instances.get(1)) {
        if let Some(sim) = learned.phrase_similarity(a, b) {
            println!("learned similarity of two `{sample_concept}` instances: {sim:.2}");
        }
    }

    // ── Run THOR with the learned vectors ────────────────────────────
    let table = dataset.enrichment_table();
    let docs = dataset.documents(Split::Test);
    for (label, store) in [
        ("learned (SGNS)", learned),
        ("oracle space", dataset.store.clone()),
    ] {
        let thor = Thor::new(store, ThorConfig::with_tau(0.7));
        let (entities, prep, infer) = thor.extract(&table, &docs);
        println!(
            "{label:<16}: {} entities extracted (fine-tune {:?}, inference {:?})",
            entities.len(),
            prep,
            infer
        );
    }
    println!("\nBoth vector sources drive the same pipeline — the cluster structure THOR");
    println!("needs emerges from co-occurrence statistics alone.");
}
