//! Résumé enrichment — the paper's Experiment 3 scenario: an
//! organization's in-house data (job-seeker CVs, five per document)
//! unlike any public benchmark. Shows multi-subject segmentation and
//! THOR's per-concept behaviour on the unseen domain.
//!
//! Run with: `cargo run --release --example resume_enrichment`

use thor_core::{Thor, ThorConfig};
use thor_datagen::{generate, DatasetSpec, Split};

fn main() {
    let dataset = generate(&DatasetSpec::resume(42, 0.1));
    let docs = dataset.documents(Split::Test);
    println!(
        "Résumé dataset (scale 0.1): {} test documents, {} CVs per document",
        docs.len(),
        dataset
            .docs(Split::Test)
            .first()
            .map(|d| d.subjects.len())
            .unwrap_or(0)
    );

    let table = dataset.enrichment_table();
    let thor = Thor::new(dataset.store.clone(), ThorConfig::with_tau(0.8));
    let result = thor.enrich(&table, &docs);

    // Group extracted entities per subject (CV) for the first document.
    if let Some(first) = dataset.docs(Split::Test).first() {
        println!(
            "\ndocument `{}` covers {} candidates:",
            first.doc.id,
            first.subjects.len()
        );
        for subject in &first.subjects {
            println!("  ── {subject}");
            let mut entities: Vec<_> = result
                .entities
                .iter()
                .filter(|e| &e.subject == subject && e.doc_id == first.doc.id)
                .collect();
            entities.sort_by(|a, b| a.concept.cmp(&b.concept));
            for e in entities.iter().take(6) {
                println!("       {:<22} {}", e.concept, e.phrase);
            }
        }
    }

    // The filled row for one subject, straight from the enriched table.
    if let Some(first) = dataset.docs(Split::Test).first() {
        if let Some(subject) = first.subjects.first() {
            let row = result.table.get_row(subject).expect("row exists");
            println!("\nenriched row for `{subject}`:");
            for (ci, concept) in result.table.schema().concepts().iter().enumerate() {
                let values: Vec<&str> = row.cell(ci).values().collect();
                if !values.is_empty() {
                    println!("  {:<22} {}", concept.name(), values.join(" | "));
                }
            }
        }
    }

    println!(
        "\ntotal: {} entities extracted, {} slots filled across {} candidates",
        result.entities.len(),
        result.slot_stats.inserted,
        result.table.len()
    );
}
