//! Quickstart — the paper's Fig. 1 scenario end to end.
//!
//! Two health-data sources are integrated with an outer join, producing
//! labeled nulls (⊥); THOR then conceptualizes an external document
//! against the integrated schema and slot-fills the missing values.
//!
//! Run with: `cargo run --example quickstart`

use thor_core::{Document, Thor, ThorConfig};
use thor_data::{outer_join, sparsity, Schema, Table};
use thor_embed::SemanticSpaceBuilder;

fn main() {
    // ── Two sources that only partially overlap ─────────────────────
    let mut d1 = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    d1.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    d1.fill_slot("Acne", "Anatomy", "skin");

    let mut d2 = Table::new(Schema::new(["Disease", "Complication"], "Disease"));
    d2.fill_slot("Acne", "Complication", "skin cancer");
    d2.row_for_subject("Tuberculosis");

    // ── Integration creates the sparsity problem ────────────────────
    let integrated = outer_join(&d1, &d2);
    let before = sparsity(&integrated);
    println!("integrated table ({} rows):", integrated.len());
    print!("{}", thor_data::csv::to_csv(&integrated));
    println!(
        "sparsity: {:.0}% of slots are labeled nulls (⊥)\n",
        before.ratio * 100.0
    );

    // ── Word vectors covering the domain ────────────────────────────
    // (stands in for pre-trained embeddings; see DESIGN.md §2)
    let store = SemanticSpaceBuilder::new(32, 7)
        .spread(0.4)
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "skin", "lungs", "ear",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "deafness",
                "empyema",
                "non-cancerous",
            ],
        )
        .generic_words(["slow-growing", "grows", "damages", "may", "cause"])
        .build()
        .into_store();

    // ── External text — the untapped asset ──────────────────────────
    let doc = Document::new(
        "web-article",
        "Acoustic Neuroma is a slow-growing non-cancerous brain tumor. \
         It may cause unsteadiness and deafness. \
         Tuberculosis generally damages the lungs and may cause empyema.",
    );

    // ── THOR: conceptualize and slot-fill ────────────────────────────
    let thor = Thor::new(store, ThorConfig::with_tau(0.6));
    let result = thor.enrich(&integrated, &[doc]);

    println!("extracted entities:");
    for e in &result.entities {
        println!(
            "  <{:<30}> {:<14} ← \"{}\" (score {:.2}, via seed \"{}\")",
            e.subject, e.concept, e.phrase, e.score, e.matched_instance
        );
    }

    let after = sparsity(&result.table);
    println!("\nenriched table:");
    print!("{}", thor_data::csv::to_csv(&result.table));
    println!(
        "\nsparsity: {:.0}% → {:.0}%  ({} slots filled, {} duplicates skipped)",
        before.ratio * 100.0,
        after.ratio * 100.0,
        result.slot_stats.inserted,
        result.slot_stats.duplicates
    );
}
