//! Disease A–Z enrichment — the paper's Experiment 1 workload at small
//! scale: generate the integrated health table and document corpus, run
//! THOR on the test split, evaluate against the gold annotations, and
//! show the sparsity reduction on the stripped test table.
//!
//! Run with: `cargo run --release --example disease_enrichment`

use thor_core::{Thor, ThorConfig};
use thor_data::sparsity;
use thor_datagen::{corpus_stats, generate, DatasetSpec, Split};
use thor_eval::{evaluate, Annotation};

fn main() {
    let dataset = generate(&DatasetSpec::disease_az(42, 0.1));
    let stats = corpus_stats(dataset.docs(Split::Test));
    println!(
        "Disease A-Z (scale 0.1): {} test docs / {} subjects / {} gold entities",
        stats.documents, stats.subjects, stats.entities
    );

    let table = dataset.enrichment_table();
    let before = sparsity(&table);

    let thor = Thor::new(dataset.store.clone(), ThorConfig::with_tau(0.7));
    let result = thor.enrich(&table, &dataset.documents(Split::Test));

    // ── Evaluation against gold ─────────────────────────────────────
    let gold: Vec<Annotation> = dataset
        .docs(Split::Test)
        .iter()
        .flat_map(|d| {
            d.gold
                .iter()
                .map(|g| Annotation::new(d.doc.id.clone(), &g.concept, &g.phrase))
        })
        .collect();
    let mut gold_dedup = gold;
    gold_dedup.sort_by(|a, b| {
        (&a.doc_id, &a.concept, &a.phrase).cmp(&(&b.doc_id, &b.concept, &b.phrase))
    });
    gold_dedup.dedup();
    let predictions: Vec<Annotation> = result
        .entities
        .iter()
        .map(|e| Annotation::new(e.doc_id.clone(), &e.concept, &e.phrase))
        .collect();
    let report = evaluate(&predictions, &gold_dedup);

    println!(
        "\nTHOR tau=0.7: P={:.2} R={:.2} F1={:.2} ({} predictions, {} gold)",
        report.precision, report.recall, report.f1, report.predicted_total, report.gold_total
    );
    println!(
        "match classes: {} exact, {} partial, {} wrong-type, {} spurious, {} missed",
        report.correct, report.partial, report.incorrect, report.spurious, report.missing
    );

    // ── Per-concept view ─────────────────────────────────────────────
    println!("\nper-concept sensitivity:");
    for c in &report.per_concept {
        println!(
            "  {:<14} {:>5.1}%  ({} gold)",
            c.concept,
            c.sensitivity * 100.0,
            c.gold
        );
    }

    let after = sparsity(&result.table);
    println!(
        "\ntable sparsity: {:.1}% → {:.1}% ({} new values)",
        before.ratio * 100.0,
        after.ratio * 100.0,
        result.slot_stats.inserted
    );
    println!(
        "timing: fine-tune {:?}, inference {:?}",
        result.prepare_time, result.inference_time
    );
}
