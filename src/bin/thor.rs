//! `thor` — command-line front end for the THOR reproduction.
//!
//! ```text
//! thor integrate <src.csv>... [--out R.csv]          full disjunction of sources
//! thor sparsity <table.csv>                          sparsity report
//! thor build --table R.csv --vectors v.txt --engine e.thor
//!            [--tau 0.7] [--context-gate G] [--threads N]
//!                                                    prepare + persist an engine
//! thor enrich --table R.csv [--tau 0.7] [--vectors v.txt]
//!             [--context-gate G] [--threads N] [--metrics[=json]] [--cache-stats]
//!             [--strict | --lenient] [--quarantine q.tsv]
//!             [--checkpoint DIR [--resume]] [--stream [--chunk N]]
//!             [--out enriched.csv] [--entities e.tsv]
//!             <doc.txt | corpus-dir>...              run the pipeline
//! thor enrich --engine e.thor [--engine-mmap on|off] [--threads N]
//!             [--prune exact|approx|off [--prune-margin M]] ...
//!             <doc.txt | corpus-dir>...              serve from a built engine
//! thor serve --engine e.thor [--engine-mmap on|off] [--addr HOST:PORT]
//!            [--addr-file PATH] [--threads N] [--queue N] [--read-timeout-ms MS]
//!            [--refine kernel|reference] [--prune exact|approx|off] [--metrics[=json]]
//!                                                    HTTP front end (see thor-serve)
//! thor delta --engine base.eng [--add-concept NAME] [--add-seeds rows.csv]
//!            --out d1.eng [--note TEXT] [--engine-mmap on|off]
//!                                                    apply an additive delta
//! thor compact --engine dN.eng --out folded.eng      fold a delta chain
//! thor inspect --engine e.thor                       section directory + checksums
//! thor evaluate --gold gold.tsv --pred pred.tsv      SemEval partial-match scores
//! thor generate --dataset disease|resume [--scale S] [--seed N] --out DIR
//!                                                    write dataset artifacts
//! ```
//!
//! Build/serve split: `thor build` runs the Preparation phase once and
//! persists the result as a versioned, checksummed binary artifact
//! (written atomically); `thor enrich --engine` serves from it without
//! re-running fine-tuning and produces byte-identical output to the
//! equivalent direct run. The artifact freezes the table, vectors, τ and
//! model parameters — `--threads` stays adjustable at serve time.
//! By default the artifact is memory-mapped (`--engine-mmap on`): the
//! hot arrays are borrowed from the file in place, startup cost is
//! independent of vocabulary size, and concurrent processes share one
//! physical copy; `--engine-mmap off` loads into owned memory with
//! every checksum verified up front. `thor inspect --engine` verifies
//! everything offline. `--stream` reads the corpus out-of-core in
//! `--chunk`-sized batches (positional directories expand to their
//! sorted `.txt` files), byte-identical to the batch run.
//! Engines evolve without rebuilds: `thor delta` applies an additive
//! change (new seed rows, a new concept column) to a built engine and
//! writes a **delta artifact** — only the sections that changed, plus a
//! checksummed link to the parent — that loads exactly like a full
//! artifact and extracts bit-identically to a fresh build of the final
//! state. Deltas stack; `thor compact` folds a chain back into the
//! single artifact a fresh build would have written, byte-identical.
//! `thor inspect` recognizes delta artifacts and prints the chain.
//! Checkpoint/resume composes with engines: the resume fingerprint
//! covers configuration + table + corpus, so a checkpoint taken with an
//! engine resumes under the same engine (or an identically-built one).
//!
//! Annotation TSV format: `doc_id<TAB>concept<TAB>phrase`, one per line.
//! Vector file format: word2vec-style text (`thor generate` writes one).
//! When `enrich` gets no `--vectors`, vectors are trained on the input
//! documents with the built-in SGNS trainer.
//!
//! Fault tolerance: `--strict` (the default) fails fast on the first bad
//! input; `--lenient` quarantines bad rows and documents (reported to
//! stderr, and to `--quarantine PATH` as TSV) and finishes the run.
//! `--checkpoint DIR` persists resumable state; a killed run restarted
//! with `--resume` reproduces the uninterrupted output byte-for-byte.
//! All artifact writes are atomic (temp file + fsync + rename). The
//! `THOR_FAILPOINTS` environment variable arms deterministic fault
//! injection (see thor-fault).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use thor_repro::core::{
    compact_chain, entities_tsv, ConceptDelta, Document, EngineDelta, PipelineMetrics,
    PreparedEngine, PruneMode, ResilientOptions, RunMode, SeedDelta, Thor, ThorConfig,
};
use thor_repro::data::csv::{from_csv, from_csv_lenient, to_csv, SkippedRow};
use thor_repro::data::CorpusDir;
use thor_repro::data::{full_disjunction, sparsity, Table};
use thor_repro::datagen::{corpus_stats, generate, DatasetSpec, Split};
use thor_repro::embed::{SgnsConfig, SgnsTrainer, VectorStore};
use thor_repro::eval::{evaluate, schema_scores, Annotation};
use thor_repro::fault::{
    atomic_write, decode_document, fail_point, install_from_env, read_bytes, read_to_string,
    DocumentPolicy, MapMode, QuarantineEntry, QuarantineReport, SectionChain, SectionFile,
    ThorError, ThorResult,
};
use thor_repro::serve::signal as serve_signal;
use thor_repro::serve::{ReloadConfig, ServeOptions, Server};
use thor_repro::text::{normalize_phrase, split_sentences};

/// Parsed command line: positional args plus `--key value` / `--key=value`
/// options. Keys listed in `flags` are boolean switches: they never
/// consume the following argument (`--lenient doc.txt` leaves `doc.txt`
/// positional) and store an empty string.
#[derive(Debug, Default, PartialEq)]
struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

fn parse_args(argv: &[String], flags: &[&str]) -> Args {
    let mut args = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(key) = a.strip_prefix("--") {
            if let Some((key, value)) = key.split_once('=') {
                args.options.insert(key.to_string(), value.to_string());
            } else if flags.contains(&key) {
                args.options.insert(key.to_string(), String::new());
            } else {
                let value = argv
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .unwrap_or_default();
                if !value.is_empty() {
                    i += 1;
                }
                args.options.insert(key.to_string(), value);
            }
        } else {
            args.positional.push(a.clone());
        }
        i += 1;
    }
    args
}

/// The options a command understands: value-taking keys plus boolean
/// flags. Anything else on the command line is rejected with a
/// "did you mean" hint instead of being silently ignored.
struct CommandSpec {
    options: &'static [&'static str],
    flags: &'static [&'static str],
}

const INTEGRATE: CommandSpec = CommandSpec {
    options: &["out"],
    flags: &[],
};
const SPARSITY: CommandSpec = CommandSpec {
    options: &[],
    flags: &[],
};
const BUILD: CommandSpec = CommandSpec {
    options: &[
        "table",
        "vectors",
        "tau",
        "context-gate",
        "threads",
        "engine",
    ],
    flags: &[],
};
const ENRICH: CommandSpec = CommandSpec {
    options: &[
        "table",
        "tau",
        "vectors",
        "engine",
        "engine-mmap",
        "context-gate",
        "threads",
        "refine",
        "prune",
        "prune-margin",
        "out",
        "entities",
        "quarantine",
        "checkpoint",
        "chunk",
    ],
    flags: &[
        "metrics",
        "cache-stats",
        "strict",
        "lenient",
        "resume",
        "stream",
    ],
};
const SERVE: CommandSpec = CommandSpec {
    options: &[
        "engine",
        "engine-mmap",
        "addr",
        "addr-file",
        "threads",
        "queue",
        "read-timeout-ms",
        "refine",
        "prune",
        "prune-margin",
        "watch-engine",
        "deadline-ms",
    ],
    flags: &["metrics"],
};
const DELTA: CommandSpec = CommandSpec {
    options: &[
        "engine",
        "engine-mmap",
        "add-seeds",
        "add-concept",
        "out",
        "note",
    ],
    flags: &[],
};
const COMPACT: CommandSpec = CommandSpec {
    options: &["engine", "out"],
    flags: &[],
};
const INSPECT: CommandSpec = CommandSpec {
    options: &["engine"],
    flags: &[],
};
const EVALUATE: CommandSpec = CommandSpec {
    options: &["gold", "pred"],
    flags: &[],
};
const GENERATE: CommandSpec = CommandSpec {
    options: &["dataset", "scale", "seed", "out"],
    flags: &[],
};

/// Edit distance for the unknown-option hint.
fn levenshtein(a: &str, b: &str) -> usize {
    let b_chars: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b_chars.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, cb) in b_chars.iter().enumerate() {
            let cost = if ca == *cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(row[j] + 1).min(prev + 1);
        }
    }
    row[b_chars.len()]
}

/// Reject options the command does not understand, suggesting the
/// closest known one when the typo is near enough.
fn check_options(command: &str, args: &Args, spec: &CommandSpec) -> ThorResult<()> {
    for key in args.options.keys() {
        let known = |k: &&str| *k == key.as_str();
        if spec.options.iter().any(known) || spec.flags.iter().any(known) {
            continue;
        }
        let nearest = spec
            .options
            .iter()
            .chain(spec.flags)
            .map(|cand| (levenshtein(key, cand), *cand))
            .min();
        let hint = match nearest {
            Some((distance, cand)) if distance <= 2 || distance * 2 <= key.len() => {
                format!(" (did you mean `--{cand}`?)")
            }
            _ => String::new(),
        };
        return Err(ThorError::config(format!(
            "unknown option `--{key}` for `thor {command}`{hint}"
        )));
    }
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  thor integrate <src.csv>... [--out R.csv]\n  thor sparsity <table.csv>\n  \
         thor build --table R.csv --vectors v.txt --engine e.thor [--tau 0.7] \
         [--context-gate G] [--threads N]\n  \
         thor enrich --table R.csv [--tau 0.7] [--vectors v.txt] [--context-gate G] \
         [--threads N] [--refine kernel|reference] [--metrics[=json]] [--cache-stats] \
         [--strict | --lenient] [--quarantine q.tsv] [--checkpoint DIR [--resume]] \
         [--stream [--chunk N]] [--out enriched.csv] [--entities e.tsv] \
         <doc.txt | corpus-dir>...\n  \
         thor enrich --engine e.thor [--engine-mmap on|off] [--threads N] \
         [--refine kernel|reference] [--prune exact|approx|off [--prune-margin M]] \
         ... <doc.txt | corpus-dir>...\n  \
         thor serve --engine e.thor [--engine-mmap on|off] [--addr HOST:PORT] \
         [--addr-file PATH] [--threads N] [--queue N] [--read-timeout-ms MS] \
         [--refine kernel|reference] [--prune exact|approx|off] [--metrics[=json]]\n  \
         thor delta --engine base.eng [--add-concept NAME] [--add-seeds rows.csv] \
         --out d1.eng [--note TEXT] [--engine-mmap on|off]\n  \
         thor compact --engine dN.eng --out folded.eng\n  \
         thor inspect --engine e.thor\n  \
         thor evaluate --gold gold.tsv --pred pred.tsv\n  \
         thor generate --dataset disease|resume [--scale S] [--seed N] --out DIR"
    );
    ExitCode::FAILURE
}

fn read_table(path: &str) -> ThorResult<Table> {
    fail_point("read_table").map_err(|e| e.context(format!("reading table {path}")))?;
    let text = read_to_string(Path::new(path))?;
    from_csv(&text).map_err(|e| ThorError::parse(format!("{path}: {e}")))
}

/// Lenient table read: malformed body rows are returned for quarantine
/// accounting instead of failing the parse (stream-level problems — no
/// header, unterminated quote — stay fatal).
fn read_table_lenient(path: &str) -> ThorResult<(Table, Vec<SkippedRow>)> {
    fail_point("read_table").map_err(|e| e.context(format!("reading table {path}")))?;
    let text = read_to_string(Path::new(path))?;
    let lenient = from_csv_lenient(&text).map_err(|e| ThorError::parse(format!("{path}: {e}")))?;
    Ok((lenient.table, lenient.skipped))
}

fn read_annotations(path: &str) -> ThorResult<Vec<Annotation>> {
    let text = read_to_string(Path::new(path))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(doc), Some(concept), Some(phrase)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(ThorError::parse(format!(
                "{path}:{}: expected doc<TAB>concept<TAB>phrase",
                i + 1
            )));
        };
        out.push(Annotation::new(doc, concept, phrase));
    }
    Ok(out)
}

fn cmd_integrate(args: &Args) -> ThorResult<()> {
    if args.positional.is_empty() {
        return Err(ThorError::config("integrate needs at least one source CSV"));
    }
    let sources: ThorResult<Vec<Table>> = args.positional.iter().map(|p| read_table(p)).collect();
    let sources = sources?;
    let refs: Vec<&Table> = sources.iter().collect();
    let integrated = full_disjunction(&refs);
    let report = sparsity(&integrated);
    eprintln!(
        "integrated {} sources -> {} rows, {} instances, sparsity {:.1}%",
        sources.len(),
        integrated.len(),
        integrated.instance_count(),
        report.ratio * 100.0
    );
    let csv = to_csv(&integrated);
    match args.options.get("out") {
        Some(path) => atomic_write(Path::new(path), csv.as_bytes())?,
        None => print!("{csv}"),
    }
    Ok(())
}

fn cmd_sparsity(args: &Args) -> ThorResult<()> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| ThorError::config("sparsity needs a table CSV"))?;
    let table = read_table(path)?;
    let report = sparsity(&table);
    println!(
        "rows: {}  instances: {}  slots: {}  missing: {} ({:.1}%)",
        table.len(),
        table.instance_count(),
        report.total_slots,
        report.missing_slots,
        report.ratio * 100.0
    );
    for (concept, missing, total) in &report.per_concept {
        println!("  {concept:<24} {missing:>5} / {total} missing");
    }
    Ok(())
}

/// How `--metrics` asked for the per-stage breakdown, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsMode {
    Table,
    Json,
}

/// Parse `--metrics` / `--metrics=json` (`table` is the explicit form
/// of the default). Metrics go to stderr, leaving stdout to the
/// enriched table; the JSON document is a single line, so it stays
/// trivially extractable from the stream.
fn metrics_mode(args: &Args) -> ThorResult<Option<MetricsMode>> {
    match args.options.get("metrics").map(String::as_str) {
        None => Ok(None),
        Some("" | "table") => Ok(Some(MetricsMode::Table)),
        Some("json") => Ok(Some(MetricsMode::Json)),
        Some(other) => Err(ThorError::config(format!(
            "bad --metrics value `{other}` (expected `table` or `json`)"
        ))),
    }
}

/// `--engine-mmap on|off`: `on` (the default) maps the artifact
/// read-only and borrows the hot arrays in place — O(1) startup,
/// N processes share one physical copy; `off` reads it into owned
/// memory with every section checksum verified up front.
fn engine_map_mode(args: &Args) -> ThorResult<MapMode> {
    match args.options.get("engine-mmap").map(String::as_str) {
        None | Some("on") => Ok(MapMode::Mapped),
        Some("off") => Ok(MapMode::Owned),
        Some(other) => Err(ThorError::config(format!(
            "bad --engine-mmap value `{other}` (expected `on` or `off`)"
        ))),
    }
}

/// `--prune exact|approx|off` (+ `--prune-margin M` for approx):
/// candidate-generation pruning. `exact` (the default) and `off`
/// produce bit-identical output — exact pruning only skips scans whose
/// cosine upper bound provably cannot win — so like `--threads` the
/// knob stays adjustable when serving from a frozen `--engine`
/// artifact. `approx` additionally pre-screens rows with the
/// i8-quantized copy and may trade a measured sliver of recall for
/// throughput; `--prune-margin` widens the quantization safety margin
/// (higher = closer to exact, default 0.05).
fn prune_mode(args: &Args) -> ThorResult<PruneMode> {
    let margin: Option<f64> = parse_option(args, "prune-margin")?;
    if let Some(m) = margin {
        if !m.is_finite() || m < 0.0 {
            return Err(ThorError::config(format!(
                "--prune-margin must be a finite value >= 0, got `{m}`"
            )));
        }
    }
    let mode = match args.options.get("prune").map(String::as_str) {
        None | Some("exact") => PruneMode::Exact,
        Some("approx") => PruneMode::Approx {
            margin: margin.unwrap_or(0.05),
        },
        Some("off") => PruneMode::Off,
        Some(other) => {
            return Err(ThorError::config(format!(
                "--prune must be `exact`, `approx` or `off`, got `{other}`"
            )))
        }
    };
    if margin.is_some() && !matches!(mode, PruneMode::Approx { .. }) {
        return Err(ThorError::config(
            "--prune-margin requires --prune approx (exact and off take no margin)",
        ));
    }
    Ok(mode)
}

/// Parse a value-taking option through `parse`, naming the flag and the
/// offending value on failure.
fn parse_option<T: std::str::FromStr>(args: &Args, key: &str) -> ThorResult<Option<T>> {
    match args.options.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| ThorError::config(format!("bad --{key} value `{raw}`"))),
    }
}

/// Expand positional corpus arguments into `(id, path)` pairs: plain
/// files keep command-line order (ids are file stems); a directory is
/// expanded through [`CorpusDir::discover`] — its `.txt` files, sorted
/// by id — so huge corpora can be named without shell globbing and
/// without the argv order mattering.
fn expand_corpus(positional: &[String]) -> ThorResult<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for arg in positional {
        let path = Path::new(arg);
        if path.is_dir() {
            let corpus = CorpusDir::discover(path)
                .map_err(|e| ThorError::io(format!("corpus directory {arg}"), e))?;
            out.extend(corpus);
        } else {
            let id = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| arg.clone());
            out.push((id, path.to_path_buf()));
        }
    }
    Ok(out)
}

/// Read one corpus document leniently: the `read_doc` failpoint, file
/// read, and admission control, with the path as context.
fn read_corpus_document(id: &str, path: &Path, policy: &DocumentPolicy) -> ThorResult<Document> {
    fail_point("read_doc")
        .and_then(|()| read_bytes(path))
        .map_err(|e| e.context(format!("reading document {}", path.display())))
        .and_then(|bytes| decode_document(id, &bytes, policy))
        .map(|text| Document::new(id, text))
}

/// `thor build`: run the Preparation phase once (fine-tune the matcher,
/// freeze the τ-expansion, compile the dictionary automaton) and
/// persist the resulting engine as a versioned, checksummed binary
/// artifact for `thor enrich --engine`.
fn cmd_build(args: &Args) -> ThorResult<()> {
    let table_path = args
        .options
        .get("table")
        .ok_or_else(|| ThorError::config("build needs --table R.csv"))?;
    let vectors_path = args
        .options
        .get("vectors")
        .ok_or_else(|| ThorError::config("build needs --vectors v.txt"))?;
    let engine_path = args
        .options
        .get("engine")
        .ok_or_else(|| ThorError::config("build needs --engine PATH"))?;

    let table = read_table(table_path)?;
    let store = VectorStore::load_path(Path::new(vectors_path))?;
    let tau: f64 = parse_option(args, "tau")?.unwrap_or(0.7);
    if !thor_repro::matcher::TAU_RANGE.contains(&tau) {
        return Err(ThorError::config(format!(
            "--tau {tau} out of range [0, 1]"
        )));
    }
    let mut config = ThorConfig::with_tau(tau);
    if let Some(g) = parse_option(args, "context-gate")? {
        config.context_gate = Some(g);
    }
    if let Some(threads) = parse_option(args, "threads")? {
        if threads == 0 {
            return Err(ThorError::config("--threads must be at least 1"));
        }
        config.threads = threads;
    }

    let thor = Thor::new(store, config);
    let engine = thor.prepare(&table);
    engine.save(Path::new(engine_path))?;
    eprintln!(
        "engine built in {:?}: {} concepts, tau {tau}, fingerprint {}\nwritten to {engine_path}",
        engine.prepare_time(),
        engine.prepared_matcher().concept_names().len(),
        engine.fingerprint()
    );
    Ok(())
}

fn cmd_enrich(args: &Args) -> ThorResult<()> {
    let strict = args.options.contains_key("strict");
    let lenient = args.options.contains_key("lenient");
    if strict && lenient {
        return Err(ThorError::config(
            "--strict and --lenient are mutually exclusive",
        ));
    }
    let mode = if lenient {
        RunMode::Lenient
    } else {
        RunMode::Strict
    };
    let checkpoint_dir = args.options.get("checkpoint").map(PathBuf::from);
    if matches!(&checkpoint_dir, Some(d) if d.as_os_str().is_empty()) {
        return Err(ThorError::config("--checkpoint needs a directory"));
    }
    let resume = args.options.contains_key("resume");
    if resume && checkpoint_dir.is_none() {
        return Err(ThorError::config("--resume requires --checkpoint DIR"));
    }

    // `--engine` serves from a persisted artifact: the table, vectors,
    // τ and model parameters are frozen inside it (only execution knobs
    // like --threads remain adjustable), so options that would
    // contradict the artifact are rejected outright.
    let engine_path = args.options.get("engine").cloned();
    if engine_path.is_some() {
        for key in ["table", "vectors", "tau", "context-gate"] {
            if args.options.contains_key(key) {
                return Err(ThorError::config(format!(
                    "--{key} conflicts with --engine (the artifact freezes it; \
                     rebuild with `thor build`)"
                )));
            }
        }
    }

    // `--refine` selects the refinement implementation — an execution
    // knob like --threads (both paths are bit-identical), so it stays
    // adjustable even when serving from a frozen --engine artifact.
    let reference_refine = match args.options.get("refine").map(String::as_str) {
        None | Some("kernel") => false,
        Some("reference") => true,
        Some(other) => {
            return Err(ThorError::config(format!(
                "--refine must be `kernel` or `reference`, got `{other}`"
            )))
        }
    };
    let prune = prune_mode(args)?;

    if args.positional.is_empty() {
        return Err(ThorError::config(
            "enrich needs at least one document file or corpus directory",
        ));
    }
    let stream = args.options.contains_key("stream");
    let chunk: usize = parse_option(args, "chunk")?.unwrap_or(64);
    if chunk == 0 {
        return Err(ThorError::config("--chunk must be at least 1"));
    }
    if args.options.contains_key("chunk") && !stream {
        return Err(ThorError::config("--chunk requires --stream"));
    }
    if args.options.contains_key("engine-mmap") && engine_path.is_none() {
        return Err(ThorError::config("--engine-mmap requires --engine"));
    }
    if stream && engine_path.is_none() && !args.options.contains_key("vectors") {
        return Err(ThorError::config(
            "--stream needs --vectors or --engine (the built-in SGNS \
             trainer would read the whole corpus into memory)",
        ));
    }
    let map_mode = engine_map_mode(args)?;

    let policy = DocumentPolicy::default();
    let corpus = expand_corpus(&args.positional)?;
    if corpus.is_empty() {
        return Err(ThorError::config(
            "enrich found no documents (empty corpus directory?)",
        ));
    }
    let stream_ids: Vec<String> = corpus.iter().map(|(id, _)| id.clone()).collect();
    // Batch mode materializes the whole corpus up front (read errors
    // land in the CLI quarantine); --stream defers every read into the
    // chunked run, where the core applies the same read_doc policy.
    let mut cli_quarantine = QuarantineReport::new();
    let mut docs = Vec::new();
    if !stream {
        for (id, path) in &corpus {
            match read_corpus_document(id, path, &policy) {
                Ok(doc) => docs.push(doc),
                Err(e) if mode == RunMode::Strict => return Err(e),
                Err(e) => cli_quarantine.push(QuarantineEntry::from_error(id, "read_doc", &e)),
            }
        }
    }

    let threads: Option<usize> = parse_option(args, "threads")?;
    if threads == Some(0) {
        return Err(ThorError::config("--threads must be at least 1"));
    }
    let metrics_mode = metrics_mode(args)?;
    // `--cache-stats`: one-line summary of the candidate engine (phrase
    // cache traffic + vector index size/build time). Needs the metrics
    // handle attached even when `--metrics` wasn't asked for.
    let cache_stats = args.options.contains_key("cache-stats");
    let metrics = PipelineMetrics::new();
    let attach_metrics = metrics_mode.is_some() || cache_stats;
    let opts = ResilientOptions {
        mode,
        checkpoint_dir,
        resume,
        policy,
        ..ResilientOptions::default()
    };

    let mut skipped_rows: Vec<SkippedRow> = Vec::new();
    let outcome = if let Some(engine_path) = &engine_path {
        let mut engine = PreparedEngine::load_with(Path::new(engine_path), map_mode)?;
        eprintln!(
            "engine {engine_path}: {} concepts, tau {}, loaded in {:?} ({})",
            engine.prepared_matcher().concept_names().len(),
            engine.tau(),
            engine.prepare_time(),
            match map_mode {
                MapMode::Mapped => "mapped",
                MapMode::Owned => "owned",
            }
        );
        if let Some(threads) = threads {
            engine = engine.with_threads(threads);
        }
        if reference_refine {
            engine = engine.with_reference_refine(true);
        }
        if prune != PruneMode::Exact {
            engine = engine.with_prune(prune);
        }
        if attach_metrics {
            engine = engine.with_metrics(metrics.clone());
        }
        if stream {
            let reader = corpus
                .iter()
                .map(|(id, path)| (id.clone(), read_corpus_document(id, path, &policy)));
            engine.enrich_resilient_stream(&stream_ids, reader, &opts, chunk)?
        } else {
            engine.enrich_resilient(&docs, &opts)?
        }
    } else {
        let table_path = args
            .options
            .get("table")
            .ok_or_else(|| ThorError::config("enrich needs --table (or --engine)"))?;
        let table = match mode {
            RunMode::Strict => read_table(table_path)?,
            RunMode::Lenient => {
                let (table, skipped) = read_table_lenient(table_path)?;
                for row in &skipped {
                    eprintln!("[quarantine] {table_path}:{}: {}", row.line, row.error);
                }
                skipped_rows = skipped;
                table
            }
        };

        let tau: f64 = parse_option(args, "tau")?.unwrap_or(0.7);
        if !thor_repro::matcher::TAU_RANGE.contains(&tau) {
            return Err(ThorError::config(format!(
                "--tau {tau} out of range [0, 1]"
            )));
        }

        let store = match args.options.get("vectors") {
            Some(path) => VectorStore::load_path(Path::new(path))?,
            // `--stream` without vectors was rejected up front.
            None => {
                eprintln!("no --vectors given; training SGNS on the input documents...");
                let mut corpus = Vec::new();
                for d in &docs {
                    for s in split_sentences(&d.text) {
                        let words: Vec<String> = normalize_phrase(&s.text)
                            .split_whitespace()
                            .map(str::to_string)
                            .collect();
                        if words.len() > 2 {
                            corpus.push(words);
                        }
                    }
                }
                SgnsTrainer::new(SgnsConfig::default()).train(&corpus)
            }
        };

        let mut config = ThorConfig::with_tau(tau);
        if let Some(g) = parse_option(args, "context-gate")? {
            config.context_gate = Some(g);
        }
        if let Some(threads) = threads {
            config.threads = threads;
        }
        config.reference_refine = reference_refine;
        config.prune = prune;
        let mut thor = Thor::new(store, config);
        if attach_metrics {
            thor = thor.with_metrics(metrics.clone());
        }
        if stream {
            let reader = corpus
                .iter()
                .map(|(id, path)| (id.clone(), read_corpus_document(id, path, &policy)));
            thor.prepare(&table)
                .enrich_resilient_stream(&stream_ids, reader, &opts, chunk)?
        } else {
            thor.enrich_resilient(&table, &docs, &opts)?
        }
    };
    let result = &outcome.result;

    // CLI-level quarantine counts land on the metrics handle only after
    // the core run (and its final checkpoint save): they are re-derived
    // deterministically by every invocation, so a resumed run absorbing
    // the checkpoint's metrics snapshot must not double-count them.
    metrics.quarantine_docs.add(cli_quarantine.len() as u64);
    metrics.quarantine_rows.add(skipped_rows.len() as u64);
    let mut quarantine = cli_quarantine;
    quarantine.extend(outcome.quarantine.clone());

    if outcome.resumed_docs > 0 {
        eprintln!(
            "resumed from checkpoint: {} document(s) already complete, {} processed now",
            outcome.resumed_docs, outcome.processed_docs
        );
    }
    eprintln!(
        "extracted {} entities, filled {} slots ({} duplicates) in {:?}",
        result.entities.len(),
        result.slot_stats.inserted,
        result.slot_stats.duplicates,
        result.total_time()
    );
    if !quarantine.is_empty() || !skipped_rows.is_empty() {
        eprintln!(
            "{} + {} malformed row(s)",
            quarantine.summary(),
            skipped_rows.len()
        );
    }
    match metrics_mode {
        Some(MetricsMode::Table) => eprint!("{}", metrics.render_table()),
        Some(MetricsMode::Json) => eprintln!("{}", metrics.render_json()),
        None => {}
    }
    if cache_stats {
        let hits = metrics.cache_hits.get();
        let misses = metrics.cache_misses.get();
        let total = hits + misses;
        let rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64 * 100.0
        };
        eprintln!(
            "[cache] hits {hits}  misses {misses}  hit rate {rate:.1}%  \
             index {} rows built in {:.2}ms",
            metrics.index_rows.get(),
            metrics.index_build.total().as_secs_f64() * 1e3
        );
    }

    if let Some(path) = args.options.get("quarantine") {
        atomic_write(Path::new(path), quarantine.to_tsv().as_bytes())?;
    }
    if let Some(path) = args.options.get("entities") {
        atomic_write(Path::new(path), entities_tsv(&result.entities).as_bytes())?;
    }
    let csv = to_csv(&result.table);
    match args.options.get("out") {
        Some(path) => atomic_write(Path::new(path), csv.as_bytes())?,
        None => print!("{csv}"),
    }
    Ok(())
}

/// `thor serve`: the long-running HTTP front end over a built engine.
/// `POST /enrich` and `POST /extract` answer with exactly the bytes the
/// batch CLI writes; `GET /healthz` and `GET /metrics` expose liveness
/// and the thor-obs document (including per-request latency
/// histograms). SIGTERM/ctrl-c drains: stop accepting, finish in-flight
/// requests, flush metrics to stderr.
fn cmd_serve(args: &Args) -> ThorResult<()> {
    let engine_path = args
        .options
        .get("engine")
        .ok_or_else(|| ThorError::config("serve needs --engine e.thor (see `thor build`)"))?;
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7427".to_string());
    let threads: Option<usize> = parse_option(args, "threads")?;
    if threads == Some(0) {
        return Err(ThorError::config("--threads must be at least 1"));
    }
    let queue: usize = parse_option(args, "queue")?.unwrap_or(32);
    if queue == 0 {
        return Err(ThorError::config("--queue must be at least 1"));
    }
    let read_timeout_ms: u64 = parse_option(args, "read-timeout-ms")?.unwrap_or(10_000);
    if read_timeout_ms == 0 {
        return Err(ThorError::config("--read-timeout-ms must be at least 1"));
    }
    let reference_refine = match args.options.get("refine").map(String::as_str) {
        None | Some("kernel") => false,
        Some("reference") => true,
        Some(other) => {
            return Err(ThorError::config(format!(
                "--refine must be `kernel` or `reference`, got `{other}`"
            )))
        }
    };
    let prune = prune_mode(args)?;
    let metrics_mode = metrics_mode(args)?;
    // Bare `--watch-engine` (no value) means "poll at the default
    // cadence"; a value is the poll interval in milliseconds. Without
    // the flag, reloads still happen on SIGHUP — polling is just off.
    let watch_engine = match args.options.get("watch-engine").map(String::as_str) {
        None => None,
        Some("") => Some(std::time::Duration::from_millis(500)),
        Some(ms) => {
            let ms: u64 = ms.parse().map_err(|_| {
                ThorError::config(format!("--watch-engine wants milliseconds, got `{ms}`"))
            })?;
            if ms == 0 {
                return Err(ThorError::config("--watch-engine must be at least 1ms"));
            }
            Some(std::time::Duration::from_millis(ms))
        }
    };
    let deadline_ms: Option<u64> = parse_option(args, "deadline-ms")?;
    if deadline_ms == Some(0) {
        return Err(ThorError::config("--deadline-ms must be at least 1"));
    }

    let map_mode = engine_map_mode(args)?;
    let mut engine = PreparedEngine::load_with(Path::new(engine_path), map_mode)?;
    eprintln!(
        "engine {engine_path}: {} concepts, tau {}, loaded in {:?} ({})",
        engine.prepared_matcher().concept_names().len(),
        engine.tau(),
        engine.prepare_time(),
        match map_mode {
            MapMode::Mapped => "mapped",
            MapMode::Owned => "owned",
        }
    );
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }
    if reference_refine {
        engine = engine.with_reference_refine(true);
    }
    if prune != PruneMode::Exact {
        engine = engine.with_prune(prune);
    }

    let opts = ServeOptions {
        queue,
        read_timeout: std::time::Duration::from_millis(read_timeout_ms),
        watch_signals: true,
        deadline: deadline_ms.map(std::time::Duration::from_millis),
        ..ServeOptions::default()
    };
    let reload = ReloadConfig {
        path: PathBuf::from(engine_path),
        mode: map_mode,
        threads,
        reference_refine,
        prune,
        poll: watch_engine,
    };
    serve_signal::install_handlers();
    serve_signal::install_reload_handler();
    let server = Server::bind_with(engine, &addr, opts, Some(reload))?;
    let bound = server.local_addr();
    if let Some(path) = args.options.get("addr-file") {
        atomic_write(Path::new(path), format!("{bound}\n").as_bytes())?;
    }
    let metrics = server.metrics().clone();
    eprintln!(
        "serving on http://{bound} (queue {queue}, SIGHUP reloads{}, SIGTERM/ctrl-c drains)",
        match watch_engine {
            Some(every) => format!(", watching engine every {every:?}"),
            None => String::new(),
        }
    );
    server.run()?;

    // Drained: flush the final metrics snapshot so a supervised process
    // leaves its request/latency/quarantine story in the log.
    let snapshot = metrics.snapshot();
    eprintln!(
        "drained: {} request(s) served, {} rejected (429), {} protocol error(s), {} quarantined doc(s)",
        snapshot.count("serve.requests"),
        snapshot.count("serve.rejected"),
        snapshot.count("serve.http_errors"),
        snapshot.count("quarantine.docs"),
    );
    match metrics_mode {
        Some(MetricsMode::Json) => eprintln!("{}", metrics.render_json()),
        _ => eprint!("{}", metrics.render_table()),
    }
    Ok(())
}

/// `thor delta`: evolve a built engine by an additive change — a new
/// concept column (`--add-concept`, applied first) and/or new seed rows
/// (`--add-seeds`) — and persist the result as a **delta artifact**
/// stacking on the base: only the sections whose bytes changed, plus a
/// checksummed parent link. Loading the delta resolves the whole chain
/// and extracts bit-identically to a fresh `thor build` of the final
/// table.
fn cmd_delta(args: &Args) -> ThorResult<()> {
    let engine_path = args
        .options
        .get("engine")
        .ok_or_else(|| ThorError::config("delta needs --engine base.eng (see `thor build`)"))?;
    let out = args
        .options
        .get("out")
        .ok_or_else(|| ThorError::config("delta needs --out d1.eng"))?;
    let concept = args.options.get("add-concept");
    let seeds = args.options.get("add-seeds");
    if concept.is_none() && seeds.is_none() {
        return Err(ThorError::config(
            "delta needs --add-seeds rows.csv and/or --add-concept NAME",
        ));
    }
    if matches!(concept, Some(name) if name.is_empty()) {
        return Err(ThorError::config("--add-concept needs a concept name"));
    }
    if matches!(seeds, Some(path) if path.is_empty()) {
        return Err(ThorError::config("--add-seeds needs a CSV path"));
    }

    let map_mode = engine_map_mode(args)?;
    let mut engine = PreparedEngine::load_with(Path::new(engine_path), map_mode)?;
    let base_fingerprint = engine.fingerprint().to_string();
    let mut applied = Vec::new();
    // The column first, then the rows: `--add-concept Treatment
    // --add-seeds rows.csv` can fill the fresh column in one invocation.
    if let Some(name) = concept {
        engine = engine.apply_delta(&EngineDelta::Concept(ConceptDelta::new(name.as_str())))?;
        applied.push(format!("--add-concept {name}"));
    }
    if let Some(path) = seeds {
        let text = read_to_string(Path::new(path))?;
        let delta = SeedDelta::from_csv(&text).map_err(|e| e.context(path.clone()))?;
        engine = engine.apply_delta(&EngineDelta::Seeds(delta))?;
        applied.push(format!("--add-seeds {path}"));
    }
    let note = match args.options.get("note") {
        Some(n) => n.clone(),
        None => format!("thor delta {}", applied.join(" ")),
    };
    engine.save_delta(Path::new(engine_path), Path::new(out), &note)?;
    eprintln!(
        "delta applied in {:?}: fingerprint {base_fingerprint} -> {}\nwritten to {out} (on {engine_path})",
        engine.prepare_time(),
        engine.fingerprint()
    );
    Ok(())
}

/// `thor compact`: fold the delta chain under `--engine` into the
/// single artifact `--out` — byte-identical to what a fresh
/// `thor build` of the resolved state writes. Every checksum and parent
/// link is verified first, and the folded artifact is loaded back and
/// fingerprint-checked before the command succeeds.
fn cmd_compact(args: &Args) -> ThorResult<()> {
    let path = args
        .options
        .get("engine")
        .ok_or_else(|| ThorError::config("compact needs --engine dN.eng (the chain's top)"))?;
    let out = args
        .options
        .get("out")
        .ok_or_else(|| ThorError::config("compact needs --out folded.eng"))?;
    let depth = SectionChain::open(Path::new(path), MapMode::Mapped)?.depth();
    let engine = compact_chain(Path::new(path), Path::new(out), None)?;
    eprintln!(
        "folded {} chain file(s) (depth {depth}) into {out}: fingerprint {}",
        depth + 1,
        engine.fingerprint()
    );
    Ok(())
}

/// One artifact's section directory (name, offset, length, alignment,
/// format version, checksum) as an aligned table.
fn print_section_table(file: &SectionFile) {
    println!(
        "{:<16} {:>10} {:>10} {:>6} {:>4}  {:<18}",
        "section", "offset", "length", "align", "ver", "checksum"
    );
    for e in file.entries() {
        println!(
            "{:<16} {:>10} {:>10} {:>6} {:>4}  {:#018x}",
            e.name, e.offset, e.len, e.align, e.version, e.checksum
        );
    }
}

/// One line summarizing the candidate-pruning sections the resolved
/// chain serves — cluster shape and quantization — or their absence
/// (artifacts written before the sections existed still load; the
/// structures are rebuilt deterministically at load time).
fn print_prune_summary(chain: &SectionChain) -> ThorResult<()> {
    if chain.entry("prune.meta").is_none() {
        println!(
            "candidate pruning: sections absent (pre-pruning artifact; \
             structures are rebuilt at load)"
        );
        return Ok(());
    }
    let s = thor_repro::matcher::PruneIndex::summarize_meta(chain.bytes("prune.meta")?)
        .map_err(ThorError::validation)?;
    let quantized = chain.entry("quant.rows").is_some() && chain.entry("quant.scales").is_some();
    println!(
        "candidate pruning: {} cluster(s) over {} concept(s), {} row(s) \
         (dim {}, max {} rows/cluster), i8 quantization {}",
        s.clusters,
        s.concepts,
        s.rows,
        s.dim,
        s.max_cluster_rows,
        if quantized { "on" } else { "off" }
    );
    Ok(())
}

/// `thor inspect`: print a v2 engine artifact's section directory and
/// verify **every** checksum — including the big vocabulary sections a
/// mapped load defers — exiting non-zero on the first mismatch. This is
/// the offline integrity check backing `--engine-mmap on`'s lazy
/// verification policy. A delta artifact is inspected as its whole
/// chain: base fingerprint, delta depth, and each file's patched
/// sections (with the provenance note recorded at `thor delta` time).
fn cmd_inspect(args: &Args) -> ThorResult<()> {
    let path = args
        .options
        .get("engine")
        .ok_or_else(|| ThorError::config("inspect needs --engine e.thor"))?;
    let chain = SectionChain::open(Path::new(path), MapMode::Mapped)?;
    if chain.depth() == 0 {
        let file = chain.base();
        println!(
            "{path}: THORENG v2, {} bytes, {} sections{}",
            file.total_len(),
            file.entries().len(),
            if file.is_mapped() { " (mapped)" } else { "" }
        );
        print_section_table(file);
        print_prune_summary(&chain)?;
        chain.verify_all()?;
        println!("all {} section checksums verified", file.entries().len());
        return Ok(());
    }
    println!(
        "{path}: THORENG v2 delta chain, {} file(s), depth {}, base fingerprint {}",
        chain.files().len(),
        chain.depth(),
        chain.metas()[0].parent_fingerprint
    );
    for (i, file) in chain.files().iter().enumerate() {
        let fpath = &chain.paths()[i];
        if i == 0 {
            println!(
                "\n[base] {}: {} bytes, {} sections{}",
                fpath.display(),
                file.total_len(),
                file.entries().len(),
                if file.is_mapped() { " (mapped)" } else { "" }
            );
        } else {
            let meta = &chain.metas()[i - 1];
            println!(
                "\n[delta {}] {}: {} bytes, {} patched section(s) on fingerprint {}{}",
                meta.depth,
                fpath.display(),
                file.total_len(),
                file.entries().len() - 1, // minus delta.meta itself
                meta.parent_fingerprint,
                if meta.note.is_empty() {
                    String::new()
                } else {
                    format!("\n        note: {}", meta.note)
                }
            );
        }
        print_section_table(file);
    }
    println!();
    print_prune_summary(&chain)?;
    chain.verify_all()?;
    println!(
        "\nall section checksums verified across {} chain file(s)",
        chain.files().len()
    );
    Ok(())
}

fn cmd_evaluate(args: &Args) -> ThorResult<()> {
    let gold = read_annotations(
        args.options
            .get("gold")
            .ok_or_else(|| ThorError::config("evaluate needs --gold"))?,
    )?;
    let pred = read_annotations(
        args.options
            .get("pred")
            .ok_or_else(|| ThorError::config("evaluate needs --pred"))?,
    )?;
    let r = evaluate(&pred, &gold);
    println!(
        "gold: {}  predicted: {}\ncorrect: {}  partial: {}  incorrect: {}  spurious: {}  missing: {}",
        r.gold_total, r.predicted_total, r.correct, r.partial, r.incorrect, r.spurious, r.missing
    );
    println!(
        "P: {:.3}  R: {:.3}  F1: {:.3}  sensitivity: {:.3}",
        r.precision, r.recall, r.f1, r.sensitivity
    );
    let s = schema_scores(&pred, &gold);
    println!(
        "schemas  strict {:.3}  exact {:.3}  partial {:.3}  ent_type {:.3}  (F1)",
        s.strict.f1, s.exact.f1, s.partial.f1, s.ent_type.f1
    );
    for c in &r.per_concept {
        println!(
            "  {:<24} gold {:>4}  pred {:>4}  tp {:>4}  F1 {:.3}",
            c.concept, c.gold, c.predicted, c.tp, c.f1
        );
    }
    Ok(())
}

fn write_split(
    dir: &Path,
    name: &str,
    docs: &[thor_repro::datagen::AnnotatedDoc],
) -> ThorResult<()> {
    let doc_dir = dir.join("docs").join(name);
    fs::create_dir_all(&doc_dir).map_err(|e| ThorError::io(doc_dir.display(), e))?;
    let mut gold = String::new();
    for d in docs {
        atomic_write(
            &doc_dir.join(format!("{}.txt", d.doc.id)),
            d.doc.text.as_bytes(),
        )?;
        for g in &d.gold {
            gold.push_str(&format!("{}\t{}\t{}\n", d.doc.id, g.concept, g.phrase));
        }
    }
    let gold_dir = dir.join("gold");
    fs::create_dir_all(&gold_dir).map_err(|e| ThorError::io(gold_dir.display(), e))?;
    atomic_write(&gold_dir.join(format!("{name}.tsv")), gold.as_bytes())?;
    Ok(())
}

fn cmd_generate(args: &Args) -> ThorResult<()> {
    let dataset_name = args
        .options
        .get("dataset")
        .map(String::as_str)
        .unwrap_or("disease");
    let scale: f64 = parse_option(args, "scale")?.unwrap_or(0.25);
    let seed: u64 = parse_option(args, "seed")?.unwrap_or(42);
    let out = PathBuf::from(
        args.options
            .get("out")
            .ok_or_else(|| ThorError::config("generate needs --out DIR"))?,
    );

    let spec = match dataset_name {
        "disease" => DatasetSpec::disease_az(seed, scale),
        "resume" => DatasetSpec::resume(seed, scale),
        other => {
            return Err(ThorError::config(format!(
                "unknown dataset `{other}` (disease|resume)"
            )))
        }
    };
    let dataset = generate(&spec);

    fs::create_dir_all(&out).map_err(|e| ThorError::io(out.display(), e))?;
    atomic_write(&out.join("table.csv"), to_csv(&dataset.table).as_bytes())?;
    atomic_write(
        &out.join("enrichment_table.csv"),
        to_csv(&dataset.enrichment_table()).as_bytes(),
    )?;
    atomic_write(
        &out.join("gold_test_table.csv"),
        to_csv(&dataset.gold_test_table()).as_bytes(),
    )?;
    atomic_write(&out.join("vectors.txt"), dataset.store.to_text().as_bytes())?;
    let src_dir = out.join("sources");
    fs::create_dir_all(&src_dir).map_err(|e| ThorError::io(src_dir.display(), e))?;
    for (i, s) in dataset.sources.iter().enumerate() {
        atomic_write(
            &src_dir.join(format!("source_{i:02}.csv")),
            to_csv(s).as_bytes(),
        )?;
    }
    write_split(&out, "train", &dataset.train)?;
    write_split(&out, "validation", &dataset.validation)?;
    write_split(&out, "test", &dataset.test)?;

    for (name, docs) in [
        ("train", &dataset.train),
        ("validation", &dataset.validation),
        ("test", &dataset.test),
    ] {
        let s = corpus_stats(docs);
        eprintln!(
            "{name:<11} subjects {:>4}  docs {:>5}  entities {:>6}  words {:>7}",
            s.subjects, s.documents, s.entities, s.words
        );
    }
    let _ = Split::Test; // re-exported for users of the artifacts
    eprintln!("artifacts written to {}", out.display());
    Ok(())
}

fn main() -> ExitCode {
    if let Err(e) = install_from_env() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(spec) = (match command.as_str() {
        "integrate" => Some(&INTEGRATE),
        "sparsity" => Some(&SPARSITY),
        "build" => Some(&BUILD),
        "enrich" => Some(&ENRICH),
        "serve" => Some(&SERVE),
        "delta" => Some(&DELTA),
        "compact" => Some(&COMPACT),
        "inspect" => Some(&INSPECT),
        "evaluate" => Some(&EVALUATE),
        "generate" => Some(&GENERATE),
        _ => None,
    }) else {
        return usage();
    };
    let args = parse_args(rest, spec.flags);
    let result = check_options(command, &args, spec).and_then(|()| match command.as_str() {
        "integrate" => cmd_integrate(&args),
        "sparsity" => cmd_sparsity(&args),
        "build" => cmd_build(&args),
        "enrich" => cmd_enrich(&args),
        "serve" => cmd_serve(&args),
        "delta" => cmd_delta(&args),
        "compact" => cmd_compact(&args),
        "inspect" => cmd_inspect(&args),
        "evaluate" => cmd_evaluate(&args),
        "generate" => cmd_generate(&args),
        _ => unreachable!("spec lookup covers every command"),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_positional_and_options() {
        let a = parse_args(&argv(&["a.csv", "--out", "r.csv", "b.csv", "--flag"]), &[]);
        assert_eq!(a.positional, ["a.csv", "b.csv"]);
        assert_eq!(a.options.get("out").unwrap(), "r.csv");
        assert_eq!(a.options.get("flag").unwrap(), "");
    }

    #[test]
    fn option_followed_by_option_takes_no_value() {
        let a = parse_args(&argv(&["--gate", "--out", "x"]), &[]);
        assert_eq!(a.options.get("gate").unwrap(), "");
        assert_eq!(a.options.get("out").unwrap(), "x");
    }

    #[test]
    fn empty_args() {
        let a = parse_args(&[], &[]);
        assert!(a.positional.is_empty());
        assert!(a.options.is_empty());
    }

    #[test]
    fn equals_form_splits_key_and_value() {
        let a = parse_args(&argv(&["--metrics=json", "--tau=0.6", "doc.txt"]), &[]);
        assert_eq!(a.options.get("metrics").unwrap(), "json");
        assert_eq!(a.options.get("tau").unwrap(), "0.6");
        assert_eq!(a.positional, ["doc.txt"]);
    }

    #[test]
    fn equals_form_does_not_consume_next_arg() {
        let a = parse_args(&argv(&["--metrics=json", "next"]), &[]);
        assert_eq!(a.options.get("metrics").unwrap(), "json");
        assert_eq!(a.positional, ["next"]);
    }

    #[test]
    fn boolean_flags_never_consume_documents() {
        let a = parse_args(
            &argv(&["--lenient", "doc.txt", "--cache-stats", "more.txt"]),
            ENRICH.flags,
        );
        assert_eq!(a.options.get("lenient").unwrap(), "");
        assert_eq!(a.options.get("cache-stats").unwrap(), "");
        assert_eq!(a.positional, ["doc.txt", "more.txt"]);
    }

    #[test]
    fn metrics_mode_parses_all_forms() {
        let mode = |items: &[&str]| metrics_mode(&parse_args(&argv(items), ENRICH.flags));
        assert_eq!(mode(&[]).unwrap(), None);
        assert_eq!(mode(&["--metrics"]).unwrap(), Some(MetricsMode::Table));
        assert_eq!(
            mode(&["--metrics=table"]).unwrap(),
            Some(MetricsMode::Table)
        );
        assert_eq!(mode(&["--metrics=json"]).unwrap(), Some(MetricsMode::Json));
        assert!(mode(&["--metrics=xml"]).is_err());
    }

    #[test]
    fn levenshtein_distances() {
        assert_eq!(levenshtein("out", "out"), 0);
        assert_eq!(levenshtein("uot", "out"), 2);
        assert_eq!(levenshtein("tableau", "table"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
    }

    #[test]
    fn unknown_option_rejected_with_hint() {
        let a = parse_args(&argv(&["--tabel", "x.csv"]), ENRICH.flags);
        let err = check_options("enrich", &a, &ENRICH).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown option `--tabel`"), "{msg}");
        assert!(msg.contains("did you mean `--table`?"), "{msg}");

        let a = parse_args(&argv(&["--lenint"]), ENRICH.flags);
        let msg = check_options("enrich", &a, &ENRICH)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("did you mean `--lenient`?"), "{msg}");
    }

    #[test]
    fn unknown_option_far_from_everything_has_no_hint() {
        let a = parse_args(&argv(&["--zzzzqqqq"]), ENRICH.flags);
        let msg = check_options("enrich", &a, &ENRICH)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("unknown option `--zzzzqqqq`"), "{msg}");
        assert!(!msg.contains("did you mean"), "{msg}");
    }

    #[test]
    fn known_options_pass_every_command() {
        for (cmd, spec, line) in [
            ("integrate", &INTEGRATE, vec!["--out", "r.csv"]),
            ("enrich", &ENRICH, vec!["--table", "r.csv", "--lenient"]),
            ("evaluate", &EVALUATE, vec!["--gold", "g", "--pred", "p"]),
            ("generate", &GENERATE, vec!["--dataset", "disease"]),
        ] {
            let a = parse_args(&argv(&line), spec.flags);
            assert!(check_options(cmd, &a, spec).is_ok(), "{cmd}");
        }
    }

    #[test]
    fn strict_and_lenient_conflict() {
        let a = parse_args(&argv(&["--strict", "--lenient"]), ENRICH.flags);
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(msg.contains("mutually exclusive"), "{msg}");
    }

    #[test]
    fn resume_requires_checkpoint() {
        let a = parse_args(&argv(&["--resume", "--table", "t.csv"]), ENRICH.flags);
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(msg.contains("--resume requires --checkpoint"), "{msg}");
    }

    #[test]
    fn engine_conflicts_with_frozen_options() {
        for frozen in ["table", "vectors", "tau", "context-gate"] {
            let a = parse_args(
                &argv(&["--engine", "e.thor", &format!("--{frozen}"), "x", "d.txt"]),
                ENRICH.flags,
            );
            let msg = cmd_enrich(&a).unwrap_err().to_string();
            assert!(
                msg.contains(&format!("--{frozen} conflicts with --engine")),
                "{msg}"
            );
        }
        // --threads stays adjustable: the error must come later (here,
        // from the nonexistent engine file, not a conflict).
        let a = parse_args(
            &argv(&["--engine", "/nonexistent/e.thor", "--threads", "2", "d.txt"]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(!msg.contains("conflicts"), "{msg}");
    }

    #[test]
    fn refine_option_validated() {
        let a = parse_args(
            &argv(&["--table", "t.csv", "--refine", "fast", "d.txt"]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(msg.contains("`kernel` or `reference`"), "{msg}");
        // Like --threads, --refine stays adjustable alongside --engine:
        // the error must come from the missing file, not a conflict.
        let a = parse_args(
            &argv(&[
                "--engine",
                "/nonexistent/e.thor",
                "--refine",
                "reference",
                "d.txt",
            ]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(!msg.contains("conflicts"), "{msg}");
    }

    #[test]
    fn prune_option_validated() {
        let a = parse_args(
            &argv(&["--table", "t.csv", "--prune", "fuzzy", "d.txt"]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(msg.contains("`exact`, `approx` or `off`"), "{msg}");

        // --prune-margin only makes sense for the approximate mode.
        let a = parse_args(
            &argv(&["--table", "t.csv", "--prune-margin", "0.1", "d.txt"]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(
            msg.contains("--prune-margin requires --prune approx"),
            "{msg}"
        );
        let a = parse_args(
            &argv(&[
                "--table",
                "t.csv",
                "--prune",
                "off",
                "--prune-margin",
                "0.1",
                "d.txt",
            ]),
            ENRICH.flags,
        );
        assert!(cmd_enrich(&a).is_err());

        // Negative or non-finite margins are rejected by name.
        let a = parse_args(
            &argv(&[
                "--table",
                "t.csv",
                "--prune",
                "approx",
                "--prune-margin",
                "-0.5",
                "d.txt",
            ]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(msg.contains("--prune-margin must be"), "{msg}");

        // Like --threads, --prune stays adjustable alongside --engine:
        // the error must come from the missing file, not a conflict.
        let a = parse_args(
            &argv(&[
                "--engine",
                "/nonexistent/e.thor",
                "--prune",
                "approx",
                "d.txt",
            ]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(!msg.contains("conflicts"), "{msg}");

        // Parsed modes map to the engine-level enum.
        let parsed = |items: &[&str]| prune_mode(&parse_args(&argv(items), ENRICH.flags));
        assert_eq!(parsed(&[]).unwrap(), PruneMode::Exact);
        assert_eq!(parsed(&["--prune", "exact"]).unwrap(), PruneMode::Exact);
        assert_eq!(parsed(&["--prune", "off"]).unwrap(), PruneMode::Off);
        assert_eq!(
            parsed(&["--prune", "approx"]).unwrap(),
            PruneMode::Approx { margin: 0.05 }
        );
        assert_eq!(
            parsed(&["--prune", "approx", "--prune-margin", "0.2"]).unwrap(),
            PruneMode::Approx { margin: 0.2 }
        );
    }

    #[test]
    fn build_requires_table_vectors_and_engine() {
        let msg = cmd_build(&parse_args(&[], BUILD.flags))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("--table"), "{msg}");
        let a = parse_args(&argv(&["--table", "t.csv"]), BUILD.flags);
        let msg = cmd_build(&a).unwrap_err().to_string();
        assert!(msg.contains("--vectors"), "{msg}");
        let a = parse_args(
            &argv(&["--table", "t.csv", "--vectors", "v.txt"]),
            BUILD.flags,
        );
        let msg = cmd_build(&a).unwrap_err().to_string();
        assert!(msg.contains("--engine"), "{msg}");
    }

    #[test]
    fn build_rejects_unknown_options() {
        let a = parse_args(&argv(&["--engin", "e.thor"]), BUILD.flags);
        let msg = check_options("build", &a, &BUILD).unwrap_err().to_string();
        assert!(msg.contains("did you mean `--engine`?"), "{msg}");
    }

    #[test]
    fn engine_mmap_parses_on_off_and_rejects_junk() {
        let mode = |items: &[&str]| engine_map_mode(&parse_args(&argv(items), ENRICH.flags));
        assert!(matches!(mode(&[]).unwrap(), MapMode::Mapped));
        assert!(matches!(
            mode(&["--engine-mmap", "on"]).unwrap(),
            MapMode::Mapped
        ));
        assert!(matches!(
            mode(&["--engine-mmap", "off"]).unwrap(),
            MapMode::Owned
        ));
        let msg = mode(&["--engine-mmap", "maybe"]).unwrap_err().to_string();
        assert!(msg.contains("expected `on` or `off`"), "{msg}");
    }

    #[test]
    fn streaming_flag_dependencies() {
        let a = parse_args(
            &argv(&["--chunk", "8", "--table", "t.csv", "d.txt"]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(msg.contains("--chunk requires --stream"), "{msg}");

        let a = parse_args(
            &argv(&["--engine-mmap", "on", "--table", "t.csv", "d.txt"]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(msg.contains("--engine-mmap requires --engine"), "{msg}");

        // Streaming never holds the whole corpus, so it cannot feed the
        // built-in SGNS trainer: a frozen model must come from somewhere.
        let a = parse_args(
            &argv(&["--stream", "--table", "t.csv", "d.txt"]),
            ENRICH.flags,
        );
        let msg = cmd_enrich(&a).unwrap_err().to_string();
        assert!(
            msg.contains("--stream needs --vectors or --engine"),
            "{msg}"
        );
    }

    #[test]
    fn delta_requires_engine_out_and_a_change() {
        let msg = cmd_delta(&parse_args(&[], DELTA.flags))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("--engine"), "{msg}");
        let a = parse_args(&argv(&["--engine", "base.eng"]), DELTA.flags);
        let msg = cmd_delta(&a).unwrap_err().to_string();
        assert!(msg.contains("--out"), "{msg}");
        let a = parse_args(
            &argv(&["--engine", "base.eng", "--out", "d1.eng"]),
            DELTA.flags,
        );
        let msg = cmd_delta(&a).unwrap_err().to_string();
        assert!(
            msg.contains("--add-seeds") && msg.contains("--add-concept"),
            "{msg}"
        );
        // `--add-concept` immediately followed by another option has an
        // empty value: rejected up front, not applied as a "" concept.
        let a = parse_args(
            &argv(&["--engine", "b.eng", "--add-concept", "--out", "d1.eng"]),
            DELTA.flags,
        );
        let msg = cmd_delta(&a).unwrap_err().to_string();
        assert!(msg.contains("--add-concept needs a concept name"), "{msg}");

        let a = parse_args(&argv(&["--add-seed", "x.csv"]), DELTA.flags);
        let msg = check_options("delta", &a, &DELTA).unwrap_err().to_string();
        assert!(msg.contains("did you mean `--add-seeds`?"), "{msg}");
    }

    #[test]
    fn compact_requires_engine_and_out() {
        let msg = cmd_compact(&parse_args(&[], COMPACT.flags))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("--engine"), "{msg}");
        let a = parse_args(&argv(&["--engine", "d2.eng"]), COMPACT.flags);
        let msg = cmd_compact(&a).unwrap_err().to_string();
        assert!(msg.contains("--out"), "{msg}");
        let a = parse_args(&argv(&["--uot", "folded.eng"]), COMPACT.flags);
        let msg = check_options("compact", &a, &COMPACT)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("did you mean `--out`?"), "{msg}");
    }

    #[test]
    fn inspect_requires_engine_and_catches_typos() {
        let msg = cmd_inspect(&parse_args(&[], INSPECT.flags))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("--engine"), "{msg}");
        let a = parse_args(&argv(&["--enigne", "e.thor"]), INSPECT.flags);
        let msg = check_options("inspect", &a, &INSPECT)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("did you mean `--engine`?"), "{msg}");
    }
}
