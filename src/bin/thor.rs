//! `thor` — command-line front end for the THOR reproduction.
//!
//! ```text
//! thor integrate <src.csv>... [--out R.csv]          full disjunction of sources
//! thor sparsity <table.csv>                          sparsity report
//! thor enrich --table R.csv [--tau 0.7] [--vectors v.txt]
//!             [--context-gate G] [--metrics[=json]] [--cache-stats]
//!             [--out enriched.csv] [--entities e.tsv]
//!             <doc.txt>...                           run the pipeline
//! thor evaluate --gold gold.tsv --pred pred.tsv      SemEval partial-match scores
//! thor generate --dataset disease|resume [--scale S] [--seed N] --out DIR
//!                                                    write dataset artifacts
//! ```
//!
//! Annotation TSV format: `doc_id<TAB>concept<TAB>phrase`, one per line.
//! Vector file format: word2vec-style text (`thor generate` writes one).
//! When `enrich` gets no `--vectors`, vectors are trained on the input
//! documents with the built-in SGNS trainer.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use thor_repro::core::{Document, PipelineMetrics, Thor, ThorConfig};
use thor_repro::data::csv::{from_csv, to_csv};
use thor_repro::data::{full_disjunction, sparsity, Table};
use thor_repro::datagen::{corpus_stats, generate, DatasetSpec, Split};
use thor_repro::embed::{SgnsConfig, SgnsTrainer, VectorStore};
use thor_repro::eval::{evaluate, schema_scores, Annotation};
use thor_repro::text::{normalize_phrase, split_sentences};

/// Parsed command line: positional args plus `--key value` / `--key=value`
/// options (`--flag` with no value stores an empty string).
#[derive(Debug, Default, PartialEq)]
struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(key) = a.strip_prefix("--") {
            if let Some((key, value)) = key.split_once('=') {
                args.options.insert(key.to_string(), value.to_string());
            } else {
                let value = argv
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .unwrap_or_default();
                if !value.is_empty() {
                    i += 1;
                }
                args.options.insert(key.to_string(), value);
            }
        } else {
            args.positional.push(a.clone());
        }
        i += 1;
    }
    args
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  thor integrate <src.csv>... [--out R.csv]\n  thor sparsity <table.csv>\n  \
         thor enrich --table R.csv [--tau 0.7] [--vectors v.txt] [--context-gate G] \
         [--metrics[=json]] [--cache-stats] [--out enriched.csv] [--entities e.tsv] <doc.txt>...\n  \
         thor evaluate --gold gold.tsv --pred pred.tsv\n  \
         thor generate --dataset disease|resume [--scale S] [--seed N] --out DIR"
    );
    ExitCode::FAILURE
}

fn read_table(path: &str) -> Result<Table, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    from_csv(&text).map_err(|e| format!("{path}: {e}"))
}

fn read_annotations(path: &str) -> Result<Vec<Annotation>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(doc), Some(concept), Some(phrase)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{path}:{}: expected doc<TAB>concept<TAB>phrase",
                i + 1
            ));
        };
        out.push(Annotation::new(doc, concept, phrase));
    }
    Ok(out)
}

fn cmd_integrate(args: &Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("integrate needs at least one source CSV".into());
    }
    let sources: Result<Vec<Table>, String> =
        args.positional.iter().map(|p| read_table(p)).collect();
    let sources = sources?;
    let refs: Vec<&Table> = sources.iter().collect();
    let integrated = full_disjunction(&refs);
    let report = sparsity(&integrated);
    eprintln!(
        "integrated {} sources -> {} rows, {} instances, sparsity {:.1}%",
        sources.len(),
        integrated.len(),
        integrated.instance_count(),
        report.ratio * 100.0
    );
    let csv = to_csv(&integrated);
    match args.options.get("out") {
        Some(path) => fs::write(path, csv).map_err(|e| e.to_string())?,
        None => print!("{csv}"),
    }
    Ok(())
}

fn cmd_sparsity(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("sparsity needs a table CSV")?;
    let table = read_table(path)?;
    let report = sparsity(&table);
    println!(
        "rows: {}  instances: {}  slots: {}  missing: {} ({:.1}%)",
        table.len(),
        table.instance_count(),
        report.total_slots,
        report.missing_slots,
        report.ratio * 100.0
    );
    for (concept, missing, total) in &report.per_concept {
        println!("  {concept:<24} {missing:>5} / {total} missing");
    }
    Ok(())
}

/// How `--metrics` asked for the per-stage breakdown, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsMode {
    Table,
    Json,
}

/// Parse `--metrics` / `--metrics=json` (`table` is the explicit form
/// of the default). Metrics go to stderr, leaving stdout to the
/// enriched table; the JSON document is a single line, so it stays
/// trivially extractable from the stream.
fn metrics_mode(args: &Args) -> Result<Option<MetricsMode>, String> {
    match args.options.get("metrics").map(String::as_str) {
        None => Ok(None),
        Some("" | "table") => Ok(Some(MetricsMode::Table)),
        Some("json") => Ok(Some(MetricsMode::Json)),
        Some(other) => Err(format!(
            "bad --metrics value `{other}` (expected `table` or `json`)"
        )),
    }
}

fn cmd_enrich(args: &Args) -> Result<(), String> {
    let table_path = args.options.get("table").ok_or("enrich needs --table")?;
    let table = read_table(table_path)?;
    let tau: f64 = args
        .options
        .get("tau")
        .map(|s| s.parse().map_err(|_| "bad --tau"))
        .transpose()?
        .unwrap_or(0.7);
    if args.positional.is_empty() {
        return Err("enrich needs at least one document file".into());
    }
    let docs: Result<Vec<Document>, String> = args
        .positional
        .iter()
        .map(|p| {
            // Document ids are the file stem, matching `thor generate`'s
            // gold TSVs.
            let id = Path::new(p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.clone());
            fs::read_to_string(p)
                .map(|text| Document::new(id, text))
                .map_err(|e| format!("{p}: {e}"))
        })
        .collect();
    let docs = docs?;

    let store = match args.options.get("vectors") {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            VectorStore::from_text(&text)?
        }
        None => {
            eprintln!("no --vectors given; training SGNS on the input documents...");
            let mut corpus = Vec::new();
            for d in &docs {
                for s in split_sentences(&d.text) {
                    let words: Vec<String> = normalize_phrase(&s.text)
                        .split_whitespace()
                        .map(str::to_string)
                        .collect();
                    if words.len() > 2 {
                        corpus.push(words);
                    }
                }
            }
            SgnsTrainer::new(SgnsConfig::default()).train(&corpus)
        }
    };

    let mut config = ThorConfig::with_tau(tau);
    if let Some(g) = args.options.get("context-gate") {
        config.context_gate = Some(g.parse().map_err(|_| "bad --context-gate")?);
    }
    let metrics_mode = metrics_mode(args)?;
    // `--cache-stats`: one-line summary of the candidate engine (phrase
    // cache traffic + vector index size/build time). Needs the metrics
    // handle attached even when `--metrics` wasn't asked for.
    let cache_stats = args.options.contains_key("cache-stats");
    let metrics = PipelineMetrics::new();
    let mut thor = Thor::new(store, config);
    if metrics_mode.is_some() || cache_stats {
        thor = thor.with_metrics(metrics.clone());
    }
    let result = thor.enrich(&table, &docs);
    eprintln!(
        "extracted {} entities, filled {} slots ({} duplicates) in {:?}",
        result.entities.len(),
        result.slot_stats.inserted,
        result.slot_stats.duplicates,
        result.total_time()
    );
    match metrics_mode {
        Some(MetricsMode::Table) => eprint!("{}", metrics.render_table()),
        Some(MetricsMode::Json) => eprintln!("{}", metrics.render_json()),
        None => {}
    }
    if cache_stats {
        let hits = metrics.cache_hits.get();
        let misses = metrics.cache_misses.get();
        let total = hits + misses;
        let rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64 * 100.0
        };
        eprintln!(
            "[cache] hits {hits}  misses {misses}  hit rate {rate:.1}%  \
             index {} rows built in {:.2}ms",
            metrics.index_rows.get(),
            metrics.index_build.total().as_secs_f64() * 1e3
        );
    }

    if let Some(path) = args.options.get("entities") {
        let mut tsv = String::new();
        for e in &result.entities {
            tsv.push_str(&format!(
                "{}\t{}\t{}\t{}\t{:.3}\n",
                e.doc_id, e.concept, e.phrase, e.subject, e.score
            ));
        }
        fs::write(path, tsv).map_err(|e| e.to_string())?;
    }
    let csv = to_csv(&result.table);
    match args.options.get("out") {
        Some(path) => fs::write(path, csv).map_err(|e| e.to_string())?,
        None => print!("{csv}"),
    }
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let gold = read_annotations(args.options.get("gold").ok_or("evaluate needs --gold")?)?;
    let pred = read_annotations(args.options.get("pred").ok_or("evaluate needs --pred")?)?;
    let r = evaluate(&pred, &gold);
    println!(
        "gold: {}  predicted: {}\ncorrect: {}  partial: {}  incorrect: {}  spurious: {}  missing: {}",
        r.gold_total, r.predicted_total, r.correct, r.partial, r.incorrect, r.spurious, r.missing
    );
    println!(
        "P: {:.3}  R: {:.3}  F1: {:.3}  sensitivity: {:.3}",
        r.precision, r.recall, r.f1, r.sensitivity
    );
    let s = schema_scores(&pred, &gold);
    println!(
        "schemas  strict {:.3}  exact {:.3}  partial {:.3}  ent_type {:.3}  (F1)",
        s.strict.f1, s.exact.f1, s.partial.f1, s.ent_type.f1
    );
    for c in &r.per_concept {
        println!(
            "  {:<24} gold {:>4}  pred {:>4}  tp {:>4}  F1 {:.3}",
            c.concept, c.gold, c.predicted, c.tp, c.f1
        );
    }
    Ok(())
}

fn write_split(
    dir: &Path,
    name: &str,
    docs: &[thor_repro::datagen::AnnotatedDoc],
) -> Result<(), String> {
    let doc_dir = dir.join("docs").join(name);
    fs::create_dir_all(&doc_dir).map_err(|e| e.to_string())?;
    let mut gold = String::new();
    for d in docs {
        fs::write(doc_dir.join(format!("{}.txt", d.doc.id)), &d.doc.text)
            .map_err(|e| e.to_string())?;
        for g in &d.gold {
            gold.push_str(&format!("{}\t{}\t{}\n", d.doc.id, g.concept, g.phrase));
        }
    }
    fs::create_dir_all(dir.join("gold")).map_err(|e| e.to_string())?;
    fs::write(dir.join("gold").join(format!("{name}.tsv")), gold).map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let dataset_name = args
        .options
        .get("dataset")
        .map(String::as_str)
        .unwrap_or("disease");
    let scale: f64 = args
        .options
        .get("scale")
        .map(|s| s.parse().map_err(|_| "bad --scale"))
        .transpose()?
        .unwrap_or(0.25);
    let seed: u64 = args
        .options
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(42);
    let out = PathBuf::from(args.options.get("out").ok_or("generate needs --out DIR")?);

    let spec = match dataset_name {
        "disease" => DatasetSpec::disease_az(seed, scale),
        "resume" => DatasetSpec::resume(seed, scale),
        other => return Err(format!("unknown dataset `{other}` (disease|resume)")),
    };
    let dataset = generate(&spec);

    fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    fs::write(out.join("table.csv"), to_csv(&dataset.table)).map_err(|e| e.to_string())?;
    fs::write(
        out.join("enrichment_table.csv"),
        to_csv(&dataset.enrichment_table()),
    )
    .map_err(|e| e.to_string())?;
    fs::write(
        out.join("gold_test_table.csv"),
        to_csv(&dataset.gold_test_table()),
    )
    .map_err(|e| e.to_string())?;
    fs::write(out.join("vectors.txt"), dataset.store.to_text()).map_err(|e| e.to_string())?;
    let src_dir = out.join("sources");
    fs::create_dir_all(&src_dir).map_err(|e| e.to_string())?;
    for (i, s) in dataset.sources.iter().enumerate() {
        fs::write(src_dir.join(format!("source_{i:02}.csv")), to_csv(s))
            .map_err(|e| e.to_string())?;
    }
    write_split(&out, "train", &dataset.train)?;
    write_split(&out, "validation", &dataset.validation)?;
    write_split(&out, "test", &dataset.test)?;

    for (name, docs) in [
        ("train", &dataset.train),
        ("validation", &dataset.validation),
        ("test", &dataset.test),
    ] {
        let s = corpus_stats(docs);
        eprintln!(
            "{name:<11} subjects {:>4}  docs {:>5}  entities {:>6}  words {:>7}",
            s.subjects, s.documents, s.entities, s.words
        );
    }
    let _ = Split::Test; // re-exported for users of the artifacts
    eprintln!("artifacts written to {}", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        return usage();
    };
    let args = parse_args(rest);
    let result = match command.as_str() {
        "integrate" => cmd_integrate(&args),
        "sparsity" => cmd_sparsity(&args),
        "enrich" => cmd_enrich(&args),
        "evaluate" => cmd_evaluate(&args),
        "generate" => cmd_generate(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_positional_and_options() {
        let a = parse_args(&argv(&["a.csv", "--out", "r.csv", "b.csv", "--flag"]));
        assert_eq!(a.positional, ["a.csv", "b.csv"]);
        assert_eq!(a.options.get("out").unwrap(), "r.csv");
        assert_eq!(a.options.get("flag").unwrap(), "");
    }

    #[test]
    fn option_followed_by_option_takes_no_value() {
        let a = parse_args(&argv(&["--gate", "--out", "x"]));
        assert_eq!(a.options.get("gate").unwrap(), "");
        assert_eq!(a.options.get("out").unwrap(), "x");
    }

    #[test]
    fn empty_args() {
        let a = parse_args(&[]);
        assert!(a.positional.is_empty());
        assert!(a.options.is_empty());
    }

    #[test]
    fn equals_form_splits_key_and_value() {
        let a = parse_args(&argv(&["--metrics=json", "--tau=0.6", "doc.txt"]));
        assert_eq!(a.options.get("metrics").unwrap(), "json");
        assert_eq!(a.options.get("tau").unwrap(), "0.6");
        assert_eq!(a.positional, ["doc.txt"]);
    }

    #[test]
    fn equals_form_does_not_consume_next_arg() {
        let a = parse_args(&argv(&["--metrics=json", "next"]));
        assert_eq!(a.options.get("metrics").unwrap(), "json");
        assert_eq!(a.positional, ["next"]);
    }

    #[test]
    fn metrics_mode_parses_all_forms() {
        let mode = |items: &[&str]| metrics_mode(&parse_args(&argv(items)));
        assert_eq!(mode(&[]).unwrap(), None);
        assert_eq!(mode(&["--metrics"]).unwrap(), Some(MetricsMode::Table));
        assert_eq!(
            mode(&["--metrics=table"]).unwrap(),
            Some(MetricsMode::Table)
        );
        assert_eq!(mode(&["--metrics=json"]).unwrap(), Some(MetricsMode::Json));
        assert!(mode(&["--metrics=xml"]).is_err());
    }
}
