//! # thor-repro
//!
//! Umbrella crate for the THOR reproduction (*Mitigating Data Sparsity
//! in Integrated Data through Text Conceptualization*, ICDE 2024).
//!
//! Re-exports the workspace crates under stable module names; see the
//! repository README for the architecture overview and DESIGN.md for
//! the per-experiment index.
//!
//! ```
//! use thor_repro::core::{Document, Thor, ThorConfig};
//! use thor_repro::data::{Schema, Table};
//! use thor_repro::embed::SemanticSpaceBuilder;
//!
//! let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
//! table.fill_slot("Tuberculosis", "Anatomy", "lung");
//! let store = SemanticSpaceBuilder::new(16, 1)
//!     .topic("anatomy")
//!     .words("anatomy", ["lung", "heart"])
//!     .build()
//!     .into_store();
//! let thor = Thor::new(store, ThorConfig::with_tau(0.8));
//! let enriched = thor.enrich(&table, &[Document::new("d", "Tuberculosis damages the heart.")]);
//! assert!(enriched.table.get_row("Tuberculosis").is_some());
//! ```

/// The THOR pipeline (segmentation, extraction, slot filling).
pub use thor_core as core;

/// Structured data: schemas, tables, integration operators, sparsity.
pub use thor_data as data;

/// Word embeddings: vector store, synthetic space, SGNS trainer.
pub use thor_embed as embed;

/// Linguistic substrate: POS tagging, dependency parsing, NP chunking.
pub use thor_nlp as nlp;

/// Text utilities: tokenization, sentences, string similarity.
pub use thor_text as text;

/// Aho–Corasick multi-pattern matching.
pub use thor_automata as automata;

/// The fine-tunable semantic similarity matcher.
pub use thor_match as matcher;

/// Comparison systems: dictionary baseline, perceptron taggers,
/// simulated LLMs.
pub use thor_baselines as baselines;

/// SemEval-2013-style evaluation metrics.
pub use thor_eval as eval;

/// Fault tolerance: error taxonomy, failpoints, atomic I/O, document
/// quarantine, checkpoint/resume.
pub use thor_fault as fault;

/// Synthetic dataset generators and the annotation-effort model.
pub use thor_datagen as datagen;

/// The HTTP/1.1 serving front end over the frozen engine.
pub use thor_serve as serve;
