//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing exactly the 0.9-style API surface this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `random` / `random_range` / `random_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the handful of third-party APIs it relies on (see
//! `vendor/README.md`). The generator is SplitMix64 — deterministic,
//! fast, and statistically solid for synthetic-data generation, which is
//! all this workspace uses randomness for. It is **not** the upstream
//! ChaCha-based `StdRng`; streams differ from the real crate, and none
//! of this is cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::random_range`] can produce. Mirrors upstream's
/// `SampleUniform` marker; the bound on `T` is what lets inference
/// resolve expressions like `n + rng.random_range(0..2)` (a reference
/// type can satisfy `Add` but not this trait).
pub trait SampleUniform: Sized {}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
}
sample_uniform!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is in range.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardUniform::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = StandardUniform::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience extension methods, mirroring `rand 0.9`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value from `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so that nearby seeds (0, 1, 2, ...)
            // produce unrelated streams.
            let mut rng = StdRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.random_range(1..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..2000 {
            let f: f64 = rng.random();
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should reach both tails");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
