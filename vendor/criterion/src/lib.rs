//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API surface this workspace's
//! benches use: [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the third-party APIs it relies on (see `vendor/README.md`).
//! Measurement is deliberately simple: a warm-up, then `sample_size`
//! timed samples of an adaptively-chosen iteration batch; the median,
//! mean, and spread are printed as plain text. There are no HTML
//! reports, statistical regressions, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. All variants behave the
/// same here (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch.
    SmallInput,
    /// Large inputs: few iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and pick an iteration count aiming at ~5ms per sample.
        let warmup = Instant::now();
        let mut one = std::hint::black_box(routine());
        let per_iter = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                one = std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
        drop(one);
    }

    /// Time `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        println!(
            "{id:<40} median {:>12?}  mean {:>12?}  range [{:?} .. {:?}]",
            median, mean, lo, hi
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }

    /// Accepted for CLI parity; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 3, "routine ran {calls} times");
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(4);
        let mut setups = 0u64;
        g.bench_with_input(BenchmarkId::new("b", 1), &7usize, |b, &x| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![x; 3]
                },
                |v| v.iter().sum::<usize>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(
            BenchmarkId::new("fine_tune", 0.5).to_string(),
            "fine_tune/0.5"
        );
        assert_eq!(BenchmarkId::from_parameter(0.7).to_string(), "0.7");
    }
}
