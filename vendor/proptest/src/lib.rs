//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, implementing the API surface this workspace's
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`, regex-string / numeric-range /
//! tuple strategies, `prop::collection::vec`, and
//! [`test_runner::ProptestConfig`].
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the third-party APIs it relies on (see `vendor/README.md`).
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (fully reproducible runs), there
//! is no shrinking (a failing case panics with its inputs via the assert
//! message), and `*.proptest-regressions` files are ignored.

pub mod regex;

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; with no shrinker we bias toward a
            // snappy debug-mode suite. Raise per-test with `with_cases`.
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// The deterministic RNG driving case generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed directly.
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed from a test name, so each property gets its own stream
        /// but every run of the suite sees identical cases.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A `&str` is a regex strategy producing matching `String`s.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::regex::generate(self, rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    // Occasionally emit the exact endpoints so `..=`
                    // boundaries actually get tested.
                    match rng.below(32) {
                        0 => start,
                        1 => end,
                        _ => start + (rng.unit_f64() as $t) * (end - start),
                    }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

/// Strategy factories, mirroring upstream's `proptest::prop` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Sizes accepted by [`vec`]: a fixed length or a range.
        pub trait IntoSizeRange {
            /// Pick a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty vec size range");
                self.start + rng.below(self.end - self.start)
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start() <= self.end(), "empty vec size range");
                self.start() + rng.below(self.end() - self.start() + 1)
            }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `Vec` of values from `element`, with length drawn from `size`.
        pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; formats like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property; formats like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property; formats like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2i32..=2, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            pairs in prop::collection::vec((0usize..5, "[ab]{1,3}"), 0..10),
            fixed in prop::collection::vec(0.0f32..1.0, 4),
        ) {
            prop_assert!(pairs.len() < 10);
            prop_assert_eq!(fixed.len(), 4);
            for (n, s) in &pairs {
                prop_assert!(*n < 5);
                prop_assert!((1..=3).contains(&s.len()));
                prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            }
        }

        #[test]
        fn prop_map_transforms(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(matches!(n, 10 | 20 | 30));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honoured(_x in 0u64..10) {
            // Five cases run; the loop bound itself is the assertion
            // (an infinite or zero-case loop would hang or vacuously pass
            // — checked by the deterministic-stream test below).
        }
    }

    #[test]
    fn test_rng_streams_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let mut c = crate::test_runner::TestRng::for_test("u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
