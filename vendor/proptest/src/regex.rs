//! A generator for the regex subset this workspace's property tests use
//! as string strategies.
//!
//! Supported syntax: literal characters, escapes (`\n`, `\t`, `\-`,
//! `\[`, ...), character classes with ranges (`[a-zA-Z ]`), the
//! printable-character shorthand `\PC`, groups with alternation
//! (`(ape|ant|asp)`), and the quantifiers `{m,n}`, `{n}`, `?`, `*`, `+`.
//! Anything outside the subset panics with the offending pattern, so a
//! new test that needs more syntax fails loudly instead of silently
//! generating the wrong language.

use crate::test_runner::TestRng;

/// One parsed regex node.
#[derive(Debug, Clone)]
enum Node {
    /// A fixed character.
    Literal(char),
    /// One character from a set.
    Class(Vec<char>),
    /// One character from the `\PC` (printable) pool.
    Printable,
    /// Alternation of sequences.
    Group(Vec<Vec<Node>>),
    /// A repeated node: `node{min,max}`.
    Repeat(Box<Node>, usize, usize),
}

/// Printable pool for `\PC`: ASCII printables plus a few multi-byte
/// scalars so UTF-8 boundary handling gets exercised.
const PRINTABLE_EXTRA: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '𝛼', '—', '“'];

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Self {
            pattern,
            chars: pattern.chars().peekable(),
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "unsupported regex {what} in strategy pattern `{}`",
            self.pattern
        )
    }

    fn parse_alternation(&mut self, in_group: bool) -> Vec<Vec<Node>> {
        let mut branches = vec![Vec::new()];
        loop {
            match self.chars.peek().copied() {
                None => {
                    if in_group {
                        self.fail("unclosed group");
                    }
                    break;
                }
                Some(')') if in_group => break,
                Some('|') => {
                    self.chars.next();
                    branches.push(Vec::new());
                }
                Some(_) => {
                    let node = self.parse_atom();
                    let node = self.parse_quantifier(node);
                    branches.last_mut().expect("at least one branch").push(node);
                }
            }
        }
        branches
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next().expect("atom expected") {
            '(' => {
                let branches = self.parse_alternation(true);
                match self.chars.next() {
                    Some(')') => Node::Group(branches),
                    _ => self.fail("unclosed group"),
                }
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::Printable,
            c @ (')' | ']' | '{' | '}' | '?' | '*' | '+') => {
                // Bare metacharacters outside their role are not part of
                // the supported subset.
                self.fail(&format!("metacharacter `{c}`"))
            }
            c => Node::Literal(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.chars.next() {
            Some('P') => match self.chars.next() {
                // `\PC` — "not in Unicode category C (control)".
                Some('C') => Node::Printable,
                _ => self.fail("escape (only \\PC is supported)"),
            },
            Some('n') => Node::Literal('\n'),
            Some('t') => Node::Literal('\t'),
            Some('r') => Node::Literal('\r'),
            Some(
                c @ ('\\' | '-' | '[' | ']' | '(' | ')' | '{' | '}' | '.' | '?' | '*' | '+' | '|'
                | '"' | '\''),
            ) => Node::Literal(c),
            _ => self.fail("escape"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut set: Vec<char> = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.fail("negated class");
        }
        loop {
            let c = match self.chars.next() {
                None => self.fail("unclosed class"),
                Some(']') => break,
                Some('\\') => match self.parse_escape() {
                    Node::Literal(c) => c,
                    Node::Printable => {
                        set.extend(' '..='~');
                        set.extend(PRINTABLE_EXTRA);
                        continue;
                    }
                    _ => self.fail("class escape"),
                },
                Some(c) => c,
            };
            // A range `a-z`? Only when `-` is followed by a non-`]`.
            if self.chars.peek() == Some(&'-') {
                let mut lookahead = self.chars.clone();
                lookahead.next();
                match lookahead.peek() {
                    Some(&']') | None => set.push(c),
                    Some(_) => {
                        self.chars.next(); // the '-'
                        let hi = match self.chars.next() {
                            Some('\\') => match self.parse_escape() {
                                Node::Literal(c) => c,
                                _ => self.fail("class range"),
                            },
                            Some(hi) => hi,
                            None => self.fail("unclosed class"),
                        };
                        if hi < c {
                            self.fail("descending class range");
                        }
                        set.extend(c..=hi);
                    }
                }
            } else {
                set.push(c);
            }
        }
        if set.is_empty() {
            self.fail("empty class");
        }
        Node::Class(set)
    }

    fn parse_quantifier(&mut self, node: Node) -> Node {
        match self.chars.peek().copied() {
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(node), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(node), 0, 8)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(node), 1, 8)
            }
            Some('{') => {
                self.chars.next();
                let mut digits = String::new();
                let mut min: Option<usize> = None;
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(',') => {
                            min = Some(digits.parse().unwrap_or_else(|_| self.fail("quantifier")));
                            digits.clear();
                        }
                        Some(d) if d.is_ascii_digit() => digits.push(d),
                        _ => self.fail("quantifier"),
                    }
                }
                let last: usize = digits.parse().unwrap_or_else(|_| self.fail("quantifier"));
                let (lo, hi) = match min {
                    Some(m) => (m, last),
                    None => (last, last),
                };
                if hi < lo {
                    self.fail("descending quantifier");
                }
                Node::Repeat(Box::new(node), lo, hi)
            }
            _ => node,
        }
    }
}

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(set) => out.push(set[rng.below(set.len())]),
        Node::Printable => {
            // Mostly ASCII printables, occasionally a multi-byte scalar.
            if rng.below(8) == 0 {
                out.push(PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len())]);
            } else {
                out.push(char::from(b' ' + rng.below(95) as u8));
            }
        }
        Node::Group(branches) => {
            for n in &branches[rng.below(branches.len())] {
                generate_node(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                generate_node(inner, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern` (within the supported subset).
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let branches = parser.parse_alternation(false);
    let mut out = String::new();
    for n in &branches[rng.below(branches.len())] {
        generate_node(n, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(12345)
    }

    #[test]
    fn classes_and_quantifiers() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-c ]{0,8}", &mut r);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')), "{s:?}");
        }
    }

    #[test]
    fn alternation_picks_whole_words() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("(ape|ant|asp|auk)", &mut r);
            assert!(matches!(s.as_str(), "ape" | "ant" | "asp" | "auk"), "{s:?}");
        }
    }

    #[test]
    fn optional_group_with_sequence() {
        let mut r = rng();
        let mut saw_short = false;
        let mut saw_long = false;
        for _ in 0..200 {
            let s = generate("[a-c]{1,2}( [a-c]{1,2})?", &mut r);
            if s.contains(' ') {
                saw_long = true;
                let (head, tail) = s.split_once(' ').unwrap();
                assert!((1..=2).contains(&head.len()));
                assert!((1..=2).contains(&tail.len()));
            } else {
                saw_short = true;
                assert!((1..=2).contains(&s.len()));
            }
        }
        assert!(saw_short && saw_long);
    }

    #[test]
    fn printable_is_utf8_safe_and_never_control() {
        let mut r = rng();
        for _ in 0..300 {
            let s = generate("\\PC{0,20}", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn escaped_punctuation_class() {
        let mut r = rng();
        let allowed = " .,;:!?-()[]{}\"'\n\t";
        for _ in 0..100 {
            let s = generate("[ .,;:!?\\-()\\[\\]{}\"'\n\t]{0,30}", &mut r);
            assert!(s.chars().all(|c| allowed.contains(c)), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn out_of_subset_syntax_panics() {
        generate("[^a]", &mut rng());
    }
}
