//! The refinement kernels and the early abandon are *performance*
//! dials, not semantic ones: enriching the same table from the same
//! documents must produce a byte-identical CSV serialization and
//! identical entity predictions whether refinement runs on the
//! allocation-free kernel path or the documented reference
//! implementations, with the score-bound early abandon on or off, on
//! one thread or four, cached or uncached. This is the end-to-end
//! counterpart of the per-function bit-equality proptests in
//! `thor_text::kernels`.

use thor_core::extract::{refine_candidates, RefineOutcome};
use thor_core::{Document, ExtractedEntity, Thor, ThorConfig};
use thor_data::csv::to_csv;
use thor_data::{Schema, Table};
use thor_embed::{SemanticSpaceBuilder, VectorStore};
use thor_index::CandidateEntity;
use thor_obs::PipelineMetrics;
use thor_text::ScoreScratch;

fn store() -> VectorStore {
    SemanticSpaceBuilder::new(32, 55)
        .spread(0.4)
        .topic("disease")
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words(
            "disease",
            ["tuberculosis", "acne", "neuroma", "acoustic", "malaria"],
        )
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "lungs", "skin", "ear", "liver",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "empyema",
                "deafness",
                "fever",
            ],
        )
        .generic_words([
            "slow-growing",
            "grows",
            "damage",
            "damages",
            "severe",
            "causes",
        ])
        .build()
        .into_store()
}

fn table() -> Table {
    let mut table = Table::new(Schema::new(
        ["Disease", "Anatomy", "Complication"],
        "Disease",
    ));
    table.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    table.fill_slot("Acne", "Anatomy", "skin");
    table.fill_slot("Acne", "Complication", "skin cancer");
    table.fill_slot("Malaria", "Complication", "fever");
    table.row_for_subject("Tuberculosis");
    table
}

fn docs() -> Vec<Document> {
    [
        "Acoustic Neuroma is a slow-growing non-cancerous brain tumor. \
         It may cause unsteadiness and deafness.",
        "Tuberculosis generally damages the lungs and may cause empyema. \
         Severe tuberculosis damages the lungs.",
        "Malaria causes severe fever and may damage the liver.",
        "Acne damages the skin. The tumor grows on the nerve near the ear.",
        "Acne damages the skin. Acne damages the skin. Acne damages the skin.",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| Document::new(format!("doc{i:02}"), *text))
    .collect()
}

#[derive(Clone, Copy)]
struct RefineKnobs {
    reference: bool,
    early_abandon: bool,
    threads: usize,
    cache_capacity: usize,
}

fn enrich(tau: f64, knobs: RefineKnobs) -> (String, Vec<ExtractedEntity>) {
    let mut config = ThorConfig::with_tau(tau);
    config.reference_refine = knobs.reference;
    config.early_abandon = knobs.early_abandon;
    config.threads = knobs.threads;
    config.cache_capacity = knobs.cache_capacity;
    let thor = Thor::new(store(), config);
    let result = thor.enrich(&table(), &docs());
    (to_csv(&result.table), result.entities)
}

/// Scores compared down to the bit, not just `==`: the whole point of
/// the kernel path is exact reproduction of the reference arithmetic.
fn assert_entities_bit_equal(reference: &[ExtractedEntity], got: &[ExtractedEntity], label: &str) {
    assert_eq!(reference.len(), got.len(), "entity count diverged: {label}");
    for (r, g) in reference.iter().zip(got) {
        assert_eq!(r, g, "entity diverged: {label}");
        assert_eq!(
            r.score.to_bits(),
            g.score.to_bits(),
            "score bits diverged: {label}"
        );
    }
}

#[test]
fn kernel_matches_reference_across_execution_knobs() {
    for tau10 in [5, 7, 9] {
        let tau = tau10 as f64 / 10.0;
        let (reference_csv, reference_entities) = enrich(
            tau,
            RefineKnobs {
                reference: true,
                early_abandon: false,
                threads: 1,
                cache_capacity: 4096,
            },
        );
        assert!(
            reference_csv.contains("Disease"),
            "reference CSV should serialize the schema"
        );
        for reference in [false, true] {
            for early_abandon in [false, true] {
                for threads in [1, 4] {
                    for cache_capacity in [0, 4096] {
                        let knobs = RefineKnobs {
                            reference,
                            early_abandon,
                            threads,
                            cache_capacity,
                        };
                        let (csv, entities) = enrich(tau, knobs);
                        let label = format!(
                            "tau={tau}, reference={reference}, \
                             early_abandon={early_abandon}, threads={threads}, \
                             cache={cache_capacity}"
                        );
                        assert_eq!(reference_csv, csv, "CSV diverged: {label}");
                        assert_entities_bit_equal(&reference_entities, &entities, &label);
                    }
                }
            }
        }
    }
}

fn metered_counts(knobs: RefineKnobs) -> (u64, u64, usize) {
    let mut config = ThorConfig::with_tau(0.6);
    config.reference_refine = knobs.reference;
    config.early_abandon = knobs.early_abandon;
    config.threads = knobs.threads;
    config.cache_capacity = knobs.cache_capacity;
    let metrics = PipelineMetrics::new();
    let thor = Thor::new(store(), config).with_metrics(metrics.clone());
    let result = thor.enrich(&table(), &docs());
    let snap = metrics.snapshot();
    (
        snap.count("refine.scored"),
        snap.count("refine.pruned"),
        result.entities.len(),
    )
}

#[test]
fn refine_counters_account_for_every_candidate() {
    let base = RefineKnobs {
        reference: false,
        early_abandon: true,
        threads: 1,
        cache_capacity: 4096,
    };
    let (scored_fast, pruned_fast, entities_fast) = metered_counts(base);
    assert!(scored_fast > 0, "the corpus must exercise refinement");
    assert!(entities_fast > 0, "the corpus must produce entities");

    // Early abandon off: every candidate is scored, none pruned.
    let (scored_full, pruned_full, entities_full) = metered_counts(RefineKnobs {
        early_abandon: false,
        ..base
    });
    assert_eq!(pruned_full, 0, "no pruning with early abandon disabled");
    assert_eq!(entities_full, entities_fast);

    // The reference path never prunes, even with early abandon on.
    let (scored_ref, pruned_ref, entities_ref) = metered_counts(RefineKnobs {
        reference: true,
        ..base
    });
    assert_eq!(pruned_ref, 0, "reference path never prunes");
    assert_eq!(scored_ref, scored_full, "reference scores everything");
    assert_eq!(entities_ref, entities_fast);

    // scored + pruned is conserved: the abandon skips work, it does not
    // skip candidates.
    assert_eq!(scored_fast + pruned_fast, scored_full);
}

#[test]
fn refine_candidates_handles_foreign_instances() {
    // A matched_instance that is not one of the matcher's embedded
    // seeds exercises the defensive per-call PhraseSyntax fallback;
    // its score must equal the reference computation exactly.
    let thor = Thor::new(store(), ThorConfig::with_tau(0.6));
    let engine = thor.prepare(&table());
    let matcher = engine.matcher();
    let candidates = vec![
        CandidateEntity {
            phrase: "brain tumor".into(),
            concept: "Complication".into(),
            matched_instance: "not a seed phrase".into(),
            semantic_score: 0.9,
            cluster_score: 0.9,
        },
        CandidateEntity {
            phrase: "brain tumor".into(),
            concept: "Complication".into(),
            matched_instance: "skin cancer".into(),
            semantic_score: 0.8,
            cluster_score: 0.8,
        },
    ];
    let mut scratch = ScoreScratch::new();
    let config = ThorConfig::with_tau(0.6);
    let mut reference_config = config.clone();
    reference_config.reference_refine = true;
    let kernel: RefineOutcome = refine_candidates(&candidates, matcher, &config, &mut scratch);
    let reference = refine_candidates(&candidates, matcher, &reference_config, &mut scratch);
    let (kc, ks) = kernel.best.expect("kernel winner");
    let (rc, rs) = reference.best.expect("reference winner");
    assert_eq!(kc, rc);
    assert_eq!(ks.to_bits(), rs.to_bits());
    assert_eq!(reference.pruned, 0);
    assert_eq!(reference.scored, 2);
}
