//! Failure-injection and fuzz tests: the pipeline is exposed to
//! arbitrary unicode documents, degenerate tables, and hostile
//! configurations — it must produce valid output or nothing, never
//! panic.

use proptest::prelude::*;

use thor_core::{Document, Thor, ThorConfig};
use thor_data::{Schema, Table};
use thor_embed::{SemanticSpaceBuilder, VectorStore};

fn small_store() -> VectorStore {
    SemanticSpaceBuilder::new(8, 3)
        .topic("t")
        .words("t", ["alpha", "beta", "gamma"])
        .build()
        .into_store()
}

fn small_table() -> Table {
    let mut t = Table::new(Schema::new(["Subject", "Concept"], "Subject"));
    t.fill_slot("alpha", "Concept", "beta");
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary unicode text must never panic the pipeline and every
    /// produced entity must reference a schema concept and a known
    /// subject.
    #[test]
    fn arbitrary_documents_never_panic(text in "\\PC{0,300}") {
        let thor = Thor::new(small_store(), ThorConfig::with_tau(0.5));
        let table = small_table();
        let result = thor.enrich(&table, &[Document::new("d", text)]);
        for e in &result.entities {
            prop_assert!(result.table.schema().index_of(&e.concept).is_some());
            prop_assert!(result.table.get_row(&e.subject).is_some());
            prop_assert!((0.0..=1.0).contains(&e.score));
        }
    }

    /// Whitespace/punctuation soup documents.
    #[test]
    fn punctuation_soup(text in "[ .,;:!?\\-()\\[\\]{}\"'\n\t]{0,200}") {
        let thor = Thor::new(small_store(), ThorConfig::with_tau(0.5));
        let _ = thor.enrich(&small_table(), &[Document::new("d", text)]);
    }

    /// Any tau in [0,1] works, and prediction counts stay finite.
    #[test]
    fn any_tau_is_safe(tau in 0.0f64..=1.0) {
        let thor = Thor::new(small_store(), ThorConfig::with_tau(tau));
        let doc = Document::new("d", "alpha relates to beta and gamma.");
        let result = thor.enrich(&small_table(), &[doc]);
        prop_assert!(result.entities.len() < 100);
    }
}

#[test]
fn degenerate_tables() {
    let thor = Thor::new(small_store(), ThorConfig::with_tau(0.5));
    let doc = Document::new("d", "alpha relates to beta.");

    // Empty table: nothing to anchor on.
    let empty = Table::new(Schema::new(["Subject", "Concept"], "Subject"));
    let result = thor.enrich(&empty, std::slice::from_ref(&doc));
    assert!(result.entities.is_empty());

    // Single-concept schema (subject only): nothing to fill.
    let solo = {
        let mut t = Table::new(Schema::new(["Subject"], "Subject"));
        t.row_for_subject("alpha");
        t
    };
    let result = thor.enrich(&solo, std::slice::from_ref(&doc));
    assert_eq!(result.slot_stats.inserted, 0);

    // Table whose instances are all out-of-vocabulary.
    let oov = {
        let mut t = Table::new(Schema::new(["Subject", "Concept"], "Subject"));
        t.fill_slot("alpha", "Concept", "zzyzx");
        t
    };
    let _ = thor.enrich(&oov, &[doc]);
}

#[test]
fn empty_vector_store() {
    let thor = Thor::new(VectorStore::new(8), ThorConfig::with_tau(0.5));
    let result = thor.enrich(&small_table(), &[Document::new("d", "alpha beta gamma.")]);
    assert!(
        result.entities.is_empty(),
        "no vectors, no semantic matches"
    );
}

#[test]
fn huge_single_token_document() {
    let thor = Thor::new(small_store(), ThorConfig::with_tau(0.5));
    let text = "a".repeat(100_000);
    let _ = thor.enrich(&small_table(), &[Document::new("d", text)]);
}

#[test]
fn many_tiny_documents() {
    let thor = Thor::new(small_store(), ThorConfig::with_tau(0.5));
    let docs: Vec<Document> = (0..500)
        .map(|i| Document::new(format!("d{i}"), "alpha beta."))
        .collect();
    let result = thor.enrich(&small_table(), &docs);
    // Dedup is per document, so counts scale with the corpus.
    assert!(result.entities.len() <= 500 * 2);
}
