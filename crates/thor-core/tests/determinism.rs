//! Thread-count determinism: `Thor::extract` must produce *identical*
//! output — every field of every entity, in the same order — no matter
//! how many worker threads process the corpus.

use thor_core::{Document, Thor, ThorConfig};
use thor_data::{Schema, Table};
use thor_embed::SemanticSpaceBuilder;

/// A medical semantic space with enough vocabulary that documents
/// produce several entities each, including repeated phrases across
/// documents (the dedup-tie-break stress case).
fn thor(tau: f64) -> Thor {
    let store = SemanticSpaceBuilder::new(32, 77)
        .spread(0.4)
        .topic("disease")
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words(
            "disease",
            ["tuberculosis", "acne", "neuroma", "acoustic", "malaria"],
        )
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "lungs", "skin", "ear", "liver", "spine",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "empyema",
                "deafness",
                "fever",
                "seizure",
            ],
        )
        .generic_words([
            "slow-growing",
            "grows",
            "damage",
            "damages",
            "severe",
            "causes",
        ])
        .build()
        .into_store();
    Thor::new(store, ThorConfig::with_tau(tau))
}

fn table() -> Table {
    let mut table = Table::new(Schema::new(
        ["Disease", "Anatomy", "Complication"],
        "Disease",
    ));
    table.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    table.fill_slot("Acne", "Anatomy", "skin");
    table.fill_slot("Acne", "Complication", "skin cancer");
    table.fill_slot("Malaria", "Complication", "fever");
    table.row_for_subject("Tuberculosis");
    table
}

fn corpus() -> Vec<Document> {
    let sentences = [
        "Acoustic Neuroma is a slow-growing non-cancerous brain tumor.",
        "It may cause unsteadiness and deafness.",
        "Tuberculosis generally damages the lungs and may cause empyema.",
        "Malaria causes severe fever and may damage the liver.",
        "Acne damages the skin.",
        "The tumor grows on the nerve near the ear.",
        "Severe tuberculosis may cause a seizure.",
    ];
    // 24 documents cycling through overlapping sentence windows, so the
    // same (concept, phrase) pairs recur across documents and within
    // them — worker partitioning must not be observable in the output.
    (0..24)
        .map(|i| {
            let a = i % sentences.len();
            let b = (i * 3 + 1) % sentences.len();
            let c = (i * 5 + 2) % sentences.len();
            Document::new(
                format!("doc{i:02}"),
                format!("{} {} {}", sentences[a], sentences[b], sentences[c]),
            )
        })
        .collect()
}

#[test]
fn extract_is_identical_across_thread_counts() {
    let table = table();
    let docs = corpus();
    let baseline = thor(0.6);
    let (sequential, _, _) = baseline.extract(&table, &docs);
    assert!(
        sequential.len() >= 10,
        "corpus too weak to exercise determinism: {} entities",
        sequential.len()
    );

    for threads in [2, 4, 8] {
        let mut config = baseline.config().clone();
        config.threads = threads;
        let parallel = Thor::new(baseline.store().clone(), config);
        let (entities, _, _) = parallel.extract(&table, &docs);
        assert_eq!(
            sequential, entities,
            "threads=1 and threads={threads} must produce identical entities"
        );
    }
}

#[test]
fn extract_is_stable_across_repeated_runs() {
    let table = table();
    let docs = corpus();
    let mut config = ThorConfig::with_tau(0.6);
    config.threads = 4;
    let t = thor(0.6);
    let parallel = Thor::new(t.store().clone(), config);
    let (first, _, _) = parallel.extract(&table, &docs);
    for _ in 0..3 {
        let (again, _, _) = parallel.extract(&table, &docs);
        assert_eq!(first, again, "repeated parallel runs must be bit-stable");
    }
}

#[test]
fn enrich_tables_identical_across_thread_counts() {
    let table = table();
    let docs = corpus();
    let sequential = thor(0.6);
    let batch = sequential.enrich(&table, &docs);
    let mut config = sequential.config().clone();
    config.threads = 4;
    let parallel = Thor::new(sequential.store().clone(), config).enrich(&table, &docs);
    assert_eq!(batch.entities, parallel.entities);
    assert_eq!(batch.slot_stats, parallel.slot_stats);
    assert_eq!(
        batch.table.instance_count(),
        parallel.table.instance_count()
    );
    for subject in batch.table.subjects() {
        let b = batch.table.get_row(subject).unwrap();
        let p = parallel.table.get_row(subject).unwrap();
        for i in 0..b.arity() {
            let mut bv: Vec<&str> = b.cell(i).values().collect();
            let mut pv: Vec<&str> = p.cell(i).values().collect();
            bv.sort_unstable();
            pv.sort_unstable();
            assert_eq!(bv, pv, "cell ({subject}, {i}) diverged");
        }
    }
}
