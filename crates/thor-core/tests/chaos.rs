//! Chaos suite: deterministic fault injection through the resilient run
//! layer.
//!
//! Every test arms (or explicitly disarms) the global failpoint registry
//! through `scoped_failpoints`, which serializes the tests that touch it
//! — so the suite is safe under cargo's default parallel test runner.
//!
//! The headline property: a run interrupted at an arbitrary document and
//! resumed from its checkpoint produces **byte-identical** enriched CSV
//! and entities TSV to an uninterrupted run, across cache and thread
//! configurations.

use std::path::{Path, PathBuf};

use thor_core::{Document, PipelineMetrics, ResilientOptions, RunMode, Thor, ThorConfig};
use thor_data::{to_csv, Schema, Table};
use thor_embed::SemanticSpaceBuilder;
use thor_fault::{scoped_failpoints, DocumentPolicy, ErrorKind};

fn setup(cache_capacity: usize, threads: usize) -> (Thor, Table, Vec<Document>) {
    let store = SemanticSpaceBuilder::new(32, 21)
        .spread(0.4)
        .topic("disease")
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words("disease", ["tuberculosis", "acne", "neuroma", "acoustic"])
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "lungs", "skin", "ear",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "empyema",
                "deafness",
                "non-cancerous",
            ],
        )
        .generic_words(["slow-growing", "grows", "damage", "damages", "severe"])
        .build()
        .into_store();
    let mut table = Table::new(Schema::new(
        ["Disease", "Anatomy", "Complication"],
        "Disease",
    ));
    table.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    table.fill_slot("Acne", "Anatomy", "skin");
    table.fill_slot("Acne", "Complication", "skin cancer");
    table.row_for_subject("Tuberculosis");
    let docs = vec![
        Document::new(
            "d0",
            "Acoustic Neuroma is a slow-growing non-cancerous brain tumor.",
        ),
        Document::new(
            "d1",
            "Acoustic Neuroma may cause unsteadiness and deafness.",
        ),
        Document::new(
            "d2",
            "Tuberculosis generally damages the lungs and may cause empyema.",
        ),
        Document::new(
            "d3",
            "Acne grows on the skin and may cause severe skin cancer.",
        ),
        Document::new(
            "d4",
            "Tuberculosis may damage the brain and the nervous system.",
        ),
        Document::new("d5", "Acne can cause damage to the ear skin."),
    ];
    let mut config = ThorConfig::with_tau(0.6);
    config.cache_capacity = cache_capacity;
    config.threads = threads;
    (Thor::new(store, config), table, docs)
}

fn opts(mode: RunMode, dir: Option<&Path>, resume: bool) -> ResilientOptions {
    ResilientOptions {
        mode,
        checkpoint_dir: dir.map(PathBuf::from),
        checkpoint_interval: 1,
        resume,
        policy: DocumentPolicy::default(),
        ..ResilientOptions::default()
    }
}

/// The CLI's entities TSV rendering — the byte-identical-resume claim
/// covers this artifact.
fn entities_tsv(entities: &[thor_core::ExtractedEntity]) -> String {
    let mut tsv = String::new();
    for e in entities {
        tsv.push_str(&format!(
            "{}\t{}\t{}\t{}\t{:.3}\n",
            e.doc_id, e.concept, e.phrase, e.subject, e.score
        ));
    }
    tsv
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thor-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_per_doc_site_quarantines_exactly_one_doc() {
    for site in ["validate", "segment", "extract"] {
        let _guard = scoped_failpoints(&format!("{site}:err@2"));
        let (thor, table, docs) = setup(4096, 1);
        let outcome = thor
            .enrich_resilient(&table, &docs, &opts(RunMode::Lenient, None, false))
            .unwrap();
        assert_eq!(outcome.quarantine.len(), 1, "site {site}");
        let entry = &outcome.quarantine.entries()[0];
        assert_eq!(entry.stage, site);
        assert_eq!(entry.kind, ErrorKind::Injected);
        // Single-threaded, so the 2nd evaluation is deterministically d1.
        assert_eq!(entry.doc_id, "d1", "site {site}");
        assert_eq!(outcome.processed_docs, docs.len());
    }
}

#[test]
fn quarantine_count_matches_multiple_injected_faults() {
    // validate fires on the 1st doc; extract on its 3rd evaluation —
    // d0 never reaches extract, so that is d3.
    let _guard = scoped_failpoints("validate:err@1,extract:err@3");
    let (thor, table, docs) = setup(4096, 1);
    let outcome = thor
        .enrich_resilient(&table, &docs, &opts(RunMode::Lenient, None, false))
        .unwrap();
    assert_eq!(outcome.quarantine.len(), 2);
    assert_eq!(outcome.quarantine.stage_count("validate"), 1);
    assert_eq!(outcome.quarantine.stage_count("extract"), 1);
    let ids: Vec<&str> = outcome
        .quarantine
        .entries()
        .iter()
        .map(|e| e.doc_id.as_str())
        .collect();
    assert_eq!(ids, ["d0", "d3"]);
    // Every other doc still contributed.
    let clean_docs: Vec<Document> = docs
        .iter()
        .filter(|d| !ids.contains(&d.id.as_str()))
        .cloned()
        .collect();
    let clean = thor.enrich(&table, &clean_docs);
    assert_eq!(outcome.result.entities, clean.entities);
}

#[test]
fn injected_panics_cost_one_document_not_the_run() {
    for site in ["segment", "extract"] {
        let _guard = scoped_failpoints(&format!("{site}:panic@1"));
        let (thor, table, docs) = setup(4096, 1);
        let outcome = thor
            .enrich_resilient(&table, &docs, &opts(RunMode::Lenient, None, false))
            .unwrap();
        assert_eq!(outcome.quarantine.len(), 1, "site {site}");
        let entry = &outcome.quarantine.entries()[0];
        assert_eq!(entry.kind, ErrorKind::Panic);
        assert!(entry.error.contains("injected panic"), "{}", entry.error);
        let clean = thor.enrich(&table, &docs[1..]);
        assert_eq!(outcome.result.entities, clean.entities);
    }
}

#[test]
fn strict_mode_aborts_on_injected_fault() {
    for spec in ["validate:err@2", "segment:panic@1", "extract:err@4"] {
        let _guard = scoped_failpoints(spec);
        let (thor, table, docs) = setup(4096, 1);
        let err = thor
            .enrich_resilient(&table, &docs, &opts(RunMode::Strict, None, false))
            .unwrap_err();
        assert!(
            err.kind() == ErrorKind::Injected || err.kind() == ErrorKind::Panic,
            "{spec}: {err}"
        );
    }
}

#[test]
fn run_level_slot_fill_fault_fails_both_modes() {
    for mode in [RunMode::Strict, RunMode::Lenient] {
        let _guard = scoped_failpoints("slot_fill:err@1");
        let (thor, table, docs) = setup(4096, 1);
        let err = thor
            .enrich_resilient(&table, &docs, &opts(mode, None, false))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Injected, "{mode:?}");
    }
}

#[test]
fn checkpoint_save_fault_is_skipped_in_lenient_mode() {
    let dir = temp_dir("skip");
    let _guard = scoped_failpoints("checkpoint_save:err@1");
    let (thor, table, docs) = setup(4096, 1);
    let outcome = thor
        .enrich_resilient(&table, &docs, &opts(RunMode::Lenient, Some(&dir), false))
        .unwrap();
    assert_eq!(outcome.checkpoints_skipped, 1);
    assert!(outcome.quarantine.is_empty());
    // Later saves succeeded (the failpoint fires once): full state on disk.
    let cp = thor_fault::Checkpoint::load(&dir).unwrap().unwrap();
    assert_eq!(cp.processed.len(), docs.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_save_fault_is_fatal_in_strict_mode() {
    let dir = temp_dir("strictsave");
    let _guard = scoped_failpoints("checkpoint_save:err@1");
    let (thor, table, docs) = setup(4096, 1);
    let err = thor
        .enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), false))
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Injected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_run_resumes_byte_identical() {
    for (cache, threads) in [(4096, 1), (0, 1), (4096, 4), (0, 4)] {
        let tag = format!("resume-{cache}-{threads}");

        // Reference: uninterrupted run.
        let clean = {
            let _guard = scoped_failpoints("");
            let (thor, table, docs) = setup(cache, threads);
            thor.enrich_resilient(&table, &docs, &opts(RunMode::Strict, None, false))
                .unwrap()
        };

        // Interrupted run: an injected fault kills it mid-corpus, after
        // some documents have been checkpointed.
        let dir = temp_dir(&tag);
        {
            let _guard = scoped_failpoints("extract:err@3");
            let (thor, table, docs) = setup(cache, threads);
            thor.enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), false))
                .expect_err("injected fault must abort the strict run");
        }
        let cp = thor_fault::Checkpoint::load(&dir).unwrap().unwrap();
        assert!(
            !cp.processed.is_empty() && cp.processed.len() < 6,
            "{tag}: interruption should leave a partial checkpoint, got {:?}",
            cp.processed
        );

        // Resume without faults: must reproduce the clean run exactly.
        let resumed = {
            let _guard = scoped_failpoints("");
            let (thor, table, docs) = setup(cache, threads);
            thor.enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), true))
                .unwrap()
        };
        assert_eq!(resumed.resumed_docs, cp.processed.len(), "{tag}");
        assert_eq!(
            to_csv(&resumed.result.table),
            to_csv(&clean.result.table),
            "{tag}: enriched CSV must be byte-identical"
        );
        assert_eq!(
            entities_tsv(&resumed.result.entities),
            entities_tsv(&clean.result.entities),
            "{tag}: entities TSV must be byte-identical"
        );
        assert_eq!(resumed.result.entities, clean.result.entities, "{tag}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_after_completion_is_a_fast_noop_with_identical_output() {
    let dir = temp_dir("noop");
    let _guard = scoped_failpoints("");
    let (thor, table, docs) = setup(4096, 1);
    let first = thor
        .enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), false))
        .unwrap();
    let second = thor
        .enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), true))
        .unwrap();
    assert_eq!(second.resumed_docs, docs.len());
    assert_eq!(second.processed_docs, 0);
    assert_eq!(to_csv(&second.result.table), to_csv(&first.result.table));
    assert_eq!(second.result.entities, first.result.entities);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_checkpoint_from_different_run() {
    let dir = temp_dir("fingerprint");
    let _guard = scoped_failpoints("");
    let (thor, table, docs) = setup(4096, 1);
    thor.enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), false))
        .unwrap();
    // Same checkpoint, different τ — a different run; refuse to mix.
    let other = Thor::new(thor.store().clone(), ThorConfig::with_tau(0.8));
    let err = other
        .enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), true))
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Checkpoint);
    assert!(err.to_string().contains("refusing to resume"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_metrics_span_the_whole_logical_run() {
    let dir = temp_dir("metrics");
    {
        let _guard = scoped_failpoints("extract:err@3");
        let metrics = PipelineMetrics::new();
        let (thor, table, docs) = setup(4096, 1);
        let thor = thor.with_metrics(metrics);
        thor.enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), false))
            .expect_err("injected fault");
    }
    let _guard = scoped_failpoints("");
    let metrics = PipelineMetrics::new();
    let (thor, table, docs) = setup(4096, 1);
    let thor = thor.with_metrics(metrics.clone());
    let outcome = thor
        .enrich_resilient(&table, &docs, &opts(RunMode::Strict, Some(&dir), true))
        .unwrap();
    // Counters absorbed from the checkpoint + this invocation's work
    // cover every document exactly once.
    assert_eq!(metrics.snapshot().count("docs") as usize, docs.len());
    assert_eq!(metrics.snapshot().count("quarantine.docs"), 0);
    assert!(outcome.resumed_docs > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
