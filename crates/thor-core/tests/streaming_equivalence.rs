//! Property: a streaming [`thor_core::EnrichmentSession`] fed the same
//! documents as a batch [`thor_core::Thor::enrich`] — in *any* order —
//! converges to the same slot-filled table and the same set of entity
//! predictions. Slot filling is a set-semantic idempotent insert and
//! entity keys carry the document id, so stream order must be
//! unobservable in the fixed point.

use proptest::prelude::*;
use thor_core::{Document, Thor, ThorConfig};
use thor_data::{Schema, Table};
use thor_embed::SemanticSpaceBuilder;

fn thor() -> Thor {
    let store = SemanticSpaceBuilder::new(32, 55)
        .spread(0.4)
        .topic("disease")
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words(
            "disease",
            ["tuberculosis", "acne", "neuroma", "acoustic", "malaria"],
        )
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "lungs", "skin", "ear", "liver",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "empyema",
                "deafness",
                "fever",
            ],
        )
        .generic_words([
            "slow-growing",
            "grows",
            "damage",
            "damages",
            "severe",
            "causes",
        ])
        .build()
        .into_store();
    Thor::new(store, ThorConfig::with_tau(0.6))
}

fn table() -> Table {
    let mut table = Table::new(Schema::new(
        ["Disease", "Anatomy", "Complication"],
        "Disease",
    ));
    table.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    table.fill_slot("Acne", "Anatomy", "skin");
    table.fill_slot("Acne", "Complication", "skin cancer");
    table.fill_slot("Malaria", "Complication", "fever");
    table.row_for_subject("Tuberculosis");
    table
}

const SENTENCES: [&str; 7] = [
    "Acoustic Neuroma is a slow-growing non-cancerous brain tumor.",
    "It may cause unsteadiness and deafness.",
    "Tuberculosis generally damages the lungs and may cause empyema.",
    "Malaria causes severe fever and may damage the liver.",
    "Acne damages the skin.",
    "The tumor grows on the nerve near the ear.",
    "Severe tuberculosis damages the lungs.",
];

/// Build documents from sentence-template picks: each inner vec of
/// indices becomes one document (unique id, 1–4 sentences).
fn docs_from(picks: &[Vec<usize>]) -> Vec<Document> {
    picks
        .iter()
        .enumerate()
        .map(|(i, sentence_ids)| {
            let text: Vec<&str> = sentence_ids
                .iter()
                .map(|s| SENTENCES[s % SENTENCES.len()])
                .collect();
            Document::new(format!("doc{i:02}"), text.join(" "))
        })
        .collect()
}

/// Canonical view of a table's contents: sorted (subject, column,
/// sorted values) triples — equal fingerprints mean equal tables.
fn fingerprint(table: &Table) -> Vec<(String, usize, Vec<String>)> {
    let mut out = Vec::new();
    for subject in table.subjects() {
        let row = table.get_row(subject).unwrap();
        for i in 0..row.arity() {
            let mut values: Vec<String> = row.cell(i).values().map(str::to_string).collect();
            values.sort_unstable();
            out.push((subject.to_string(), i, values));
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn shuffled_stream_converges_to_batch_table(
        picks in prop::collection::vec(prop::collection::vec(0usize..7, 1..5), 1..8),
        rotation in 0usize..8,
        reverse in (0u8..2).prop_map(|b| b == 1),
    ) {
        let thor = thor();
        let table = table();
        let docs = docs_from(&picks);
        let batch = thor.enrich(&table, &docs);

        // Re-order the stream: rotate, optionally reverse.
        let mut stream: Vec<&Document> = docs.iter().collect();
        let n = stream.len();
        stream.rotate_left(rotation % n);
        if reverse {
            stream.reverse();
        }

        let mut session = thor.session(&table);
        for doc in stream {
            session.process(doc);
        }

        // Same predictions (order-insensitive: keys carry the doc id)...
        let mut batch_keys: Vec<_> = batch.entities.iter().map(|e| e.key()).collect();
        let mut stream_keys: Vec<_> = session.entities().iter().map(|e| e.key()).collect();
        batch_keys.sort();
        stream_keys.sort();
        prop_assert_eq!(batch_keys, stream_keys);

        // ...and the identical slot-filled table.
        let streamed = session.finish();
        prop_assert_eq!(fingerprint(&batch.table), fingerprint(&streamed));
    }

    #[test]
    fn processing_twice_is_idempotent(
        picks in prop::collection::vec(prop::collection::vec(0usize..7, 1..4), 1..4),
    ) {
        let thor = thor();
        let table = table();
        let docs = docs_from(&picks);
        let mut session = thor.session(&table);
        for doc in &docs {
            session.process(doc);
        }
        let once = fingerprint(session.table());
        for doc in &docs {
            let inserted = session.process(doc);
            prop_assert_eq!(inserted, 0, "re-processing must not insert");
        }
        prop_assert_eq!(once, fingerprint(session.table()));
    }
}
