//! The phrase cache and the thread count are *performance* dials, not
//! semantic ones: for every τ of the paper's sweep, enriching the same
//! table from the same documents must produce a byte-identical CSV
//! serialization and identical entity predictions whether the cache is
//! at its default capacity or disabled (`cache_capacity = 0`), and
//! whether extraction runs on one thread or four sharing one matcher
//! (and therefore one cache).

use thor_core::{Document, ExtractedEntity, Thor, ThorConfig};
use thor_data::csv::to_csv;
use thor_data::{Schema, Table};
use thor_embed::{SemanticSpaceBuilder, VectorStore};

fn store() -> VectorStore {
    SemanticSpaceBuilder::new(32, 55)
        .spread(0.4)
        .topic("disease")
        .topic("anatomy")
        .correlated_topic("complication", "anatomy", 0.25)
        .words(
            "disease",
            ["tuberculosis", "acne", "neuroma", "acoustic", "malaria"],
        )
        .words(
            "anatomy",
            [
                "nervous", "system", "brain", "nerve", "lungs", "skin", "ear", "liver",
            ],
        )
        .words(
            "complication",
            [
                "cancer",
                "tumor",
                "unsteadiness",
                "empyema",
                "deafness",
                "fever",
            ],
        )
        .generic_words([
            "slow-growing",
            "grows",
            "damage",
            "damages",
            "severe",
            "causes",
        ])
        .build()
        .into_store()
}

fn table() -> Table {
    let mut table = Table::new(Schema::new(
        ["Disease", "Anatomy", "Complication"],
        "Disease",
    ));
    table.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
    table.fill_slot("Acne", "Anatomy", "skin");
    table.fill_slot("Acne", "Complication", "skin cancer");
    table.fill_slot("Malaria", "Complication", "fever");
    table.row_for_subject("Tuberculosis");
    table
}

fn docs() -> Vec<Document> {
    [
        "Acoustic Neuroma is a slow-growing non-cancerous brain tumor. \
         It may cause unsteadiness and deafness.",
        "Tuberculosis generally damages the lungs and may cause empyema. \
         Severe tuberculosis damages the lungs.",
        "Malaria causes severe fever and may damage the liver.",
        "Acne damages the skin. The tumor grows on the nerve near the ear.",
        // Heavy phrase repetition — the cached run answers most lookups
        // from the cache while the uncached run rescans every time.
        "Acne damages the skin. Acne damages the skin. Acne damages the skin.",
    ]
    .iter()
    .enumerate()
    .map(|(i, text)| Document::new(format!("doc{i:02}"), *text))
    .collect()
}

fn enrich(tau: f64, cache_capacity: usize, threads: usize) -> (String, Vec<ExtractedEntity>) {
    let mut config = ThorConfig::with_tau(tau);
    config.cache_capacity = cache_capacity;
    config.threads = threads;
    let thor = Thor::new(store(), config);
    let result = thor.enrich(&table(), &docs());
    (to_csv(&result.table), result.entities)
}

#[test]
fn enriched_table_is_byte_identical_across_cache_and_threads() {
    for tau10 in 5..=10 {
        let tau = tau10 as f64 / 10.0;
        let (reference_csv, reference_entities) = enrich(tau, 4096, 1);
        assert!(
            reference_csv.contains("Disease"),
            "reference CSV should serialize the schema"
        );
        for (cache_capacity, threads) in [(4096, 4), (0, 1), (0, 4)] {
            let (csv, entities) = enrich(tau, cache_capacity, threads);
            assert_eq!(
                reference_csv, csv,
                "CSV diverged at tau={tau}, cache={cache_capacity}, threads={threads}"
            );
            assert_eq!(
                reference_entities, entities,
                "entities diverged at tau={tau}, cache={cache_capacity}, threads={threads}"
            );
        }
    }
}

#[test]
fn session_reports_cache_traffic() {
    let thor = Thor::new(store(), ThorConfig::with_tau(0.6));
    let mut session = thor.session(&table());
    for doc in docs() {
        session.process(&doc);
    }
    let stats = session.cache_stats();
    assert!(
        stats.hits + stats.misses > 0,
        "enrichment should consult the phrase cache"
    );
    assert!(stats.hits > 0, "repeated phrases should hit the cache");
}
