//! The shared worker-pool executor behind every parallel serve path.
//!
//! Before this module, `pipeline.rs` and `resilient.rs` each spawned a
//! fresh `std::thread::scope` per call — thread creation and teardown
//! on every `extract`/`enrich_resilient`, twice over in a τ sweep. The
//! [`WorkerPool`] keeps one set of detached worker threads alive for
//! the process (grown on demand, never shrunk) and hands out *scoped
//! submission*: [`WorkerPool::scope`] lets callers spawn borrowing
//! closures exactly like `std::thread::scope`, blocking until every
//! spawned task has finished before it returns.
//!
//! Determinism is unaffected: tasks are self-contained work-queue
//! drainers over document indices, and the pipeline's final
//! `dedup_order` sort makes output independent of which worker ran
//! which document. Panics inside a task are caught, the scope drains,
//! and the first panic is resumed on the caller thread — the same
//! observable behaviour as a panicking `std::thread::scope` handle.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    workers: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued.
    available: Condvar,
}

/// A persistent pool of detached worker threads with scoped submission.
///
/// One process-wide instance lives behind [`WorkerPool::global`];
/// independent pools can be created for tests. Workers block on the
/// queue when idle and live until process exit.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().unwrap();
        f.debug_struct("WorkerPool")
            .field("workers", &state.workers)
            .field("queued", &state.queue.len())
            .finish()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; workers are spawned lazily by
    /// [`WorkerPool::scope`] / [`WorkerPool::ensure_workers`].
    pub fn new() -> Self {
        Self {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    queue: VecDeque::new(),
                    workers: 0,
                }),
                available: Condvar::new(),
            }),
        }
    }

    /// The process-wide shared pool every pipeline serve path submits
    /// to. Worker threads are spawned on first use and reused by every
    /// subsequent call, τ value, and engine.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Current number of live worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.state.lock().unwrap().workers
    }

    /// Grow the pool to at least `n` workers (never shrinks).
    pub fn ensure_workers(&self, n: usize) {
        let mut state = self.shared.state.lock().unwrap();
        while state.workers < n {
            state.workers += 1;
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("thor-pool-{}", state.workers))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
    }

    fn submit(&self, job: Job) {
        let mut state = self.shared.state.lock().unwrap();
        state.queue.push_back(job);
        drop(state);
        self.shared.available.notify_one();
    }

    /// Run `f` with a scoped spawner backed by the pool: closures
    /// spawned through the [`PoolScope`] may borrow from the enclosing
    /// environment, and `scope` does not return until every one of them
    /// has finished (the completion barrier that makes the borrows
    /// sound). At least `workers` pool threads are available before `f`
    /// runs.
    ///
    /// If a task panics, the panic is resumed on this thread after the
    /// barrier; if `f` itself panics, the barrier still drains before
    /// the panic propagates.
    pub fn scope<'env, R>(&self, workers: usize, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        self.ensure_workers(workers.max(1));
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = PoolScope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Completion barrier: every spawned task must finish before any
        // borrow the tasks hold can go out of scope.
        let mut pending = state.pending.lock().unwrap();
        while *pending > 0 {
            pending = state.done.wait(pending).unwrap();
        }
        drop(pending);
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                state = shared.available.wait(state).unwrap();
            }
        };
        job();
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    /// Signalled when `pending` drops to zero.
    done: Condvar,
    /// First panic payload from any task in this scope.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Scoped task spawner handed to the closure of [`WorkerPool::scope`].
///
/// `'env` is invariant and covers every borrow a spawned closure may
/// capture; the scope's completion barrier guarantees those borrows
/// outlive the tasks.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Submit a task to the pool. The closure may borrow from the
    /// environment of the enclosing [`WorkerPool::scope`] call; it runs
    /// on some pool worker, and the scope will not return before it
    /// completes. Panics are captured and resumed by the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the completion barrier in `WorkerPool::scope` blocks
        // until `pending == 0` — even when the scope closure panics —
        // so this task, and every borrow with lifetime 'env it holds,
        // is finished before 'env can end. The lifetime is erased only
        // for transport through the 'static job queue.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.submit(Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_waits_for_all_tasks() {
        let pool = WorkerPool::new();
        let counter = AtomicUsize::new(0);
        pool.scope(4, |scope| {
            for _ in 0..64 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn tasks_can_borrow_the_environment() {
        let pool = WorkerPool::new();
        let data: Vec<usize> = (0..100).collect();
        let next = AtomicUsize::new(0);
        let total = Mutex::new(0usize);
        pool.scope(3, |scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut local = 0;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(v) = data.get(i) else { break };
                        local += v;
                    }
                    *total.lock().unwrap() += local;
                });
            }
        });
        assert_eq!(total.into_inner().unwrap(), 4950);
    }

    #[test]
    fn pool_reuses_workers_across_scopes() {
        let pool = WorkerPool::new();
        pool.scope(2, |scope| scope.spawn(|| {}));
        let after_first = pool.worker_count();
        pool.scope(2, |scope| scope.spawn(|| {}));
        assert_eq!(pool.worker_count(), after_first, "no new threads spawned");
        pool.scope(4, |scope| scope.spawn(|| {}));
        assert!(pool.worker_count() >= 4, "pool grows on demand");
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = WorkerPool::new();
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(2, |scope| {
                scope.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    scope.spawn(|| {
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The barrier drained every other task before unwinding.
        assert_eq!(completed.load(Ordering::Relaxed), 8);
        // The pool survives a panicked scope.
        let ok = AtomicUsize::new(0);
        pool.scope(2, |scope| {
            scope.spawn(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_scopes_share_one_pool() {
        let pool = Arc::new(WorkerPool::new());
        pool.ensure_workers(4);
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    pool.scope(2, |scope| {
                        for _ in 0..16 {
                            let total = Arc::clone(&total);
                            scope.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
    }
}
