//! Phase ① — document segmentation.
//!
//! "The goal of segmentation is to split the given document into
//! sentences and associate each sentence with an instance of the subject
//! concept (or with none if the sentence is not related)." Mentions of a
//! subject instance anchor a sentence; because documents overwhelmingly
//! talk about one subject at a time, subsequent sentences inherit the
//! last anchor (carry-forward); when nothing anchors a sentence we fall
//! back to semantic matching against the subject instances.

use thor_match::SimilarityMatcher;
use thor_obs::PipelineMetrics;
use thor_text::{normalize_phrase, split_sentences, Sentence};

use crate::config::SegmentationMode;
use crate::document::Document;

/// A sentence attributed to a subject instance.
#[derive(Debug, Clone)]
pub struct SegmentedSentence {
    /// The owning subject instance `c*` (table display form).
    pub subject: String,
    /// The sentence.
    pub sentence: Sentence,
    /// Index of the sentence within its document.
    pub index: usize,
}

/// Find the subject instance mentioned in `sentence`, if any. Mentions
/// are whole normalized-substring occurrences; the *longest* mentioned
/// subject wins (so `acoustic neuroma` beats a hypothetical `neuroma`).
fn mentioned_subject<'a>(sentence: &str, subjects: &'a [(String, String)]) -> Option<&'a str> {
    let norm = format!(" {} ", normalize_phrase(sentence));
    subjects
        .iter()
        .filter(|(_, key)| norm.contains(&format!(" {key} ")))
        .max_by_key(|(_, key)| key.len())
        .map(|(display, _)| display.as_str())
}

/// Segment `doc` into `(subject, sentence)` pairs — `SEGMENT(D, R.C*)`
/// of Algorithm 1.
///
/// `subjects` are the table's subject instances (display form);
/// `matcher` powers the semantic fallback. Sentences that cannot be
/// attributed to any subject are dropped.
pub fn segment(
    doc: &Document,
    subjects: &[String],
    matcher: &SimilarityMatcher,
    mode: SegmentationMode,
) -> Vec<SegmentedSentence> {
    segment_impl(doc, subjects, matcher, mode, None)
}

/// [`segment`] with observability: the whole call is covered by a
/// `stage.segment` span and each attributed sentence increments the
/// `segments` counter.
pub fn segment_metered(
    doc: &Document,
    subjects: &[String],
    matcher: &SimilarityMatcher,
    mode: SegmentationMode,
    metrics: &PipelineMetrics,
) -> Vec<SegmentedSentence> {
    let _span = metrics.segment.start();
    segment_impl(doc, subjects, matcher, mode, Some(metrics))
}

fn segment_impl(
    doc: &Document,
    subjects: &[String],
    matcher: &SimilarityMatcher,
    mode: SegmentationMode,
    metrics: Option<&PipelineMetrics>,
) -> Vec<SegmentedSentence> {
    let keyed: Vec<(String, String)> = subjects
        .iter()
        .map(|s| (s.clone(), normalize_phrase(s)))
        .collect();
    let mut out = Vec::new();
    let mut current: Option<String> = None;

    for (index, sentence) in split_sentences(&doc.text).into_iter().enumerate() {
        let mention = if mode == SegmentationMode::SemanticOnly {
            None
        } else {
            mentioned_subject(&sentence.text, &keyed).map(str::to_string)
        };

        let subject = match mention {
            Some(s) => {
                current = Some(s.clone());
                Some(s)
            }
            None => match mode {
                SegmentationMode::MentionCarryForward => match &current {
                    Some(s) => Some(s.clone()),
                    None => semantic_subject(&sentence.text, &keyed, matcher),
                },
                SegmentationMode::MentionOnly => None,
                SegmentationMode::SemanticOnly => semantic_subject(&sentence.text, &keyed, matcher),
            },
        };

        if let Some(subject) = subject {
            if let Some(m) = metrics {
                m.segments.inc();
            }
            out.push(SegmentedSentence {
                subject,
                sentence,
                index,
            });
        }
    }
    out
}

/// Semantic fallback: the subject instance most similar to the sentence
/// (mean word vectors), if the similarity is meaningful at all.
/// Out-of-vocabulary pairs carry no evidence and are skipped outright
/// (`try_similarity`) rather than scored as 0.0.
fn semantic_subject(
    sentence: &str,
    subjects: &[(String, String)],
    matcher: &SimilarityMatcher,
) -> Option<String> {
    const MIN_SIM: f64 = 0.35;
    subjects
        .iter()
        .filter_map(|(display, key)| {
            matcher
                .try_similarity(sentence, key)
                .map(|sim| (display, sim))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .filter(|(_, sim)| *sim >= MIN_SIM)
        .map(|(display, _)| display.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_embed::SemanticSpaceBuilder;
    use thor_match::{MatcherConfig, SimilarityMatcher};

    fn matcher() -> SimilarityMatcher {
        let store = SemanticSpaceBuilder::new(16, 2)
            .topic("disease")
            .words("disease", ["tuberculosis", "neuroma", "acoustic"])
            .generic_words(["tumor", "grows", "lungs"])
            .build()
            .into_store();
        let concepts = vec![(
            "Disease".to_string(),
            vec!["Tuberculosis".to_string(), "Acoustic Neuroma".to_string()],
        )];
        SimilarityMatcher::fine_tune(&concepts, store, MatcherConfig::with_tau(0.8))
    }

    fn subjects() -> Vec<String> {
        vec!["Acoustic Neuroma".to_string(), "Tuberculosis".to_string()]
    }

    #[test]
    fn fig1_document_segmentation() {
        // Three sentences: first two about Acoustic Neuroma (second via
        // carry-forward), third about Tuberculosis.
        let doc = Document::new(
            "d",
            "Acoustic Neuroma is a slow-growing tumor. It develops on the nerve. \
             Tuberculosis generally damages the lungs.",
        );
        let segs = segment(
            &doc,
            &subjects(),
            &matcher(),
            SegmentationMode::MentionCarryForward,
        );
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].subject, "Acoustic Neuroma");
        assert_eq!(segs[1].subject, "Acoustic Neuroma");
        assert_eq!(segs[2].subject, "Tuberculosis");
        assert_eq!(segs[2].index, 2);
    }

    #[test]
    fn mention_only_drops_unanchored() {
        let doc = Document::new("d", "Acoustic Neuroma is a tumor. It grows slowly.");
        let segs = segment(&doc, &subjects(), &matcher(), SegmentationMode::MentionOnly);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn longest_subject_mention_wins() {
        let subjects = vec!["Neuroma".to_string(), "Acoustic Neuroma".to_string()];
        let doc = Document::new("d", "Acoustic Neuroma is a tumor.");
        let segs = segment(&doc, &subjects, &matcher(), SegmentationMode::MentionOnly);
        assert_eq!(segs[0].subject, "Acoustic Neuroma");
    }

    #[test]
    fn case_insensitive_mentions() {
        let doc = Document::new("d", "TUBERCULOSIS damages the lungs.");
        let segs = segment(&doc, &subjects(), &matcher(), SegmentationMode::MentionOnly);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].subject, "Tuberculosis");
    }

    #[test]
    fn empty_document() {
        let doc = Document::new("d", "");
        assert!(segment(&doc, &subjects(), &matcher(), SegmentationMode::default()).is_empty());
    }

    #[test]
    fn semantic_fallback_attributes_related_sentence() {
        // No exact mention, but "tuberculosis" appears as a plain word
        // variant the semantic matcher can resolve ("tuberculosis" is in
        // the vocabulary and equals the subject's embedding).
        let doc = Document::new("d", "Severe tuberculosis cases need treatment.");
        // Note: mention matching would also hit here; force semantic-only.
        let segs = segment(
            &doc,
            &subjects(),
            &matcher(),
            SegmentationMode::SemanticOnly,
        );
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].subject, "Tuberculosis");
    }
}
