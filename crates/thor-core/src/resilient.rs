//! The fault-tolerant run layer: per-document isolation, quarantine,
//! and checkpointed, resumable enrichment.
//!
//! [`Thor::enrich_resilient`] is the production entry point for messy
//! corpora: every document passes admission control
//! ([`thor_fault::validate_text`]) and runs its segment/extract stages
//! under `catch_unwind`, so a malformed or even panic-inducing document
//! costs *one document*, not the run. Failures land in a
//! [`QuarantineReport`] (doc id, stage, error, byte offset) and bump the
//! `quarantine.docs` counter; [`RunMode::Strict`] instead aborts on the
//! first failure (after a best-effort checkpoint save).
//!
//! With a checkpoint directory configured, the processed-document set,
//! all partial slot-fills (extracted entities, scores as exact bit
//! patterns), the quarantine ledger, and a metrics snapshot are
//! persisted atomically every `checkpoint_interval` documents. A killed
//! run resumed with [`ResilientOptions::resume`] skips completed
//! documents and — because final deduplication imposes a total order —
//! produces **byte-identical** output to an uninterrupted run, for any
//! thread count and cache configuration.
//!
//! The run itself is hosted on a [`PreparedEngine`]
//! ([`PreparedEngine::enrich_resilient`]): Preparation happens once in
//! [`Thor::prepare`], parallel workers come from the shared
//! [`crate::WorkerPool`], and the same engine can serve resilient and
//! plain calls alike.
//!
//! Fault-injection seams (`validate`, `segment`, `extract`, `slot_fill`,
//! plus `checkpoint_save`/`atomic_write` inside thor-fault) are compiled
//! in via [`thor_fault::fail_point`]; see `thor_fault::failpoint::SITES`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use thor_data::Table;
use thor_fault::{
    fail_point, fingerprint, validate_text, CancelToken, Checkpoint, DocumentPolicy, EntityRecord,
    QuarantineEntry, QuarantineReport, ThorError, ThorResult,
};
use thor_match::SimilarityMatcher;
use thor_obs::PipelineMetrics;
use thor_text::ScoreScratch;

use crate::config::ThorConfig;
use crate::document::Document;
use crate::engine::PreparedEngine;
use crate::entity::ExtractedEntity;
use crate::extract::extract_entities_with;
use crate::pipeline::{dedup_entities, EnrichmentResult, Thor};
use crate::pool::WorkerPool;
use crate::segment::segment_metered;
use crate::slotfill::slot_fill_metered;

/// Failure policy of a resilient run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// Abort on the first failed document (after a best-effort
    /// checkpoint save). The safe default: nothing is silently dropped.
    #[default]
    Strict,
    /// Quarantine failed documents and keep going — one bad document
    /// costs one document.
    Lenient,
}

/// Options for [`Thor::enrich_resilient`].
#[derive(Debug, Clone)]
pub struct ResilientOptions {
    /// Strict (fail fast) or lenient (quarantine and continue).
    pub mode: RunMode,
    /// Directory for checkpoint state; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Completed documents between checkpoint saves.
    pub checkpoint_interval: usize,
    /// Resume from the checkpoint in `checkpoint_dir` if one exists
    /// (refused when its fingerprint does not match this run's inputs).
    pub resume: bool,
    /// Admission-control policy applied to every document.
    pub policy: DocumentPolicy,
    /// Cooperative cancellation, checked between pipeline stages. An
    /// expired token aborts the run with
    /// [`thor_fault::ErrorKind::Deadline`] in *both* modes — a dead
    /// request's remaining documents are not quarantined as malformed.
    /// The default token never fires.
    pub cancel: CancelToken,
}

impl Default for ResilientOptions {
    fn default() -> Self {
        Self {
            mode: RunMode::Strict,
            checkpoint_dir: None,
            checkpoint_interval: 4,
            resume: false,
            policy: DocumentPolicy::default(),
            cancel: CancelToken::none(),
        }
    }
}

/// Outcome of a resilient run.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The ordinary enrichment result (enriched table, deduplicated
    /// entities, slot stats, timings).
    pub result: EnrichmentResult,
    /// Everything that was quarantined, in processing order.
    pub quarantine: QuarantineReport,
    /// Documents skipped because a resumed checkpoint had already
    /// completed them.
    pub resumed_docs: usize,
    /// Documents processed (or quarantined) by *this* invocation.
    pub processed_docs: usize,
    /// Checkpoint saves skipped after non-fatal save failures (lenient
    /// mode only).
    pub checkpoints_skipped: usize,
}

/// What happened to one document.
enum DocStatus {
    Done(Vec<ExtractedEntity>),
    Quarantined(QuarantineEntry),
    /// The run's cancellation token fired before or between this
    /// document's stages — a run-level abort, not a document failure.
    Cancelled(ThorError),
}

fn to_record(e: &ExtractedEntity) -> EntityRecord {
    EntityRecord {
        doc_id: e.doc_id.clone(),
        subject: e.subject.clone(),
        concept: e.concept.clone(),
        phrase: e.phrase.clone(),
        score_bits: e.score.to_bits(),
        matched_instance: e.matched_instance.clone(),
        sentence_index: e.sentence_index,
    }
}

fn from_record(r: &EntityRecord) -> ExtractedEntity {
    ExtractedEntity {
        subject: r.subject.clone(),
        concept: r.concept.clone(),
        phrase: r.phrase.clone(),
        score: f64::from_bits(r.score_bits),
        matched_instance: r.matched_instance.clone(),
        doc_id: r.doc_id.clone(),
        sentence_index: r.sentence_index,
    }
}

/// Mutable run bookkeeping: the live checkpoint plus save cadence.
struct RunState {
    checkpoint: Checkpoint,
    dir: Option<PathBuf>,
    interval: usize,
    since_save: usize,
    checkpoints_skipped: usize,
    mode: RunMode,
}

impl RunState {
    /// Record one finished document. A quarantined document in strict
    /// mode becomes the run's error — it is deliberately *not* marked
    /// processed (strict drops nothing), so a resumed run retries it
    /// after a best-effort save of the completed prefix.
    fn record(
        &mut self,
        doc_id: String,
        status: DocStatus,
        run: &PipelineMetrics,
    ) -> ThorResult<()> {
        match status {
            DocStatus::Done(entities) => {
                self.checkpoint.processed.insert(doc_id);
                self.checkpoint
                    .entities
                    .extend(entities.iter().map(to_record));
            }
            DocStatus::Quarantined(entry) if self.mode == RunMode::Strict => {
                let _ = self.save(run);
                return Err(ThorError::new(
                    entry.kind,
                    format!(
                        "document `{}` failed at {}: {}",
                        entry.doc_id, entry.stage, entry.error
                    ),
                ));
            }
            DocStatus::Quarantined(entry) => {
                run.quarantine_docs.inc();
                self.checkpoint.processed.insert(doc_id);
                self.checkpoint.quarantine.push(entry);
            }
            DocStatus::Cancelled(err) => {
                // Deadline aborts regardless of mode, after a
                // best-effort save so a checkpointed run resumes from
                // the completed prefix. The cancelled document is not
                // marked processed — it was never attempted.
                let _ = self.save(run);
                return Err(err);
            }
        }
        self.since_save += 1;
        if self.since_save >= self.interval {
            self.maybe_save(run)?;
        }
        Ok(())
    }

    /// Unconditional save (no-op without a checkpoint dir).
    fn save(&mut self, run: &PipelineMetrics) -> ThorResult<()> {
        let Some(dir) = &self.dir else {
            self.since_save = 0;
            return Ok(());
        };
        self.checkpoint.metrics_json = Some(run.render_json());
        let result = self.checkpoint.save(dir);
        if result.is_ok() {
            self.since_save = 0;
        }
        result
    }

    /// Save, downgrading failures to a skip in lenient mode.
    fn maybe_save(&mut self, run: &PipelineMetrics) -> ThorResult<()> {
        match self.save(run) {
            Ok(()) => Ok(()),
            Err(e) => match self.mode {
                RunMode::Strict => Err(e.context("checkpoint save")),
                RunMode::Lenient => {
                    self.checkpoints_skipped += 1;
                    // Try again a full interval from now.
                    self.since_save = 0;
                    Ok(())
                }
            },
        }
    }
}

/// Process one document through admission control, segmentation, and
/// extraction, isolating panics to the document.
#[allow(clippy::too_many_arguments)] // the run's shared context, spelled out
fn process_doc(
    config: &ThorConfig,
    matcher: &SimilarityMatcher,
    subjects: &[String],
    doc: &Document,
    policy: &DocumentPolicy,
    cancel: &CancelToken,
    run: &PipelineMetrics,
    scratch: &mut ScoreScratch,
) -> DocStatus {
    let quarantined = |stage: &str, err: ThorError| {
        DocStatus::Quarantined(QuarantineEntry::from_error(&doc.id, stage, &err))
    };

    if let Err(e) = cancel.check("validate") {
        return DocStatus::Cancelled(e);
    }
    if let Err(e) = fail_point("validate").and_then(|()| validate_text(&doc.id, &doc.text, policy))
    {
        return quarantined("validate", e);
    }

    if let Err(e) = cancel.check("segment") {
        return DocStatus::Cancelled(e);
    }
    let segments = match catch_unwind(AssertUnwindSafe(|| {
        fail_point("segment")?;
        Ok(segment_metered(
            doc,
            subjects,
            matcher,
            config.segmentation,
            run,
        ))
    })) {
        Ok(Ok(segments)) => segments,
        Ok(Err(e)) => return quarantined("segment", e),
        Err(payload) => {
            return quarantined("segment", ThorError::panic("segment", payload.as_ref()))
        }
    };

    if let Err(e) = cancel.check("extract") {
        return DocStatus::Cancelled(e);
    }
    match catch_unwind(AssertUnwindSafe(|| {
        fail_point("extract")?;
        Ok(extract_entities_with(
            &segments,
            matcher,
            config,
            &doc.id,
            Some(run),
            scratch,
        ))
    })) {
        Ok(Ok(entities)) => {
            run.docs.inc();
            DocStatus::Done(entities)
        }
        Ok(Err(e)) => quarantined("extract", e),
        Err(payload) => quarantined("extract", ThorError::panic("extract", payload.as_ref())),
    }
}

/// Fingerprint tying a checkpoint to the inputs and configuration that
/// produced it: any difference that could change extraction output
/// makes resume refuse the stale state. (Distinct from the engine
/// artifact's fingerprint, which covers the store but not the corpus.)
pub(crate) fn run_fingerprint<'a>(
    config: &ThorConfig,
    table: &Table,
    doc_ids: impl IntoIterator<Item = &'a str>,
) -> String {
    let c = config;
    let mut parts: Vec<String> = vec![
        format!("tau={:016x}", c.tau.to_bits()),
        format!("subphrase={}", c.max_subphrase_words),
        format!("expansion={}", c.max_expansion),
        format!("gate={:?}", c.context_gate.map(f64::to_bits)),
        format!("seg={:?}", c.segmentation),
        format!("np={}", c.np_chunking),
        format!(
            "weights={:016x},{:016x},{:016x}",
            c.weights.semantic.to_bits(),
            c.weights.word.to_bits(),
            c.weights.char.to_bits()
        ),
    ];
    for concept in table.schema().concepts() {
        parts.push(format!("concept={}", concept.name()));
        for value in table.column_values(concept.name()) {
            parts.push(value);
        }
    }
    for id in doc_ids {
        parts.push(format!("doc={id}"));
    }
    fingerprint(parts)
}

impl Thor {
    /// Run the full pipeline with per-document fault isolation,
    /// quarantine, and (optionally) checkpoint/resume. See the module
    /// docs for semantics; [`Thor::enrich`] remains the fast path for
    /// trusted input.
    ///
    /// This is a prepare-then-serve wrapper over
    /// [`PreparedEngine::enrich_resilient`] — hold the engine yourself
    /// to amortize Preparation across runs.
    pub fn enrich_resilient(
        &self,
        table: &Table,
        docs: &[Document],
        opts: &ResilientOptions,
    ) -> ThorResult<ResilientOutcome> {
        self.prepare(table).enrich_resilient(docs, opts)
    }
}

impl PreparedEngine {
    /// Resilient enrichment served from this engine: admission control,
    /// per-document panic isolation, quarantine, checkpoint/resume —
    /// without re-running Preparation. Workers come from the shared
    /// [`WorkerPool`].
    pub fn enrich_resilient(
        &self,
        docs: &[Document],
        opts: &ResilientOptions,
    ) -> ThorResult<ResilientOutcome> {
        // Resume correctness keys the processed-set on document ids.
        let mut seen = std::collections::HashSet::new();
        for d in docs {
            if !seen.insert(&d.id) {
                return Err(ThorError::config(format!(
                    "duplicate document id `{}` (resilient runs require unique ids)",
                    d.id
                )));
            }
        }

        let run = self.run_metrics();
        let run_fp = run_fingerprint(
            self.config(),
            self.table(),
            docs.iter().map(|d| d.id.as_str()),
        );
        let mut state = self.open_run_state(opts, run_fp, &run)?;

        let pending: Vec<&Document> = docs
            .iter()
            .filter(|d| !state.checkpoint.processed.contains(&d.id))
            .collect();
        let resumed_docs = docs.len() - pending.len();
        let processed_docs = pending.len();

        let inference_t0 = std::time::Instant::now();
        self.process_pending(&pending, opts, &run, &mut state)?;
        self.finalize_run(
            state,
            &opts.cancel,
            &run,
            resumed_docs,
            processed_docs,
            inference_t0,
        )
    }

    /// Out-of-core resilient enrichment: documents arrive from a lazy
    /// reader, at most `chunk_size` bodies are resident at a time, and
    /// each chunk runs through the same [`WorkerPool`] scheduling as the
    /// batch path. Output is **byte-identical** to
    /// [`enrich_resilient`](Self::enrich_resilient) over the same
    /// corpus, for any chunk size, thread count, and cache setting:
    /// entities accumulate in checkpoint order and final deduplication
    /// imposes a total order, so the chunk boundaries are unobservable.
    ///
    /// `doc_ids` is the complete, ordered id list (known before any
    /// body is read — e.g. file stems from
    /// `thor_data::CorpusDir::discover`); the checkpoint fingerprint is
    /// computed from it, so a streaming run resumes a batch run's
    /// checkpoint and vice versa. `docs` must yield one `(id, body)`
    /// pair per entry of `doc_ids`, in order — a mismatch aborts the
    /// run. A failed read (`Err` body) is a strict-mode error; in
    /// lenient mode it is quarantined at stage `read_doc` and the run
    /// continues.
    pub fn enrich_resilient_stream<I>(
        &self,
        doc_ids: &[String],
        docs: I,
        opts: &ResilientOptions,
        chunk_size: usize,
    ) -> ThorResult<ResilientOutcome>
    where
        I: IntoIterator<Item = (String, ThorResult<Document>)>,
    {
        let mut seen = std::collections::HashSet::new();
        for id in doc_ids {
            if !seen.insert(id) {
                return Err(ThorError::config(format!(
                    "duplicate document id `{id}` (resilient runs require unique ids)"
                )));
            }
        }

        let run = self.run_metrics();
        let run_fp = run_fingerprint(
            self.config(),
            self.table(),
            doc_ids.iter().map(String::as_str),
        );
        let mut state = self.open_run_state(opts, run_fp, &run)?;

        let chunk_size = chunk_size.max(1);
        let mut resumed_docs = 0usize;
        let mut processed_docs = 0usize;
        let inference_t0 = std::time::Instant::now();
        let mut expected = doc_ids.iter();
        let mut docs = docs.into_iter();
        let mut stream_len = 0usize;
        loop {
            // Fill one bounded chunk, skipping checkpoint-completed ids
            // without materializing their bodies.
            let mut chunk: Vec<Document> = Vec::with_capacity(chunk_size);
            for (id, body) in docs.by_ref() {
                stream_len += 1;
                match expected.next() {
                    Some(want) if *want == id => {}
                    Some(want) => {
                        return Err(ThorError::config(format!(
                            "document stream out of order: got `{id}`, expected `{want}`"
                        )))
                    }
                    None => {
                        return Err(ThorError::config(format!(
                            "document stream yielded `{id}` beyond the {} declared ids",
                            doc_ids.len()
                        )))
                    }
                }
                if state.checkpoint.processed.contains(&id) {
                    resumed_docs += 1;
                    continue;
                }
                match body {
                    Ok(doc) => {
                        if doc.id != id {
                            return Err(ThorError::config(format!(
                                "document stream yielded body `{}` under id `{id}`",
                                doc.id
                            )));
                        }
                        chunk.push(doc);
                        if chunk.len() == chunk_size {
                            break;
                        }
                    }
                    Err(e) if state.mode == RunMode::Strict => {
                        // Same contract as a quarantined document in
                        // strict mode: save the completed prefix, fail.
                        let _ = state.save(&run);
                        return Err(e.context(format!("reading document `{id}`")));
                    }
                    Err(e) => {
                        processed_docs += 1;
                        state.record(
                            id.clone(),
                            DocStatus::Quarantined(QuarantineEntry::from_error(
                                &id, "read_doc", &e,
                            )),
                            &run,
                        )?;
                    }
                }
            }
            if chunk.is_empty() {
                break;
            }
            processed_docs += chunk.len();
            let pending: Vec<&Document> = chunk.iter().collect();
            self.process_pending(&pending, opts, &run, &mut state)?;
        }
        if stream_len != doc_ids.len() {
            return Err(ThorError::config(format!(
                "document stream ended after {stream_len} of {} declared ids",
                doc_ids.len()
            )));
        }
        self.finalize_run(
            state,
            &opts.cancel,
            &run,
            resumed_docs,
            processed_docs,
            inference_t0,
        )
    }

    /// Build this run's [`RunState`], absorbing a resumable checkpoint
    /// (and its metrics snapshot) when `opts.resume` asks for it.
    fn open_run_state(
        &self,
        opts: &ResilientOptions,
        run_fp: String,
        run: &PipelineMetrics,
    ) -> ThorResult<RunState> {
        let mut state = RunState {
            checkpoint: Checkpoint::new(run_fp.clone()),
            dir: opts.checkpoint_dir.clone(),
            interval: opts.checkpoint_interval.max(1),
            since_save: 0,
            checkpoints_skipped: 0,
            mode: opts.mode,
        };
        if opts.resume {
            let dir = opts
                .checkpoint_dir
                .as_deref()
                .ok_or_else(|| ThorError::config("--resume requires a checkpoint directory"))?;
            if let Some(previous) = Checkpoint::load(dir)? {
                if previous.fingerprint != run_fp {
                    return Err(ThorError::checkpoint(format!(
                        "checkpoint in {} was written by a different run \
                         (fingerprint {} != {run_fp}); refusing to resume",
                        dir.display(),
                        previous.fingerprint
                    )));
                }
                if let Some(json) = &previous.metrics_json {
                    match thor_obs::MetricsSnapshot::from_json_str(json) {
                        Ok(snapshot) => run.absorb(&snapshot),
                        Err(e) => {
                            return Err(ThorError::checkpoint(format!(
                                "checkpoint metrics snapshot unreadable: {e}"
                            )))
                        }
                    }
                }
                state.checkpoint = previous;
                state.checkpoint.fingerprint = run_fp;
                state.checkpoint.metrics_json = None;
            }
        }
        Ok(state)
    }

    /// Run `pending` through admission/segment/extract on the shared
    /// [`WorkerPool`], recording every outcome into `state`. Used once
    /// by the batch path and once per chunk by the streaming path.
    fn process_pending(
        &self,
        pending: &[&Document],
        opts: &ResilientOptions,
        run: &PipelineMetrics,
        state: &mut RunState,
    ) -> ThorResult<()> {
        let config = self.config();
        let matcher = self.matcher();
        let subjects = self.subjects();
        let workers = config.threads.min(pending.len().max(1));
        if workers <= 1 {
            let mut scratch = ScoreScratch::new();
            for doc in pending.iter().copied() {
                let status = process_doc(
                    config,
                    matcher,
                    subjects,
                    doc,
                    &opts.policy,
                    &opts.cancel,
                    run,
                    &mut scratch,
                );
                state.record(doc.id.clone(), status, run)?;
            }
            Ok(())
        } else {
            let next = AtomicUsize::new(0);
            let cancel = AtomicBool::new(false);
            WorkerPool::global().scope(workers, |scope| {
                let (tx, rx) = mpsc::channel::<(String, DocStatus)>();
                for _ in 0..workers {
                    let tx = tx.clone();
                    let (next, cancel) = (&next, &cancel);
                    let policy = &opts.policy;
                    let token = &opts.cancel;
                    scope.spawn(move || {
                        let mut scratch = ScoreScratch::new();
                        loop {
                            if cancel.load(Ordering::Relaxed) || token.is_cancelled() {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(doc) = pending.get(i).copied() else {
                                break;
                            };
                            let status = process_doc(
                                config,
                                matcher,
                                subjects,
                                doc,
                                policy,
                                token,
                                run,
                                &mut scratch,
                            );
                            if tx.send((doc.id.clone(), status)).is_err() {
                                break;
                            }
                        }
                    });
                }
                // The consumer runs on this thread inside the scope: the
                // senders drop as workers finish, ending the loop.
                drop(tx);
                let mut first_err = None;
                for (doc_id, status) in rx {
                    if let Err(e) = state.record(doc_id, status, run) {
                        cancel.store(true, Ordering::Relaxed);
                        first_err.get_or_insert(e);
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            })
        }
    }

    /// Final checkpoint save, deduplication, and slot fill — shared by
    /// the batch and streaming paths, so their outputs are identical by
    /// construction.
    fn finalize_run(
        &self,
        mut state: RunState,
        cancel: &CancelToken,
        run: &PipelineMetrics,
        resumed_docs: usize,
        processed_docs: usize,
        inference_t0: std::time::Instant,
    ) -> ThorResult<ResilientOutcome> {
        // Final checkpoint so a crash after this point resumes instantly.
        state.maybe_save(run)?;

        // Workers wind down quietly when the token fires mid-run; this
        // seam turns that into the run-level deadline error (and stops
        // an expired request from paying for slot fill).
        cancel.check("slot_fill")?;
        fail_point("slot_fill")?;
        let mut entities: Vec<ExtractedEntity> =
            state.checkpoint.entities.iter().map(from_record).collect();
        dedup_entities(&mut entities);
        let mut enriched = self.table().clone();
        let slot_stats = slot_fill_metered(&mut enriched, &entities, run);
        let inference_time = inference_t0.elapsed();
        run.inference.record(inference_time);

        Ok(ResilientOutcome {
            result: EnrichmentResult {
                table: enriched,
                entities,
                slot_stats,
                prepare_time: self.prepare_time(),
                inference_time,
            },
            quarantine: state.checkpoint.quarantine.clone(),
            resumed_docs,
            processed_docs,
            checkpoints_skipped: state.checkpoints_skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThorConfig;
    use thor_data::{Schema, Table};
    use thor_embed::SemanticSpaceBuilder;

    fn setup() -> (Thor, Table, Vec<Document>) {
        let store = SemanticSpaceBuilder::new(16, 7)
            .topic("anatomy")
            .words("anatomy", ["lungs", "brain", "skin", "nerve"])
            .generic_words(["damages", "grows"])
            .build()
            .into_store();
        let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
        table.fill_slot("Tuberculosis", "Anatomy", "lungs");
        table.row_for_subject("Acne");
        let docs = vec![
            Document::new("d0", "Tuberculosis damages the lungs and the brain."),
            Document::new("d1", "Acne grows on the skin."),
            Document::new("d2", "Tuberculosis damages the nerve."),
        ];
        (Thor::new(store, ThorConfig::with_tau(0.6)), table, docs)
    }

    #[test]
    fn clean_resilient_run_matches_enrich() {
        let (thor, table, docs) = setup();
        let plain = thor.enrich(&table, &docs);
        let resilient = thor
            .enrich_resilient(&table, &docs, &ResilientOptions::default())
            .unwrap();
        assert!(resilient.quarantine.is_empty());
        assert_eq!(resilient.resumed_docs, 0);
        assert_eq!(resilient.processed_docs, 3);
        assert_eq!(resilient.result.entities, plain.entities);
        assert_eq!(
            thor_data::to_csv(&resilient.result.table),
            thor_data::to_csv(&plain.table)
        );
    }

    #[test]
    fn invalid_documents_are_quarantined_in_lenient_mode() {
        let (thor, table, mut docs) = setup();
        docs.push(Document::new("empty", "   "));
        let opts = ResilientOptions {
            mode: RunMode::Lenient,
            ..Default::default()
        };
        let outcome = thor.enrich_resilient(&table, &docs, &opts).unwrap();
        assert_eq!(outcome.quarantine.len(), 1);
        assert_eq!(outcome.quarantine.entries()[0].doc_id, "empty");
        assert_eq!(outcome.quarantine.entries()[0].stage, "validate");
        // The clean docs still enriched the table.
        let clean = thor.enrich(&table, &docs[..3]);
        assert_eq!(outcome.result.entities, clean.entities);
    }

    #[test]
    fn strict_mode_fails_fast_on_invalid_document() {
        let (thor, table, mut docs) = setup();
        docs.insert(0, Document::new("empty", ""));
        let err = thor
            .enrich_resilient(&table, &docs, &ResilientOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn duplicate_doc_ids_rejected() {
        let (thor, table, mut docs) = setup();
        docs.push(docs[0].clone());
        let err = thor
            .enrich_resilient(&table, &docs, &ResilientOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("duplicate document id"), "{err}");
    }

    #[test]
    fn quarantine_counter_tracks_report() {
        let (thor, table, mut docs) = setup();
        docs.push(Document::new("junk", "\u{FFFD}\u{1}\u{FFFD}\u{2}"));
        docs.push(Document::new("blank", "\n\n"));
        let metrics = PipelineMetrics::new();
        let thor = thor.with_metrics(metrics.clone());
        let opts = ResilientOptions {
            mode: RunMode::Lenient,
            ..Default::default()
        };
        let outcome = thor.enrich_resilient(&table, &docs, &opts).unwrap();
        assert_eq!(outcome.quarantine.len(), 2);
        assert_eq!(metrics.snapshot().count("quarantine.docs"), 2);
        assert_eq!(metrics.snapshot().count("docs"), 3);
    }

    fn stream_of(docs: &[Document]) -> Vec<(String, ThorResult<Document>)> {
        docs.iter().map(|d| (d.id.clone(), Ok(d.clone()))).collect()
    }

    #[test]
    fn streaming_matches_batch_byte_identically() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        let ids: Vec<String> = docs.iter().map(|d| d.id.clone()).collect();
        let opts = ResilientOptions::default();
        let batch = engine.enrich_resilient(&docs, &opts).unwrap();
        let batch_csv = thor_data::to_csv(&batch.result.table);
        for chunk in [1usize, 2, 64] {
            for threads in [1usize, 4] {
                let engine = engine.with_threads(threads);
                let streamed = engine
                    .enrich_resilient_stream(&ids, stream_of(&docs), &opts, chunk)
                    .unwrap();
                assert_eq!(
                    streamed.result.entities, batch.result.entities,
                    "chunk={chunk}, threads={threads}"
                );
                assert_eq!(
                    thor_data::to_csv(&streamed.result.table),
                    batch_csv,
                    "chunk={chunk}, threads={threads}"
                );
                assert_eq!(streamed.processed_docs, docs.len());
                assert_eq!(streamed.resumed_docs, 0);
            }
        }
    }

    #[test]
    fn streaming_resumes_a_batch_checkpoint_and_vice_versa() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        let ids: Vec<String> = docs.iter().map(|d| d.id.clone()).collect();
        let dir = std::env::temp_dir().join(format!("thor-stream-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = ResilientOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_interval: 1,
            ..Default::default()
        };
        let reference = engine.enrich_resilient(&docs, &opts).unwrap();

        // Batch checkpoint → streaming resume: the fingerprint is keyed
        // on ids only, so every already-completed document is skipped
        // without its body ever being materialized.
        let resume = ResilientOptions {
            resume: true,
            ..opts.clone()
        };
        let streamed = engine
            .enrich_resilient_stream(&ids, stream_of(&docs), &resume, 2)
            .unwrap();
        assert_eq!(streamed.resumed_docs, docs.len());
        assert_eq!(streamed.processed_docs, 0);
        assert_eq!(streamed.result.entities, reference.result.entities);

        // Streaming checkpoint → batch resume.
        std::fs::remove_dir_all(&dir).ok();
        engine
            .enrich_resilient_stream(&ids, stream_of(&docs), &opts, 1)
            .unwrap();
        let resumed = engine.enrich_resilient(&docs, &resume).unwrap();
        assert_eq!(resumed.resumed_docs, docs.len());
        assert_eq!(resumed.result.entities, reference.result.entities);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_read_failures_follow_run_mode() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        let mut ids: Vec<String> = docs.iter().map(|d| d.id.clone()).collect();
        ids.push("dead".to_string());
        let items = || {
            let mut v = stream_of(&docs);
            v.push((
                "dead".to_string(),
                Err(ThorError::io("dead.txt", std::io::Error::other("gone"))),
            ));
            v
        };

        let strict = engine.enrich_resilient_stream(&ids, items(), &ResilientOptions::default(), 2);
        let err = strict.unwrap_err();
        assert!(err.to_string().contains("dead"), "{err}");

        let lenient = ResilientOptions {
            mode: RunMode::Lenient,
            ..Default::default()
        };
        let outcome = engine
            .enrich_resilient_stream(&ids, items(), &lenient, 2)
            .unwrap();
        assert_eq!(outcome.quarantine.len(), 1);
        assert_eq!(outcome.quarantine.entries()[0].doc_id, "dead");
        assert_eq!(outcome.quarantine.entries()[0].stage, "read_doc");
        let clean = engine.enrich_resilient(&docs, &lenient).unwrap();
        assert_eq!(outcome.result.entities, clean.result.entities);
    }

    #[test]
    fn streaming_rejects_id_mismatch_and_short_streams() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        let ids: Vec<String> = docs.iter().map(|d| d.id.clone()).collect();
        let opts = ResilientOptions::default();

        let mut reversed = stream_of(&docs);
        reversed.reverse();
        let err = engine
            .enrich_resilient_stream(&ids, reversed, &opts, 2)
            .unwrap_err();
        assert!(err.to_string().contains("out of order"), "{err}");

        let short = stream_of(&docs[..2]);
        let err = engine
            .enrich_resilient_stream(&ids, short, &opts, 2)
            .unwrap_err();
        assert!(err.to_string().contains("ended after 2"), "{err}");
    }

    #[test]
    fn expired_deadline_aborts_the_run_in_both_modes() {
        let (thor, table, docs) = setup();
        for mode in [RunMode::Strict, RunMode::Lenient] {
            let opts = ResilientOptions {
                mode,
                cancel: thor_fault::CancelToken::with_deadline(std::time::Duration::ZERO),
                ..Default::default()
            };
            let err = thor.enrich_resilient(&table, &docs, &opts).unwrap_err();
            assert_eq!(err.kind(), thor_fault::ErrorKind::Deadline, "{mode:?}");
            assert!(err.to_string().contains("deadline exceeded"), "{err}");
        }
    }

    #[test]
    fn expired_deadline_aborts_multithreaded_runs() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table).with_threads(4);
        let opts = ResilientOptions {
            mode: RunMode::Lenient,
            cancel: thor_fault::CancelToken::with_deadline(std::time::Duration::ZERO),
            ..Default::default()
        };
        let err = engine.enrich_resilient(&docs, &opts).unwrap_err();
        assert_eq!(err.kind(), thor_fault::ErrorKind::Deadline);
    }

    #[test]
    fn unexpired_deadline_changes_nothing() {
        let (thor, table, docs) = setup();
        let plain = thor
            .enrich_resilient(&table, &docs, &ResilientOptions::default())
            .unwrap();
        let opts = ResilientOptions {
            cancel: thor_fault::CancelToken::with_deadline(std::time::Duration::from_secs(3600)),
            ..Default::default()
        };
        let budgeted = thor.enrich_resilient(&table, &docs, &opts).unwrap();
        assert_eq!(budgeted.result.entities, plain.result.entities);
        assert_eq!(
            thor_data::to_csv(&budgeted.result.table),
            thor_data::to_csv(&plain.result.table)
        );
    }

    #[test]
    fn engine_resilient_run_reuses_preparation() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        let a = engine
            .enrich_resilient(&docs, &ResilientOptions::default())
            .unwrap();
        let b = engine
            .enrich_resilient(&docs, &ResilientOptions::default())
            .unwrap();
        assert_eq!(a.result.entities, b.result.entities);
        assert_eq!(
            thor_data::to_csv(&a.result.table),
            thor_data::to_csv(&b.result.table)
        );
    }
}
