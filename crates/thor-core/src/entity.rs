//! Conceptualized entities — the pipeline's unit of output.

/// An entity `e = ⟨p, C⟩` extracted for a subject instance: the phrase,
/// the assigned concept, and provenance/score metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedEntity {
    /// The subject instance `c*` the entity belongs to.
    pub subject: String,
    /// The concept `e.C` the phrase was conceptualized as.
    pub concept: String,
    /// The phrase `e.p` (normalized form).
    pub phrase: String,
    /// Combined score: mean of semantic, word-Jaccard and gestalt
    /// similarity to the matched instance.
    pub score: f64,
    /// The seed instance `c_m` that anchored the match.
    pub matched_instance: String,
    /// Identifier of the source document.
    pub doc_id: String,
    /// Index of the source sentence within the document.
    pub sentence_index: usize,
}

impl ExtractedEntity {
    /// Deduplication key: one logical prediction per (document, concept,
    /// phrase) triple, matching the evaluation granularity.
    pub fn key(&self) -> (String, String, String) {
        (
            self.doc_id.clone(),
            self.concept.to_lowercase(),
            self.phrase.to_lowercase(),
        )
    }
}

/// Render entities as the canonical TSV the CLI's `--entities` option
/// writes: `doc_id<TAB>concept<TAB>phrase<TAB>subject<TAB>score`, one
/// line per entity, score with three decimals. The HTTP `/extract`
/// endpoint emits the same bytes, which is what makes served extraction
/// diff-able against a batch run.
pub fn entities_tsv(entities: &[ExtractedEntity]) -> String {
    use std::fmt::Write as _;
    let mut tsv = String::new();
    for e in entities {
        let _ = writeln!(
            tsv,
            "{}\t{}\t{}\t{}\t{:.3}",
            e.doc_id, e.concept, e.phrase, e.subject, e.score
        );
    }
    tsv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(doc: &str, concept: &str, phrase: &str) -> ExtractedEntity {
        ExtractedEntity {
            subject: "tb".into(),
            concept: concept.into(),
            phrase: phrase.into(),
            score: 0.5,
            matched_instance: "seed".into(),
            doc_id: doc.into(),
            sentence_index: 0,
        }
    }

    #[test]
    fn key_is_case_insensitive_on_concept_and_phrase() {
        assert_eq!(
            entity("d", "Anatomy", "Lungs").key(),
            entity("d", "anatomy", "lungs").key()
        );
        assert_ne!(
            entity("d1", "Anatomy", "x").key(),
            entity("d2", "Anatomy", "x").key()
        );
    }
}
