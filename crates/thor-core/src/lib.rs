#![warn(missing_docs)]
//! # thor-core
//!
//! THOR — *Text Homogenization from Oblivion to Reality* (ICDE 2024).
//!
//! THOR mitigates the data sparsity of integrated data by
//! **conceptualizing external text**: it extracts entities from documents,
//! labels them with the concepts of the integrated schema, and uses them
//! to slot-fill the integrated table. Its only supervision is the
//! structured data itself — schema concepts and their known instances —
//! so it adapts to schema evolution with a re-run instead of a
//! re-annotation campaign.
//!
//! The pipeline (Algorithm 1 of the paper) has three phases:
//!
//! 1. **Preparation** ([`segment`]) — split each document into sentences
//!    and associate each with a subject instance; fine-tune the semantic
//!    matcher from the table (`thor-match`).
//! 2. **Entity extraction** ([`extract`]) — parse sentences into noun
//!    phrases (`thor-nlp`), propose candidate entities by semantic
//!    matching, refine them with word-level Jaccard and character-level
//!    gestalt similarity, and keep the best candidate per phrase.
//! 3. **Slot filling** ([`slotfill`]) — append every extracted entity to
//!    the multi-valued cell (row = subject, column = concept).
//!
//! The top-level API is [`Thor`]:
//!
//! ```
//! use thor_core::{Document, Thor, ThorConfig};
//! use thor_data::{Schema, Table};
//! use thor_embed::SemanticSpaceBuilder;
//!
//! // A tiny integrated table with known instances...
//! let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
//! table.fill_slot("Tuberculosis", "Anatomy", "lung");
//!
//! // ...word vectors covering the domain...
//! let store = SemanticSpaceBuilder::new(16, 1)
//!     .topic("anatomy")
//!     .words("anatomy", ["lung", "heart"])
//!     .build()
//!     .into_store();
//!
//! // ...and an external document.
//! let doc = Document::new("d1", "Tuberculosis damages the heart.");
//!
//! let thor = Thor::new(store, ThorConfig::with_tau(0.8));
//! let result = thor.enrich(&table, &[doc]);
//! assert!(result.table.get_row("Tuberculosis").is_some());
//! ```
//!
//! ## Build/serve split
//!
//! Preparation depends only on the table, the vectors and the
//! configuration — so it is performed once, by [`Thor::prepare`], into
//! an immutable, `Arc`-shared [`PreparedEngine`]. Every serve call
//! ([`PreparedEngine::extract`], [`PreparedEngine::enrich`],
//! [`PreparedEngine::session`], [`PreparedEngine::enrich_resilient`])
//! reuses the engine; [`PreparedEngine::with_tau`] derives sibling
//! engines for a τ sweep from one Preparation pass; and
//! [`PreparedEngine::save`]/[`PreparedEngine::load`] persist the engine
//! as a versioned, checksummed binary artifact that reproduces
//! byte-identical output. Parallel serve paths share one persistent
//! [`WorkerPool`] instead of spawning threads per call.

pub mod config;
pub mod delta;
pub mod document;
pub mod engine;
pub mod entity;
pub mod extract;
pub mod pipeline;
pub mod pool;
pub mod resilient;
pub mod segment;
pub mod slot;
pub mod slotfill;

pub use config::{ScoreWeights, SegmentationMode, ThorConfig};
pub use delta::{compact_chain, ConceptDelta, EngineDelta, SeedDelta};
pub use document::Document;
pub use engine::{PreparedEngine, ENGINE_FORMAT_VERSION, ENGINE_LAZY_SECTIONS, ENGINE_MAGIC};
pub use entity::{entities_tsv, ExtractedEntity};
pub use extract::{refine_candidates, RefineOutcome};
pub use pipeline::{EnrichmentResult, EnrichmentSession, Thor};
pub use pool::{PoolScope, WorkerPool};
pub use resilient::{ResilientOptions, ResilientOutcome, RunMode};
pub use slot::{EngineGeneration, EngineSlot};
pub use thor_fault::{CancelToken, MapMode};
pub use thor_match::PruneMode;
pub use thor_obs::PipelineMetrics;
