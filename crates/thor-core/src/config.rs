//! Pipeline configuration.

/// Weights for the three refinement scores of Algorithm 1 (lines 10–13).
/// The paper averages them (`(score_s + score_w + score_c)/3`); the
/// weights exist for the ablation benches (`abl_scores`) that drop one
/// component at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreWeights {
    /// Weight of the semantic similarity `e.score_s`.
    pub semantic: f64,
    /// Weight of the word-level Jaccard `e.score_w`.
    pub word: f64,
    /// Weight of the character-level gestalt `e.score_c`.
    pub char: f64,
}

impl Default for ScoreWeights {
    fn default() -> Self {
        Self {
            semantic: 1.0,
            word: 1.0,
            char: 1.0,
        }
    }
}

impl ScoreWeights {
    /// Weighted mean of the three scores; all-zero weights yield 0.
    pub fn combine(&self, semantic: f64, word: f64, ch: f64) -> f64 {
        let total = self.semantic + self.word + self.char;
        if total == 0.0 {
            return 0.0;
        }
        (self.semantic * semantic + self.word * word + self.char * ch) / total
    }
}

/// How sentences are associated with subject instances during
/// Preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentationMode {
    /// Exact subject mentions, with carry-forward to following sentences
    /// ("paragraphs, or even entire documents, often talk about a
    /// specific subject instance"), falling back to semantic matching.
    #[default]
    MentionCarryForward,
    /// Semantic matching only (the paper's fallback, exposed for the
    /// `abl_segment` ablation).
    SemanticOnly,
    /// Exact mentions only, no carry-forward (ablation).
    MentionOnly,
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct ThorConfig {
    /// The similarity threshold τ (precision/recall dial).
    pub tau: f64,
    /// Refinement score weights.
    pub weights: ScoreWeights,
    /// Maximum subphrase length considered by the matcher.
    pub max_subphrase_words: usize,
    /// Cap on τ-expansion per concept.
    pub max_expansion: usize,
    /// Capacity of the matcher's phrase cache (distinct normalized
    /// subphrases whose candidate sets are retained across the document
    /// stream); 0 disables caching. Never changes results — candidates
    /// are a pure function of the subphrase once fine-tuning is done.
    pub cache_capacity: usize,
    /// Sentence-to-subject association strategy.
    pub segmentation: SegmentationMode,
    /// Use the dependency-parse noun-phrase chunker (true, the paper's
    /// design) or naive token n-grams (false, the `abl_np` ablation).
    pub np_chunking: bool,
    /// Optional contextual gate — the paper's stated future work
    /// ("reduce the number of false positives … by … leveraging
    /// contextual embeddings"): a candidate entity is kept only when
    /// the *rest of its sentence* is at least this similar to the
    /// candidate's concept cluster. `None` disables the gate (the
    /// paper's published pipeline).
    pub context_gate: Option<f64>,
    /// Worker threads for document-parallel extraction; `1` keeps the
    /// pipeline single-threaded (documents are independent once the
    /// matcher is fine-tuned, so extraction parallelizes trivially).
    pub threads: usize,
    /// Skip the syntactic scoring of candidates whose refinement upper
    /// bound `combine(semantic, 1, 1)` cannot beat the running best
    /// (Jaccard and gestalt are both ≤ 1). Candidates are visited in
    /// the matcher's deterministic order and equality never prunes, so
    /// output is bit-identical either way — an output-neutral execution
    /// knob like `threads`, excluded from fingerprints and not
    /// persisted in engine artifacts. Applies only to the kernel path;
    /// the reference path always scores everything.
    pub early_abandon: bool,
    /// Score candidates with the documented reference implementations
    /// (`jaccard_words`/`gestalt_similarity`) instead of the
    /// allocation-free `thor_text::kernels` fast paths. The two paths
    /// are bit-identical by construction (enforced by property tests
    /// and `scripts/extract_smoke.sh`); the flag exists for A/B checks
    /// and benchmarking. Output-neutral: excluded from fingerprints and
    /// not persisted in engine artifacts.
    pub reference_refine: bool,
    /// Candidate-generation pruning strategy. `Exact` (the default)
    /// skips concepts and row blocks whose cosine upper bound cannot
    /// beat the admission threshold — bit-identical to the exhaustive
    /// scan, an output-neutral execution knob like `early_abandon`.
    /// `Approx { margin }` additionally pre-screens rows with the
    /// i8-quantized copy (survivors are exactly rescored); it trades a
    /// measured sliver of recall for throughput and is the only mode
    /// that can change output. `Off` forces the exhaustive scan.
    /// Excluded from fingerprints and not persisted in engine
    /// artifacts.
    pub prune: thor_match::PruneMode,
}

impl Default for ThorConfig {
    fn default() -> Self {
        Self {
            tau: 0.7,
            weights: ScoreWeights::default(),
            max_subphrase_words: 4,
            max_expansion: 200,
            cache_capacity: 4096,
            segmentation: SegmentationMode::default(),
            np_chunking: true,
            context_gate: None,
            threads: 1,
            early_abandon: true,
            reference_refine: false,
            prune: thor_match::PruneMode::Exact,
        }
    }
}

impl ThorConfig {
    /// Default configuration at a given τ. Panics outside
    /// [`thor_match::TAU_RANGE`].
    pub fn with_tau(tau: f64) -> Self {
        assert!(
            thor_match::TAU_RANGE.contains(&tau),
            "tau must be in [0, 1] (TAU_RANGE)"
        );
        Self {
            tau,
            ..Self::default()
        }
    }

    /// The matcher-level slice of this configuration — the single place
    /// the pipeline translates its config into a
    /// [`thor_match::MatcherConfig`].
    pub fn matcher_config(&self) -> thor_match::MatcherConfig {
        thor_match::MatcherConfig {
            tau: self.tau,
            max_subphrase_words: self.max_subphrase_words,
            max_expansion: self.max_expansion,
            cache_capacity: self.cache_capacity,
            prune: self.prune,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_average() {
        let w = ScoreWeights::default();
        assert!((w.combine(1.0, 0.0, 0.45) - (1.45 / 3.0)).abs() < 1e-12);
        // The paper's e2 example: (0.8 + 0.4 + 0.39)/3 ≈ 0.53.
        assert!((w.combine(0.8, 0.4, 0.39) - 0.53).abs() < 0.005);
    }

    #[test]
    fn dropped_component() {
        let w = ScoreWeights {
            semantic: 1.0,
            word: 1.0,
            char: 0.0,
        };
        assert!((w.combine(0.8, 0.4, 0.99) - 0.6).abs() < 1e-12);
        let zero = ScoreWeights {
            semantic: 0.0,
            word: 0.0,
            char: 0.0,
        };
        assert_eq!(zero.combine(1.0, 1.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "tau must be in")]
    fn tau_range_checked() {
        ThorConfig::with_tau(1.5);
    }
}
