//! The hot-swap seam: an epoch-versioned, atomically-replaceable
//! [`PreparedEngine`] holder.
//!
//! A serving process holds one [`EngineSlot`] for the lifetime of the
//! process and swaps *generations* into it as new engine artifacts
//! arrive. The contract the reload chaos suite enforces:
//!
//! * **Pinning.** [`EngineSlot::load`] hands out an
//!   `Arc<EngineGeneration>`; a request that loaded generation *n*
//!   finishes on generation *n* even if the slot is swapped mid-request
//!   — the Arc keeps the old engine (and, for mapped artifacts, its
//!   mmap) alive until the last in-flight request drops it.
//! * **Atomicity.** A concurrent reader sees either the old generation
//!   or the new one, never a torn mix; the epoch is assigned under the
//!   same lock that publishes the engine, so epochs observed through
//!   `load` are monotone.
//! * **Never swap-to-broken.** Candidate validation happens *before*
//!   [`EngineSlot::swap`] is called (the reload state machine in
//!   thor-serve); the swap itself still carries the `swap` failpoint so
//!   chaos tests can prove a failure at the final step leaves the old
//!   generation serving.
//!
//! The slot is deliberately tiny — an `RwLock<Arc<_>>` — because swaps
//! are rare (operator-driven) and loads are one uncontended read-lock
//! acquisition; no epoch-based reclamation scheme is warranted at this
//! request rate.

use std::sync::{Arc, RwLock};

use thor_fault::{fail_point, ThorResult};

use crate::engine::PreparedEngine;

/// One published engine generation: the engine plus the 1-based epoch
/// it was installed at. `fingerprint@epoch` is what the serve layer
/// stamps into `X-Thor-Engine`.
#[derive(Debug, Clone)]
pub struct EngineGeneration {
    /// The engine this generation serves with.
    pub engine: PreparedEngine,
    /// Monotone installation counter, starting at 1 for the engine the
    /// slot was created with.
    pub epoch: u64,
}

impl EngineGeneration {
    /// The `fingerprint@epoch` tag identifying this generation.
    pub fn tag(&self) -> String {
        format!("{}@{}", self.engine.fingerprint(), self.epoch)
    }
}

/// An epoch-versioned, swappable engine holder. See the module docs.
#[derive(Debug)]
pub struct EngineSlot {
    current: RwLock<Arc<EngineGeneration>>,
}

impl EngineSlot {
    /// A slot serving `engine` as epoch 1.
    pub fn new(engine: PreparedEngine) -> Self {
        Self {
            current: RwLock::new(Arc::new(EngineGeneration { engine, epoch: 1 })),
        }
    }

    /// Pin the current generation. The returned Arc keeps that
    /// generation alive across any number of subsequent swaps.
    pub fn load(&self) -> Arc<EngineGeneration> {
        Arc::clone(&self.current.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// The epoch currently being served.
    pub fn epoch(&self) -> u64 {
        self.current.read().unwrap_or_else(|p| p.into_inner()).epoch
    }

    /// Publish `engine` as the next generation and return it. On error
    /// (the `swap` failpoint — the last injectable step of a reload)
    /// the slot is untouched and the old generation keeps serving.
    pub fn swap(&self, engine: PreparedEngine) -> ThorResult<Arc<EngineGeneration>> {
        let mut current = self.current.write().unwrap_or_else(|p| p.into_inner());
        fail_point("swap")?;
        let next = Arc::new(EngineGeneration {
            engine,
            epoch: current.epoch + 1,
        });
        *current = Arc::clone(&next);
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThorConfig;
    use crate::pipeline::Thor;
    use thor_data::{Schema, Table};
    use thor_embed::SemanticSpaceBuilder;
    use thor_fault::scoped_failpoints;

    fn engine(tau: f64) -> PreparedEngine {
        let store = SemanticSpaceBuilder::new(8, 3)
            .topic("anatomy")
            .words("anatomy", ["lungs", "skin"])
            .build()
            .into_store();
        let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
        table.fill_slot("Tuberculosis", "Anatomy", "lungs");
        Thor::new(store, ThorConfig::with_tau(tau)).prepare(&table)
    }

    #[test]
    fn epochs_are_monotone_and_start_at_one() {
        let slot = EngineSlot::new(engine(0.6));
        assert_eq!(slot.epoch(), 1);
        let g2 = slot.swap(engine(0.7)).unwrap();
        assert_eq!(g2.epoch, 2);
        assert_eq!(slot.epoch(), 2);
        assert_eq!(slot.load().tag(), g2.tag());
    }

    #[test]
    fn loads_pin_their_generation_across_swaps() {
        let slot = EngineSlot::new(engine(0.6));
        let pinned = slot.load();
        let old_fp = pinned.engine.fingerprint().to_string();
        slot.swap(engine(0.7)).unwrap();
        // The pinned Arc still serves the old engine...
        assert_eq!(pinned.engine.fingerprint(), old_fp);
        assert_eq!(pinned.epoch, 1);
        // ...while fresh loads see the new generation.
        let fresh = slot.load();
        assert_eq!(fresh.epoch, 2);
        assert_ne!(fresh.engine.fingerprint(), old_fp);
    }

    #[test]
    fn failed_swap_leaves_the_old_generation_serving() {
        let slot = EngineSlot::new(engine(0.6));
        let before = slot.load().tag();
        {
            let _guard = scoped_failpoints("swap:err");
            assert!(slot.swap(engine(0.7)).is_err());
        }
        assert_eq!(slot.load().tag(), before);
        assert_eq!(slot.epoch(), 1);
        // The slot still works after the failure.
        assert_eq!(slot.swap(engine(0.7)).unwrap().epoch, 2);
    }

    #[test]
    fn concurrent_loads_and_swaps_never_tear() {
        let slot = Arc::new(EngineSlot::new(engine(0.6)));
        let a = engine(0.6);
        let b = engine(0.7);
        let fps = [a.fingerprint().to_string(), b.fingerprint().to_string()];
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let done = Arc::clone(&done);
                let fps = fps.clone();
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    while !done.load(std::sync::atomic::Ordering::Relaxed) {
                        let g = slot.load();
                        assert!(g.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = g.epoch;
                        assert!(fps.contains(&g.engine.fingerprint().to_string()));
                    }
                })
            })
            .collect();
        for i in 0..50 {
            let next = if i % 2 == 0 { b.clone() } else { a.clone() };
            slot.swap(next).unwrap();
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(slot.epoch(), 51);
    }
}
