//! Phase ② — entity extraction: noun-phrase parsing, semantic matching,
//! syntactic refinement (Algorithm 1 lines 3–15).

use thor_index::CandidateSource;
use thor_match::{CandidateEntity, SimilarityMatcher};
use thor_nlp::{chunk_sentence, chunk_sentence_metered, RuleTagger};
use thor_obs::PipelineMetrics;
use thor_text::{gestalt_similarity, jaccard_words, tokenize};

use crate::config::ThorConfig;
use crate::entity::ExtractedEntity;
use crate::segment::SegmentedSentence;

/// A scored candidate after syntactic refinement.
#[derive(Debug, Clone)]
struct ScoredCandidate {
    candidate: CandidateEntity,
    score: f64,
}

/// Refine a semantic candidate with the two syntactic scores and combine
/// (lines 10–13): `score_s` is the semantic similarity to the matched
/// instance, `score_w` the word-level Jaccard, `score_c` the
/// character-level gestalt similarity.
fn refine(candidate: CandidateEntity, config: &ThorConfig) -> ScoredCandidate {
    let score_w = jaccard_words(&candidate.phrase, &candidate.matched_instance);
    let score_c = gestalt_similarity(&candidate.phrase, &candidate.matched_instance);
    let score = config
        .weights
        .combine(candidate.semantic_score, score_w, score_c);
    ScoredCandidate { candidate, score }
}

/// Extract the phrases of one sentence: dependency-parse noun phrases
/// (the paper's design) or naive n-grams (`abl_np` ablation).
fn sentence_phrases(
    text: &str,
    config: &ThorConfig,
    tagger: &RuleTagger,
    metrics: Option<&PipelineMetrics>,
) -> Vec<String> {
    let tokens = tokenize(text);
    let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    if words.is_empty() {
        return Vec::new();
    }
    if config.np_chunking {
        let phrases = match metrics {
            Some(m) => chunk_sentence_metered(&words, tagger, m),
            None => chunk_sentence(&words, tagger),
        };
        phrases.into_iter().map(|np| np.text).collect()
    } else {
        // Ablation: every contiguous window up to the subphrase cap.
        let _span = metrics.map(|m| m.chunk.start());
        let max = config.max_subphrase_words.min(words.len());
        let mut out = Vec::new();
        for len in 1..=max {
            for start in 0..=(words.len() - len) {
                let phrase = thor_text::strip_stopwords(&words[start..start + len].join(" "));
                if !phrase.is_empty() {
                    out.push(phrase);
                }
            }
        }
        out.dedup();
        if let Some(m) = metrics {
            m.sentences.inc();
            m.noun_phrases.add(out.len() as u64);
        }
        out
    }
}

/// Run entity extraction over segmented sentences (lines 3–15). Returns
/// one best entity per (sentence, noun phrase) — `e_best` — tagged with
/// the sentence's subject instance.
pub fn extract_entities(
    segments: &[SegmentedSentence],
    matcher: &SimilarityMatcher,
    config: &ThorConfig,
    doc_id: &str,
) -> Vec<ExtractedEntity> {
    extract_entities_impl(segments, matcher, config, doc_id, None)
}

/// [`extract_entities`] with observability: noun-phrase chunking is
/// counted and timed per sentence, refinement runs under a
/// `stage.refine` span, and each accepted entity increments the
/// `entities` counter. (The matcher counts its own subphrases and
/// candidates when it was fine-tuned with
/// [`SimilarityMatcher::fine_tune_metered`].)
pub fn extract_entities_metered(
    segments: &[SegmentedSentence],
    matcher: &SimilarityMatcher,
    config: &ThorConfig,
    doc_id: &str,
    metrics: &PipelineMetrics,
) -> Vec<ExtractedEntity> {
    extract_entities_impl(segments, matcher, config, doc_id, Some(metrics))
}

fn extract_entities_impl(
    segments: &[SegmentedSentence],
    matcher: &SimilarityMatcher,
    config: &ThorConfig,
    doc_id: &str,
    metrics: Option<&PipelineMetrics>,
) -> Vec<ExtractedEntity> {
    let tagger = RuleTagger::default();
    let lexicon = thor_nlp::Lexicon::english();
    // Entities must contain a nominal word ("entities typically consist
    // of noun phrases or subsequences thereof") — a bare adjective is
    // not an entity candidate.
    let anchor = |w: &str| lexicon.tag_of(w, false).is_nominal();
    // Candidate generation goes through the shared engine trait — the
    // extraction step is agnostic to which `CandidateSource` backs it.
    let source: &dyn CandidateSource = matcher;
    let mut out = Vec::new();

    for seg in segments {
        for phrase in sentence_phrases(&seg.sentence.text, config, &tagger, metrics) {
            let candidates = source.candidates_anchored(&phrase, &anchor);
            let refine_span = metrics.map(|m| m.refine.start());
            let best = candidates
                .into_iter()
                .map(|c| refine(c, config))
                .max_by(|a, b| {
                    a.score
                        .total_cmp(&b.score)
                        .then_with(|| b.candidate.phrase.cmp(&a.candidate.phrase))
                });
            drop(refine_span);
            if let Some(best) = best {
                // Optional contextual gate (the paper's future work):
                // the sentence minus the entity phrase must itself be
                // compatible with the assigned concept.
                if let Some(min_context) = config.context_gate {
                    let ctx = context_similarity(&seg.sentence.text, &best.candidate, matcher);
                    if ctx < min_context {
                        continue;
                    }
                }
                if let Some(m) = metrics {
                    m.entities.inc();
                }
                out.push(ExtractedEntity {
                    subject: seg.subject.clone(),
                    concept: best.candidate.concept,
                    phrase: best.candidate.phrase,
                    score: best.score,
                    matched_instance: best.candidate.matched_instance,
                    doc_id: doc_id.to_string(),
                    sentence_index: seg.index,
                });
            }
        }
    }
    out
}

/// Mean similarity between the sentence context (every content word of
/// the sentence except the candidate phrase's own words) and the
/// candidate's concept cluster. Returns 1.0 when the context is empty
/// or fully out-of-vocabulary (no evidence against the candidate).
fn context_similarity(
    sentence: &str,
    candidate: &CandidateEntity,
    matcher: &SimilarityMatcher,
) -> f64 {
    use thor_text::{is_stopword, normalize_phrase};
    let phrase_words: std::collections::HashSet<&str> =
        candidate.phrase.split_whitespace().collect();
    let normalized = normalize_phrase(sentence);
    let context: Vec<&str> = normalized
        .split_whitespace()
        .filter(|w| !is_stopword(w) && !phrase_words.contains(w))
        .collect();
    if context.is_empty() {
        return 1.0;
    }
    let Some(query) = matcher.store().embed_phrase(&context.join(" ")) else {
        return 1.0;
    };
    matcher
        .clusters()
        .iter()
        .find(|c| c.concept == candidate.concept)
        .and_then(|c| c.mean_similarity(&query))
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThorConfig;
    use crate::document::Document;
    use crate::segment::{segment, SegmentedSentence};
    use thor_embed::SemanticSpaceBuilder;
    use thor_match::MatcherConfig;
    use thor_text::Sentence;

    fn matcher(tau: f64) -> SimilarityMatcher {
        let store = SemanticSpaceBuilder::new(32, 4)
            .spread(0.45)
            .topic("anatomy")
            .correlated_topic("complication", "anatomy", 0.3)
            .words(
                "anatomy",
                ["nervous", "system", "brain", "nerve", "ear", "lung"],
            )
            .words(
                "complication",
                ["cancer", "tumor", "deafness", "unsteadiness", "skin"],
            )
            .generic_words(["slow-growing", "walk", "green", "grows", "surgery"])
            .build()
            .into_store();
        let concepts = vec![
            ("Anatomy".to_string(), vec!["nervous system".to_string()]),
            ("Complication".to_string(), vec!["skin cancer".to_string()]),
        ];
        SimilarityMatcher::fine_tune(&concepts, store, MatcherConfig::with_tau(tau))
    }

    fn seg(subject: &str, text: &str, index: usize) -> SegmentedSentence {
        SegmentedSentence {
            subject: subject.to_string(),
            sentence: Sentence {
                text: text.to_string(),
                start: 0,
                end: text.len(),
            },
            index,
        }
    }

    #[test]
    fn paper_worked_example_prefers_syntactic_agreement() {
        // From the paper: within "slow-growing non-cancerous brain
        // tumor", the subphrase matched to 'Complication' via seed
        // 'skin cancer' wins over 'brain'→'Anatomy' because its
        // syntactic overlap with the seed is higher.
        let m = matcher(0.55);
        let segments = vec![seg(
            "Acoustic Neuroma",
            "It is a slow-growing non-cancerous brain tumor.",
            0,
        )];
        let entities = extract_entities(&segments, &m, &ThorConfig::with_tau(0.55), "d1");
        assert!(!entities.is_empty());
        for e in &entities {
            assert_eq!(e.subject, "Acoustic Neuroma");
            assert_eq!(e.doc_id, "d1");
        }
    }

    #[test]
    fn one_best_entity_per_phrase() {
        let m = matcher(0.5);
        let segments = vec![seg("X", "The brain and the ear.", 0)];
        let entities = extract_entities(&segments, &m, &ThorConfig::with_tau(0.5), "d");
        // Two noun phrases → at most two entities.
        assert!(entities.len() <= 2);
    }

    #[test]
    fn unmatched_phrases_produce_nothing() {
        let m = matcher(0.9);
        let segments = vec![seg("X", "People walk in green parks.", 0)];
        let entities = extract_entities(&segments, &m, &ThorConfig::with_tau(0.9), "d");
        assert!(entities.is_empty());
    }

    #[test]
    fn scores_within_unit_interval() {
        let m = matcher(0.5);
        let segments = vec![seg(
            "X",
            "The brain tumor causes deafness and unsteadiness.",
            3,
        )];
        let entities = extract_entities(&segments, &m, &ThorConfig::with_tau(0.5), "d");
        assert!(!entities.is_empty());
        for e in &entities {
            assert!((0.0..=1.0).contains(&e.score), "score {e:?}");
            assert_eq!(e.sentence_index, 3);
        }
    }

    #[test]
    fn ngram_ablation_yields_at_least_np_coverage() {
        let m = matcher(0.5);
        let text = "The brain tumor causes deafness.";
        let segments = vec![seg("X", text, 0)];
        let np_config = ThorConfig::with_tau(0.5);
        let mut ngram_config = ThorConfig::with_tau(0.5);
        ngram_config.np_chunking = false;
        let np = extract_entities(&segments, &m, &np_config, "d");
        let ng = extract_entities(&segments, &m, &ngram_config, "d");
        assert!(
            ng.len() >= np.len(),
            "n-grams generate at least as many candidates"
        );
    }

    #[test]
    fn context_gate_reduces_predictions() {
        let m = matcher(0.5);
        // An entity-bearing sentence whose remaining context is pure
        // generic vocabulary — a high gate should drop it.
        let segments = vec![seg("X", "People walk in green parks near the brain.", 0)];
        let open = ThorConfig::with_tau(0.5);
        let mut gated = ThorConfig::with_tau(0.5);
        gated.context_gate = Some(0.5);
        let without = extract_entities(&segments, &m, &open, "d").len();
        let with = extract_entities(&segments, &m, &gated, "d").len();
        assert!(with <= without, "gate must never add predictions");
    }

    #[test]
    fn context_gate_keeps_supported_entities() {
        let m = matcher(0.5);
        // Context full of same-topic vocabulary supports the candidate.
        let segments = vec![seg("X", "The nerve and the ear relate to the brain.", 0)];
        let mut gated = ThorConfig::with_tau(0.5);
        gated.context_gate = Some(0.2);
        let entities = extract_entities(&segments, &m, &gated, "d");
        assert!(
            !entities.is_empty(),
            "well-supported entities must survive the gate"
        );
    }

    #[test]
    fn end_to_end_with_segmentation() {
        let m = matcher(0.55);
        let doc = Document::new(
            "doc",
            "Acoustic Neuroma grows on the nerve. It may cause deafness.",
        );
        let subjects = vec!["Acoustic Neuroma".to_string()];
        let segs = segment(&doc, &subjects, &m, Default::default());
        let entities = extract_entities(&segs, &m, &ThorConfig::with_tau(0.55), &doc.id);
        assert!(entities.iter().all(|e| e.subject == "Acoustic Neuroma"));
        assert!(!entities.is_empty());
    }
}
