//! Phase ② — entity extraction: noun-phrase parsing, semantic matching,
//! syntactic refinement (Algorithm 1 lines 3–15).
//!
//! Refinement runs on the allocation-free `thor_text::kernels` fast
//! paths by default, with a score-bound early abandon: the combined
//! score is a weighted mean of three terms each ≤ 1, so a candidate
//! whose upper bound `combine(semantic, 1, 1)` cannot beat the running
//! best is skipped before any syntactic work. Candidates are visited in
//! the matcher's deterministic order and ties never prune, so the
//! selected entity — and every downstream byte — is identical to the
//! reference path (`ThorConfig::reference_refine`), which is retained
//! as ground truth.

use std::cmp::Ordering;
use std::sync::OnceLock;

use thor_index::CandidateSource;
use thor_match::{CandidateEntity, SimilarityMatcher};
use thor_nlp::{chunk_sentence, chunk_sentence_metered, Lexicon, RuleTagger};
use thor_obs::PipelineMetrics;
use thor_text::{
    gestalt_bound, gestalt_prepared, gestalt_similarity, jaccard_prepared, jaccard_words, tokenize,
    PhraseSyntax, ScoreScratch,
};

use crate::config::ThorConfig;
use crate::entity::ExtractedEntity;
use crate::segment::SegmentedSentence;

/// The process-wide POS tagger. `RuleTagger::default()` builds lexicon
/// and suffix tables; constructing it per `extract_entities` call was
/// measurable, and the tagger is immutable after construction.
pub(crate) fn shared_tagger() -> &'static RuleTagger {
    static TAGGER: OnceLock<RuleTagger> = OnceLock::new();
    TAGGER.get_or_init(RuleTagger::default)
}

/// The process-wide English lexicon backing the nominal-anchor test.
pub(crate) fn shared_lexicon() -> &'static Lexicon {
    static LEXICON: OnceLock<Lexicon> = OnceLock::new();
    LEXICON.get_or_init(Lexicon::english)
}

/// Outcome of refining one subphrase's candidate list.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// The winning `(candidate, combined score)`, if any candidate
    /// survived — the same winner `max_by` over the fully scored list
    /// selects (last maximal element under `total_cmp` + reversed
    /// phrase tie-break).
    pub best: Option<(CandidateEntity, f64)>,
    /// Candidates fully scored (semantic + both syntactic measures).
    pub scored: u64,
    /// Candidates skipped by the score-bound early abandon.
    pub pruned: u64,
}

/// Whether early abandon may prune under these weights: the upper bound
/// `combine(s, 1, 1)` is only monotone in the syntactic scores when the
/// word/char weights are non-negative, and only meaningful when every
/// weight is finite. (`ScoreWeights` fields are public, so exotic
/// configurations are reachable; they simply fall back to full
/// scoring.)
fn bound_is_sound(config: &ThorConfig) -> bool {
    let w = &config.weights;
    w.semantic.is_finite()
        && w.word.is_finite()
        && w.char.is_finite()
        && w.word >= 0.0
        && w.char >= 0.0
}

/// Refine a candidate list (Algorithm 1 lines 10–13) and select the
/// best candidate: `score_s` is the semantic similarity to the matched
/// instance, `score_w` the word-level Jaccard, `score_c` the
/// character-level gestalt similarity, combined by the configured
/// weights.
///
/// The kernel path (default) scores through `scratch` and the matcher's
/// frozen [`SeedSyntax`](thor_text::SeedSyntax), pruning upper-bounded
/// candidates when `config.early_abandon` holds; the reference path
/// (`config.reference_refine`) recomputes both syntactic measures from
/// the raw strings with the documented reference implementations and
/// never prunes. Both paths return bit-identical winners.
pub fn refine_candidates(
    candidates: &[CandidateEntity],
    matcher: &SimilarityMatcher,
    config: &ThorConfig,
    scratch: &mut ScoreScratch,
) -> RefineOutcome {
    let reference = config.reference_refine;
    let prunable = !reference && config.early_abandon && bound_is_sound(config);
    let seed_syntax = matcher.seed_syntax();
    let mut best: Option<(usize, f64)> = None;
    let mut scored = 0u64;
    let mut pruned = 0u64;
    // Winner selection is a strict total order on (score, phrase,
    // index) — see the replacement rule below — so the visit order is
    // free. When pruning, visit by descending semantic score: the
    // likely winner is scored first and the bounds then abandon most
    // of the rest before any syntactic work. Small lists order on the
    // stack so steady state stays allocation-free.
    let n = candidates.len();
    let mut stack_order = [0u32; 32];
    let mut heap_order: Vec<u32>;
    let order: &mut [u32] = if n <= 32 {
        &mut stack_order[..n]
    } else {
        heap_order = vec![0; n];
        &mut heap_order
    };
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i as u32;
    }
    if prunable {
        order.sort_unstable_by(|&x, &y| {
            candidates[y as usize]
                .semantic_score
                .total_cmp(&candidates[x as usize].semantic_score)
                .then_with(|| x.cmp(&y))
        });
    }
    for &order_idx in order.iter() {
        let idx = order_idx as usize;
        let c = &candidates[idx];
        // Stage-1 bound: both syntactic scores are ≤ 1, so a candidate
        // whose semantic term alone cannot reach the incumbent is
        // skipped before any lookup. Strictly-below only: a tied
        // candidate can still win through the phrase tie-break /
        // last-wins rule.
        if prunable {
            if let Some((_, best_score)) = best {
                let bound = config.weights.combine(c.semantic_score, 1.0, 1.0);
                if bound.total_cmp(&best_score) == Ordering::Less {
                    pruned += 1;
                    continue;
                }
            }
        }
        let (score_w, score_c) = if reference {
            (
                jaccard_words(&c.phrase, &c.matched_instance),
                gestalt_similarity(&c.phrase, &c.matched_instance),
            )
        } else {
            // Defensive fallback: every matched_instance of a
            // SimilarityMatcher is an embedded seed, but other sources
            // may not uphold that.
            let fallback;
            let seed = match seed_syntax.get(&c.matched_instance) {
                Some(seed) => seed,
                None => {
                    fallback = PhraseSyntax::new(&c.matched_instance);
                    &fallback
                }
            };
            let score_w = jaccard_prepared(scratch, &c.phrase, seed);
            // Stage-2 bound, with the real Jaccard in hand: the gestalt
            // is at most `2·min(|a|,|b|)/(|a|+|b|)` (difflib's
            // `real_quick_ratio`), which costs one chars() pass instead
            // of the quadratic block search.
            if prunable {
                if let Some((_, best_score)) = best {
                    let bound = config.weights.combine(
                        c.semantic_score,
                        score_w,
                        gestalt_bound(&c.phrase, seed),
                    );
                    if bound.total_cmp(&best_score) == Ordering::Less {
                        pruned += 1;
                        continue;
                    }
                }
            }
            (score_w, gestalt_prepared(scratch, &c.phrase, seed))
        };
        scored += 1;
        let score = config.weights.combine(c.semantic_score, score_w, score_c);
        // max_by keeps the *last* maximal element: replace unless the
        // incumbent strictly wins under (score, reversed-phrase).
        let replace = match &best {
            None => true,
            Some((best_idx, best_score)) => {
                score
                    .total_cmp(best_score)
                    .then_with(|| candidates[*best_idx].phrase.cmp(&c.phrase))
                    != Ordering::Less
            }
        };
        if replace {
            best = Some((idx, score));
        }
    }
    RefineOutcome {
        best: best.map(|(idx, score)| (candidates[idx].clone(), score)),
        scored,
        pruned,
    }
}

/// Extract the phrases of one sentence: dependency-parse noun phrases
/// (the paper's design) or naive n-grams (`abl_np` ablation).
fn sentence_phrases(
    text: &str,
    config: &ThorConfig,
    tagger: &RuleTagger,
    metrics: Option<&PipelineMetrics>,
) -> Vec<String> {
    let tokens = tokenize(text);
    let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    if words.is_empty() {
        return Vec::new();
    }
    if config.np_chunking {
        let phrases = match metrics {
            Some(m) => chunk_sentence_metered(&words, tagger, m),
            None => chunk_sentence(&words, tagger),
        };
        phrases.into_iter().map(|np| np.text).collect()
    } else {
        // Ablation: every contiguous window up to the subphrase cap.
        let _span = metrics.map(|m| m.chunk.start());
        let max = config.max_subphrase_words.min(words.len());
        let mut out = Vec::new();
        for len in 1..=max {
            for start in 0..=(words.len() - len) {
                let phrase = thor_text::strip_stopwords(&words[start..start + len].join(" "));
                if !phrase.is_empty() {
                    out.push(phrase);
                }
            }
        }
        out.dedup();
        if let Some(m) = metrics {
            m.sentences.inc();
            m.noun_phrases.add(out.len() as u64);
        }
        out
    }
}

/// Run entity extraction over segmented sentences (lines 3–15). Returns
/// one best entity per (sentence, noun phrase) — `e_best` — tagged with
/// the sentence's subject instance.
pub fn extract_entities(
    segments: &[SegmentedSentence],
    matcher: &SimilarityMatcher,
    config: &ThorConfig,
    doc_id: &str,
) -> Vec<ExtractedEntity> {
    let mut scratch = ScoreScratch::new();
    extract_entities_impl(segments, matcher, config, doc_id, None, &mut scratch)
}

/// [`extract_entities`] with observability: noun-phrase chunking is
/// counted and timed per sentence, refinement runs under a
/// `stage.refine` span, and each accepted entity increments the
/// `entities` counter. (The matcher counts its own subphrases and
/// candidates when it was fine-tuned with
/// [`SimilarityMatcher::fine_tune_metered`].)
pub fn extract_entities_metered(
    segments: &[SegmentedSentence],
    matcher: &SimilarityMatcher,
    config: &ThorConfig,
    doc_id: &str,
    metrics: &PipelineMetrics,
) -> Vec<ExtractedEntity> {
    let mut scratch = ScoreScratch::new();
    extract_entities_impl(
        segments,
        matcher,
        config,
        doc_id,
        Some(metrics),
        &mut scratch,
    )
}

/// [`extract_entities_metered`] reusing a caller-owned [`ScoreScratch`]
/// across documents — the long-lived paths (worker loops, enrichment
/// sessions) thread one scratch per worker so refinement allocates
/// nothing in steady state.
pub fn extract_entities_with(
    segments: &[SegmentedSentence],
    matcher: &SimilarityMatcher,
    config: &ThorConfig,
    doc_id: &str,
    metrics: Option<&PipelineMetrics>,
    scratch: &mut ScoreScratch,
) -> Vec<ExtractedEntity> {
    extract_entities_impl(segments, matcher, config, doc_id, metrics, scratch)
}

fn extract_entities_impl(
    segments: &[SegmentedSentence],
    matcher: &SimilarityMatcher,
    config: &ThorConfig,
    doc_id: &str,
    metrics: Option<&PipelineMetrics>,
    scratch: &mut ScoreScratch,
) -> Vec<ExtractedEntity> {
    let tagger = shared_tagger();
    let lexicon = shared_lexicon();
    // Entities must contain a nominal word ("entities typically consist
    // of noun phrases or subsequences thereof") — a bare adjective is
    // not an entity candidate.
    let anchor = |w: &str| lexicon.tag_of(w, false).is_nominal();
    // Candidate generation goes through the shared engine trait — the
    // extraction step is agnostic to which `CandidateSource` backs it.
    let source: &dyn CandidateSource = matcher;
    let mut out = Vec::new();

    for seg in segments {
        for phrase in sentence_phrases(&seg.sentence.text, config, tagger, metrics) {
            let candidates = source.candidates_anchored(&phrase, &anchor);
            let refine_span = metrics.map(|m| m.refine.start());
            let outcome = refine_candidates(&candidates, matcher, config, scratch);
            drop(refine_span);
            if let Some(m) = metrics {
                m.refine_scored.add(outcome.scored);
                m.refine_pruned.add(outcome.pruned);
            }
            if let Some((candidate, score)) = outcome.best {
                // Optional contextual gate (the paper's future work):
                // the sentence minus the entity phrase must itself be
                // compatible with the assigned concept.
                if let Some(min_context) = config.context_gate {
                    let ctx = context_similarity(&seg.sentence.text, &candidate, matcher);
                    if ctx < min_context {
                        continue;
                    }
                }
                if let Some(m) = metrics {
                    m.entities.inc();
                }
                out.push(ExtractedEntity {
                    subject: seg.subject.clone(),
                    concept: candidate.concept,
                    phrase: candidate.phrase,
                    score,
                    matched_instance: candidate.matched_instance,
                    doc_id: doc_id.to_string(),
                    sentence_index: seg.index,
                });
            }
        }
    }
    out
}

/// Mean similarity between the sentence context (every content word of
/// the sentence except the candidate phrase's own words) and the
/// candidate's concept cluster. Returns 1.0 when the context is empty
/// or fully out-of-vocabulary (no evidence against the candidate).
fn context_similarity(
    sentence: &str,
    candidate: &CandidateEntity,
    matcher: &SimilarityMatcher,
) -> f64 {
    use thor_text::{is_stopword, normalize_phrase};
    let phrase_words: std::collections::HashSet<&str> =
        candidate.phrase.split_whitespace().collect();
    let normalized = normalize_phrase(sentence);
    let context: Vec<&str> = normalized
        .split_whitespace()
        .filter(|w| !is_stopword(w) && !phrase_words.contains(w))
        .collect();
    if context.is_empty() {
        return 1.0;
    }
    let Some(query) = matcher.store().embed_phrase(&context.join(" ")) else {
        return 1.0;
    };
    matcher
        .clusters()
        .iter()
        .find(|c| c.concept == candidate.concept)
        .and_then(|c| c.mean_similarity(&query))
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThorConfig;
    use crate::document::Document;
    use crate::segment::{segment, SegmentedSentence};
    use thor_embed::SemanticSpaceBuilder;
    use thor_match::MatcherConfig;
    use thor_text::Sentence;

    fn matcher(tau: f64) -> SimilarityMatcher {
        let store = SemanticSpaceBuilder::new(32, 4)
            .spread(0.45)
            .topic("anatomy")
            .correlated_topic("complication", "anatomy", 0.3)
            .words(
                "anatomy",
                ["nervous", "system", "brain", "nerve", "ear", "lung"],
            )
            .words(
                "complication",
                ["cancer", "tumor", "deafness", "unsteadiness", "skin"],
            )
            .generic_words(["slow-growing", "walk", "green", "grows", "surgery"])
            .build()
            .into_store();
        let concepts = vec![
            ("Anatomy".to_string(), vec!["nervous system".to_string()]),
            ("Complication".to_string(), vec!["skin cancer".to_string()]),
        ];
        SimilarityMatcher::fine_tune(&concepts, store, MatcherConfig::with_tau(tau))
    }

    fn seg(subject: &str, text: &str, index: usize) -> SegmentedSentence {
        SegmentedSentence {
            subject: subject.to_string(),
            sentence: Sentence {
                text: text.to_string(),
                start: 0,
                end: text.len(),
            },
            index,
        }
    }

    #[test]
    fn paper_worked_example_prefers_syntactic_agreement() {
        // From the paper: within "slow-growing non-cancerous brain
        // tumor", the subphrase matched to 'Complication' via seed
        // 'skin cancer' wins over 'brain'→'Anatomy' because its
        // syntactic overlap with the seed is higher.
        let m = matcher(0.55);
        let segments = vec![seg(
            "Acoustic Neuroma",
            "It is a slow-growing non-cancerous brain tumor.",
            0,
        )];
        let entities = extract_entities(&segments, &m, &ThorConfig::with_tau(0.55), "d1");
        assert!(!entities.is_empty());
        for e in &entities {
            assert_eq!(e.subject, "Acoustic Neuroma");
            assert_eq!(e.doc_id, "d1");
        }
    }

    #[test]
    fn one_best_entity_per_phrase() {
        let m = matcher(0.5);
        let segments = vec![seg("X", "The brain and the ear.", 0)];
        let entities = extract_entities(&segments, &m, &ThorConfig::with_tau(0.5), "d");
        // Two noun phrases → at most two entities.
        assert!(entities.len() <= 2);
    }

    #[test]
    fn unmatched_phrases_produce_nothing() {
        let m = matcher(0.9);
        let segments = vec![seg("X", "People walk in green parks.", 0)];
        let entities = extract_entities(&segments, &m, &ThorConfig::with_tau(0.9), "d");
        assert!(entities.is_empty());
    }

    #[test]
    fn scores_within_unit_interval() {
        let m = matcher(0.5);
        let segments = vec![seg(
            "X",
            "The brain tumor causes deafness and unsteadiness.",
            3,
        )];
        let entities = extract_entities(&segments, &m, &ThorConfig::with_tau(0.5), "d");
        assert!(!entities.is_empty());
        for e in &entities {
            assert!((0.0..=1.0).contains(&e.score), "score {e:?}");
            assert_eq!(e.sentence_index, 3);
        }
    }

    #[test]
    fn ngram_ablation_yields_at_least_np_coverage() {
        let m = matcher(0.5);
        let text = "The brain tumor causes deafness.";
        let segments = vec![seg("X", text, 0)];
        let np_config = ThorConfig::with_tau(0.5);
        let mut ngram_config = ThorConfig::with_tau(0.5);
        ngram_config.np_chunking = false;
        let np = extract_entities(&segments, &m, &np_config, "d");
        let ng = extract_entities(&segments, &m, &ngram_config, "d");
        assert!(
            ng.len() >= np.len(),
            "n-grams generate at least as many candidates"
        );
    }

    #[test]
    fn context_gate_reduces_predictions() {
        let m = matcher(0.5);
        // An entity-bearing sentence whose remaining context is pure
        // generic vocabulary — a high gate should drop it.
        let segments = vec![seg("X", "People walk in green parks near the brain.", 0)];
        let open = ThorConfig::with_tau(0.5);
        let mut gated = ThorConfig::with_tau(0.5);
        gated.context_gate = Some(0.5);
        let without = extract_entities(&segments, &m, &open, "d").len();
        let with = extract_entities(&segments, &m, &gated, "d").len();
        assert!(with <= without, "gate must never add predictions");
    }

    #[test]
    fn context_gate_keeps_supported_entities() {
        let m = matcher(0.5);
        // Context full of same-topic vocabulary supports the candidate.
        let segments = vec![seg("X", "The nerve and the ear relate to the brain.", 0)];
        let mut gated = ThorConfig::with_tau(0.5);
        gated.context_gate = Some(0.2);
        let entities = extract_entities(&segments, &m, &gated, "d");
        assert!(
            !entities.is_empty(),
            "well-supported entities must survive the gate"
        );
    }

    #[test]
    fn end_to_end_with_segmentation() {
        let m = matcher(0.55);
        let doc = Document::new(
            "doc",
            "Acoustic Neuroma grows on the nerve. It may cause deafness.",
        );
        let subjects = vec!["Acoustic Neuroma".to_string()];
        let segs = segment(&doc, &subjects, &m, Default::default());
        let entities = extract_entities(&segs, &m, &ThorConfig::with_tau(0.55), &doc.id);
        assert!(entities.iter().all(|e| e.subject == "Acoustic Neuroma"));
        assert!(!entities.is_empty());
    }
}
