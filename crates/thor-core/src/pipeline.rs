//! The end-to-end THOR pipeline.
//!
//! [`Thor`] holds the inputs (vector store + configuration); the heavy
//! per-table state lives in a [`PreparedEngine`] built by
//! [`Thor::prepare`]. Every one-shot entry point here is a thin
//! prepare-then-serve wrapper — callers that run more than one call,
//! τ value, or document batch should hold the engine themselves.

use std::sync::Arc;
use std::time::Duration;

use thor_data::Table;
use thor_embed::VectorStore;
use thor_match::SimilarityMatcher;
use thor_obs::PipelineMetrics;
use thor_text::ScoreScratch;

use crate::config::ThorConfig;
use crate::document::Document;
use crate::engine::{concept_instances, PreparedEngine};
use crate::entity::ExtractedEntity;
use crate::extract::extract_entities_with;
use crate::segment::segment_metered;
use crate::slotfill::{slot_fill_metered, SlotFillStats};

/// Result of one enrichment run.
#[derive(Debug, Clone)]
pub struct EnrichmentResult {
    /// The enriched table `R'`.
    pub table: Table,
    /// Every extracted entity, deduplicated per (document, concept,
    /// phrase) — the evaluation granularity.
    pub entities: Vec<ExtractedEntity>,
    /// Slot-filling outcome counts.
    pub slot_stats: SlotFillStats,
    /// Wall-clock time of fine-tuning (Preparation phase).
    pub prepare_time: Duration,
    /// Wall-clock time of segmentation + extraction + slot filling.
    pub inference_time: Duration,
}

impl EnrichmentResult {
    /// Total time (the paper's Table V reports fine-tuning and inference
    /// together).
    pub fn total_time(&self) -> Duration {
        self.prepare_time + self.inference_time
    }
}

/// Total order used for deduplication: entities sharing a key are
/// ranked best-score-first, with every remaining field as a tie-break
/// so the survivor — and therefore the pipeline output — is identical
/// no matter how the input was partitioned across worker threads.
fn dedup_order(a: &ExtractedEntity, b: &ExtractedEntity) -> std::cmp::Ordering {
    a.key()
        .cmp(&b.key())
        .then_with(|| b.score.total_cmp(&a.score))
        .then_with(|| a.phrase.cmp(&b.phrase))
        .then_with(|| a.matched_instance.cmp(&b.matched_instance))
        .then_with(|| a.subject.cmp(&b.subject))
        .then_with(|| a.sentence_index.cmp(&b.sentence_index))
}

/// Sort by [`dedup_order`] and keep the first (best) entity per key.
pub(crate) fn dedup_entities(entities: &mut Vec<ExtractedEntity>) {
    entities.sort_by(dedup_order);
    entities.dedup_by(|next, first| next.key() == first.key());
}

/// The THOR system: word vectors + configuration. One instance can
/// enrich any number of (table, corpus) pairs; fine-tuning happens per
/// table because it depends on the table's instances ("it easily adapts
/// when the reference data integration schema evolves") — but within a
/// table it happens *once*, inside [`Thor::prepare`], and the resulting
/// [`PreparedEngine`] is shared by every serve call.
#[derive(Debug, Clone)]
pub struct Thor {
    store: Arc<VectorStore>,
    config: ThorConfig,
    metrics: Option<PipelineMetrics>,
}

impl Thor {
    /// Create a THOR instance over a vector table. Accepts either a
    /// `VectorStore` by value or an already-shared `Arc<VectorStore>`;
    /// the store is never deep-copied after this point.
    pub fn new(store: impl Into<Arc<VectorStore>>, config: ThorConfig) -> Self {
        Self {
            store: store.into(),
            config,
            metrics: None,
        }
    }

    /// Attach an observability handle: every subsequent run records
    /// per-stage counters and timers into `metrics` (shared with any
    /// clones of the handle the caller kept).
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached observability handle, if any.
    pub fn metrics(&self) -> Option<&PipelineMetrics> {
        self.metrics.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &ThorConfig {
        &self.config
    }

    /// The word-vector table.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// The shared handle to the word-vector table (a refcount bump, not
    /// a copy — the store is `Arc`-shared end to end).
    pub fn store_arc(&self) -> &Arc<VectorStore> {
        &self.store
    }

    /// The metrics handle runs record into: the attached one, or an
    /// ephemeral throwaway so stage timing (which feeds the public
    /// [`EnrichmentResult`] fields) always has somewhere to go.
    pub(crate) fn run_metrics(&self) -> PipelineMetrics {
        self.metrics.clone().unwrap_or_default()
    }

    /// Phase ① fine-tuning: build the semantic matcher from the table's
    /// concepts and instances (weak supervision — no annotated text).
    ///
    /// Serve paths never call this per call any more — they go through
    /// [`Thor::prepare`] and reuse the engine's matcher; this remains
    /// for callers that want the matcher alone.
    pub fn fine_tune(&self, table: &Table) -> SimilarityMatcher {
        let concepts = concept_instances(table);
        let matcher_config = self.config.matcher_config();
        match &self.metrics {
            Some(m) => SimilarityMatcher::fine_tune_metered(
                &concepts,
                Arc::clone(&self.store),
                matcher_config,
                m.clone(),
            ),
            None => {
                SimilarityMatcher::fine_tune(&concepts, Arc::clone(&self.store), matcher_config)
            }
        }
    }

    /// Extract entities from `docs` against `table`'s schema and
    /// instances, without modifying the table. Entities are deduplicated
    /// per (document, concept, phrase), keeping the highest score.
    ///
    /// With `config.threads > 1`, documents are processed in parallel on
    /// the shared [`crate::WorkerPool`] (they are independent once the
    /// matcher is fine-tuned); the output is identical to the
    /// single-threaded run.
    pub fn extract(
        &self,
        table: &Table,
        docs: &[Document],
    ) -> (Vec<ExtractedEntity>, Duration, Duration) {
        let engine = self.prepare(table);
        let (entities, inference_time) = engine.extract(docs);
        (entities, engine.prepare_time(), inference_time)
    }

    /// Start a streaming enrichment session over `table`: the matcher is
    /// fine-tuned once and documents are then processed incrementally —
    /// the deployment shape for feeds of incoming text.
    pub fn session(&self, table: &Table) -> EnrichmentSession {
        self.prepare(table).session()
    }

    /// Run the full pipeline: Preparation, Entity Extraction, Slot
    /// Filling. Returns the enriched copy of `table`.
    pub fn enrich(&self, table: &Table, docs: &[Document]) -> EnrichmentResult {
        self.prepare(table).enrich(docs)
    }
}

/// A streaming enrichment session: fine-tuned once, fed documents one at
/// a time, slot-filling as it goes. Backed by a [`PreparedEngine`] (the
/// session holds a shared handle, not a copy).
///
/// ```no_run
/// # use thor_core::{Document, Thor, ThorConfig};
/// # use thor_data::{Schema, Table};
/// # use thor_embed::VectorStore;
/// # let thor = Thor::new(VectorStore::new(8), ThorConfig::default());
/// # let table = Table::new(Schema::new(["S", "C"], "S"));
/// let mut session = thor.session(&table);
/// for doc in incoming_documents() {
///     let new = session.process(&doc);
///     println!("{new} new values");
/// }
/// let enriched = session.finish();
/// # fn incoming_documents() -> Vec<Document> { vec![] }
/// ```
pub struct EnrichmentSession {
    engine: PreparedEngine,
    table: Table,
    entities: Vec<ExtractedEntity>,
    metrics: PipelineMetrics,
    /// Refinement scratch reused across every document the session
    /// processes — the session is the long-lived streaming path, so the
    /// DP buffers reach steady state after the first few sentences.
    scratch: ScoreScratch,
}

impl EnrichmentSession {
    pub(crate) fn new(engine: PreparedEngine) -> Self {
        Self {
            metrics: engine.run_metrics(),
            table: engine.table().clone(),
            entities: Vec::new(),
            engine,
            scratch: ScoreScratch::new(),
        }
    }

    /// Process one document: extract its entities and slot-fill the
    /// session table immediately. Returns the number of newly inserted
    /// values.
    pub fn process(&mut self, doc: &Document) -> usize {
        let run = self.metrics.clone();
        let _span = run.inference.start();
        run.docs.inc();
        // Cheap Arc bump so the engine's config/matcher borrows don't
        // conflict with the `&mut self.scratch` below.
        let engine = self.engine.clone();
        let config = engine.config();
        let segments = segment_metered(
            doc,
            engine.subjects(),
            engine.matcher(),
            config.segmentation,
            &run,
        );
        let mut extracted = extract_entities_with(
            &segments,
            engine.matcher(),
            config,
            &doc.id,
            Some(&run),
            &mut self.scratch,
        );
        // Per-document dedup (matching the batch pipeline's granularity).
        dedup_entities(&mut extracted);
        let stats = slot_fill_metered(&mut self.table, &extracted, &run);
        self.entities.extend(extracted);
        stats.inserted
    }

    /// The session's observability handle (the [`Thor`] instance's
    /// attached handle, or an ephemeral one scoped to this session).
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Statistics of the phrase cache backing this session's matcher
    /// (one cache per fine-tune, shared across all documents the
    /// session processes).
    pub fn cache_stats(&self) -> thor_match::CacheStats {
        self.engine.matcher().cache_stats()
    }

    /// Current state of the enriched table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// All entities extracted so far.
    pub fn entities(&self) -> &[ExtractedEntity] {
        &self.entities
    }

    /// Consume the session, returning the enriched table.
    pub fn finish(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_data::{sparsity, Schema};
    use thor_embed::SemanticSpaceBuilder;

    /// The complete Fig. 1 scenario.
    fn setup() -> (Thor, Table, Vec<Document>) {
        let store = SemanticSpaceBuilder::new(32, 21)
            .spread(0.4)
            .topic("disease")
            .topic("anatomy")
            .correlated_topic("complication", "anatomy", 0.25)
            .words("disease", ["tuberculosis", "acne", "neuroma", "acoustic"])
            .words(
                "anatomy",
                [
                    "nervous", "system", "brain", "nerve", "lungs", "skin", "ear",
                ],
            )
            .words(
                "complication",
                [
                    "cancer",
                    "tumor",
                    "unsteadiness",
                    "empyema",
                    "deafness",
                    "non-cancerous",
                ],
            )
            .generic_words(["slow-growing", "grows", "damage", "damages", "severe"])
            .build()
            .into_store();

        let mut table = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        table.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
        table.fill_slot("Acne", "Anatomy", "skin");
        table.fill_slot("Acne", "Complication", "skin cancer");
        table.row_for_subject("Tuberculosis"); // all slots ⊥ — sparsity

        let docs = vec![Document::new(
            "doc1",
            "Acoustic Neuroma is a slow-growing non-cancerous brain tumor. \
             It may cause unsteadiness and deafness. \
             Tuberculosis generally damages the lungs and may cause empyema.",
        )];
        (Thor::new(store, ThorConfig::with_tau(0.6)), table, docs)
    }

    #[test]
    fn enrichment_reduces_sparsity() {
        let (thor, table, docs) = setup();
        let before = sparsity(&table).ratio;
        let result = thor.enrich(&table, &docs);
        let after = sparsity(&result.table).ratio;
        assert!(after < before, "sparsity {before} -> {after} should drop");
        assert!(result.slot_stats.inserted > 0);
    }

    #[test]
    fn entities_attributed_to_correct_subjects() {
        let (thor, table, docs) = setup();
        let result = thor.enrich(&table, &docs);
        // Entities from the third sentence belong to Tuberculosis.
        let tb: Vec<&ExtractedEntity> = result
            .entities
            .iter()
            .filter(|e| e.subject == "Tuberculosis")
            .collect();
        assert!(!tb.is_empty(), "entities: {:?}", result.entities);
        // And from the first two to Acoustic Neuroma.
        assert!(result
            .entities
            .iter()
            .any(|e| e.subject == "Acoustic Neuroma"));
    }

    #[test]
    fn entities_deduplicated_by_key() {
        let (thor, table, mut docs) = setup();
        // Duplicate the same sentence — same (doc, concept, phrase) keys.
        docs[0]
            .text
            .push_str(" Tuberculosis generally damages the lungs.");
        let result = thor.enrich(&table, &docs);
        let mut keys: Vec<_> = result.entities.iter().map(|e| e.key()).collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "keys must be unique");
    }

    #[test]
    fn original_table_not_mutated() {
        let (thor, table, docs) = setup();
        let before = table.instance_count();
        let _ = thor.enrich(&table, &docs);
        assert_eq!(table.instance_count(), before);
    }

    #[test]
    fn higher_tau_never_more_entities() {
        let (thor_low, table, docs) = setup();
        let store = Arc::clone(thor_low.store_arc());
        let thor_high = Thor::new(store, ThorConfig::with_tau(0.95));
        let low = thor_low.enrich(&table, &docs).entities.len();
        let high = thor_high.enrich(&table, &docs).entities.len();
        assert!(high <= low, "tau 0.95 produced {high} > tau 0.6 {low}");
    }

    #[test]
    fn empty_corpus_is_noop() {
        let (thor, table, _) = setup();
        let result = thor.enrich(&table, &[]);
        assert!(result.entities.is_empty());
        assert_eq!(result.table.instance_count(), table.instance_count());
    }

    #[test]
    fn parallel_extraction_matches_sequential() {
        let (thor, table, docs) = setup();
        // Replicate the corpus so there is real work to split.
        let docs: Vec<Document> = (0..8)
            .flat_map(|i| {
                docs.iter()
                    .map(move |d| Document::new(format!("{}-{i}", d.id), d.text.clone()))
            })
            .collect();
        let sequential = thor.extract(&table, &docs).0;
        let mut config = thor.config().clone();
        config.threads = 4;
        let parallel_thor = Thor::new(Arc::clone(thor.store_arc()), config);
        let parallel = parallel_thor.extract(&table, &docs).0;
        assert_eq!(sequential.len(), parallel.len());
        let keys = |v: &[ExtractedEntity]| {
            let mut k: Vec<_> = v.iter().map(ExtractedEntity::key).collect();
            k.sort();
            k
        };
        assert_eq!(keys(&sequential), keys(&parallel));
    }

    #[test]
    fn streaming_session_matches_batch() {
        let (thor, table, docs) = setup();
        let batch = thor.enrich(&table, &docs);
        let mut session = thor.session(&table);
        for d in &docs {
            session.process(d);
        }
        assert_eq!(session.entities().len(), batch.entities.len());
        let streamed = session.finish();
        assert_eq!(streamed.instance_count(), batch.table.instance_count());
    }

    #[test]
    fn session_processes_incrementally() {
        let (thor, table, docs) = setup();
        let mut session = thor.session(&table);
        let before = sparsity(session.table()).ratio;
        let inserted = session.process(&docs[0]);
        assert!(inserted > 0);
        assert!(sparsity(session.table()).ratio < before);
    }

    #[test]
    fn timings_reported() {
        let (thor, table, docs) = setup();
        let result = thor.enrich(&table, &docs);
        assert!(result.total_time() >= result.prepare_time);
    }

    #[test]
    fn attached_metrics_record_every_stage() {
        let (thor, table, docs) = setup();
        let metrics = PipelineMetrics::new();
        let thor = thor.with_metrics(metrics.clone());
        let result = thor.enrich(&table, &docs);
        let snap = metrics.snapshot();
        assert_eq!(snap.count("docs"), 1);
        assert!(snap.count("sentences") >= 3, "{}", snap.render_table());
        assert!(snap.count("segments") >= 3, "{}", snap.render_table());
        assert!(snap.count("noun_phrases") > 0);
        assert!(snap.count("subphrases") > 0);
        assert!(snap.count("candidates") > 0);
        assert_eq!(snap.count("entities") as usize, result.entities.len());
        assert_eq!(
            snap.count("slots.inserted") as usize,
            result.slot_stats.inserted
        );
        assert!(snap.count("vocab.words") > 0);
        assert!(snap.count("cluster.representatives") > 0);
        // Span counts: one prepare/inference pair, one segment span per
        // doc, one slot-fill pass.
        use thor_obs::MetricValue;
        let spans = |name: &str| match snap.get(name) {
            Some(MetricValue::Timer { spans, .. }) => *spans,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(spans("pipeline.prepare"), 1);
        assert_eq!(spans("pipeline.inference"), 1);
        assert_eq!(spans("stage.segment"), 1);
        assert_eq!(spans("stage.slot_fill"), 1);
        assert!(spans("stage.chunk") >= 3);
        assert!(spans("stage.match") > 0);
    }

    #[test]
    fn ephemeral_metrics_still_time_phases() {
        // Without an attached handle the public timing fields still
        // come from real span measurements.
        let (thor, table, docs) = setup();
        assert!(thor.metrics().is_none());
        let result = thor.enrich(&table, &docs);
        assert!(result.inference_time > Duration::ZERO);
    }

    #[test]
    fn session_metrics_accumulate_across_documents() {
        let (thor, table, docs) = setup();
        let metrics = PipelineMetrics::new();
        let thor = thor.with_metrics(metrics.clone());
        let mut session = thor.session(&table);
        session.process(&docs[0]);
        session.process(&docs[0]);
        assert_eq!(session.metrics().snapshot().count("docs"), 2);
        assert_eq!(metrics.snapshot().count("docs"), 2);
    }
}
