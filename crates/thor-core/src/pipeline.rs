//! The end-to-end THOR pipeline.

use std::time::{Duration, Instant};

use thor_data::Table;
use thor_embed::VectorStore;
use thor_match::{MatcherConfig, SimilarityMatcher};

use crate::config::ThorConfig;
use crate::document::Document;
use crate::entity::ExtractedEntity;
use crate::extract::extract_entities;
use crate::segment::segment;
use crate::slotfill::{slot_fill, SlotFillStats};

/// Result of one enrichment run.
#[derive(Debug, Clone)]
pub struct EnrichmentResult {
    /// The enriched table `R'`.
    pub table: Table,
    /// Every extracted entity, deduplicated per (document, concept,
    /// phrase) — the evaluation granularity.
    pub entities: Vec<ExtractedEntity>,
    /// Slot-filling outcome counts.
    pub slot_stats: SlotFillStats,
    /// Wall-clock time of fine-tuning (Preparation phase).
    pub prepare_time: Duration,
    /// Wall-clock time of segmentation + extraction + slot filling.
    pub inference_time: Duration,
}

impl EnrichmentResult {
    /// Total time (the paper's Table V reports fine-tuning and inference
    /// together).
    pub fn total_time(&self) -> Duration {
        self.prepare_time + self.inference_time
    }
}

/// The THOR system: word vectors + configuration. One instance can
/// enrich any number of (table, corpus) pairs; fine-tuning happens per
/// call because it depends on the table's instances ("it easily adapts
/// when the reference data integration schema evolves").
#[derive(Debug, Clone)]
pub struct Thor {
    store: VectorStore,
    config: ThorConfig,
}

impl Thor {
    /// Create a THOR instance over a vector table.
    pub fn new(store: VectorStore, config: ThorConfig) -> Self {
        Self { store, config }
    }

    /// The configuration.
    pub fn config(&self) -> &ThorConfig {
        &self.config
    }

    /// Phase ① fine-tuning: build the semantic matcher from the table's
    /// concepts and instances (weak supervision — no annotated text).
    pub fn fine_tune(&self, table: &Table) -> SimilarityMatcher {
        let concepts: Vec<(String, Vec<String>)> = table
            .schema()
            .concepts()
            .iter()
            .map(|c| (c.name().to_string(), table.column_values(c.name())))
            .collect();
        let matcher_config = MatcherConfig {
            tau: self.config.tau,
            max_subphrase_words: self.config.max_subphrase_words,
            max_expansion: self.config.max_expansion,
        };
        SimilarityMatcher::fine_tune(&concepts, self.store.clone(), matcher_config)
    }

    /// Extract entities from `docs` against `table`'s schema and
    /// instances, without modifying the table. Entities are deduplicated
    /// per (document, concept, phrase), keeping the highest score.
    ///
    /// With `config.threads > 1`, documents are processed in parallel
    /// (they are independent once the matcher is fine-tuned); the output
    /// is identical to the single-threaded run.
    pub fn extract(&self, table: &Table, docs: &[Document]) -> (Vec<ExtractedEntity>, Duration, Duration) {
        let t0 = Instant::now();
        let matcher = self.fine_tune(table);
        let prepare_time = t0.elapsed();

        let subjects: Vec<String> = table.subjects().map(str::to_string).collect();
        let t1 = Instant::now();
        let per_doc = |doc: &Document| {
            let segments = segment(doc, &subjects, &matcher, self.config.segmentation);
            extract_entities(&segments, &matcher, &self.config, &doc.id)
        };
        let mut entities: Vec<ExtractedEntity> = if self.config.threads <= 1 || docs.len() < 2 {
            docs.iter().flat_map(per_doc) .collect()
        } else {
            let workers = self.config.threads.min(docs.len());
            let next = std::sync::atomic::AtomicUsize::new(0);
            let mut buckets: Vec<Vec<ExtractedEntity>> = Vec::new();
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|_| {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if i >= docs.len() {
                                    break out;
                                }
                                out.extend(per_doc(&docs[i]));
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    buckets.push(h.join().expect("extraction worker panicked"));
                }
            })
            .expect("extraction scope");
            buckets.into_iter().flatten().collect()
        };
        // Deduplicate, keeping the best-scoring instance of each key.
        entities.sort_by(|a, b| {
            a.key().cmp(&b.key()).then_with(|| b.score.total_cmp(&a.score))
        });
        entities.dedup_by(|next, first| next.key() == first.key());
        let inference_time = t1.elapsed();
        (entities, prepare_time, inference_time)
    }

    /// Start a streaming enrichment session over `table`: the matcher is
    /// fine-tuned once and documents are then processed incrementally —
    /// the deployment shape for feeds of incoming text.
    pub fn session<'a>(&'a self, table: &Table) -> EnrichmentSession<'a> {
        let matcher = self.fine_tune(table);
        EnrichmentSession {
            thor: self,
            matcher,
            subjects: table.subjects().map(str::to_string).collect(),
            table: table.clone(),
            entities: Vec::new(),
        }
    }

    /// Run the full pipeline: Preparation, Entity Extraction, Slot
    /// Filling. Returns the enriched copy of `table`.
    pub fn enrich(&self, table: &Table, docs: &[Document]) -> EnrichmentResult {
        let (entities, prepare_time, mut inference_time) = self.extract(table, docs);
        let t2 = Instant::now();
        let mut enriched = table.clone();
        let slot_stats = slot_fill(&mut enriched, &entities);
        inference_time += t2.elapsed();
        EnrichmentResult { table: enriched, entities, slot_stats, prepare_time, inference_time }
    }
}

/// A streaming enrichment session: fine-tuned once, fed documents one at
/// a time, slot-filling as it goes.
///
/// ```no_run
/// # use thor_core::{Document, Thor, ThorConfig};
/// # use thor_data::{Schema, Table};
/// # use thor_embed::VectorStore;
/// # let thor = Thor::new(VectorStore::new(8), ThorConfig::default());
/// # let table = Table::new(Schema::new(["S", "C"], "S"));
/// let mut session = thor.session(&table);
/// for doc in incoming_documents() {
///     let new = session.process(&doc);
///     println!("{new} new values");
/// }
/// let enriched = session.finish();
/// # fn incoming_documents() -> Vec<Document> { vec![] }
/// ```
pub struct EnrichmentSession<'a> {
    thor: &'a Thor,
    matcher: SimilarityMatcher,
    subjects: Vec<String>,
    table: Table,
    entities: Vec<ExtractedEntity>,
}

impl EnrichmentSession<'_> {
    /// Process one document: extract its entities and slot-fill the
    /// session table immediately. Returns the number of newly inserted
    /// values.
    pub fn process(&mut self, doc: &Document) -> usize {
        let segments =
            segment(doc, &self.subjects, &self.matcher, self.thor.config.segmentation);
        let mut extracted =
            extract_entities(&segments, &self.matcher, &self.thor.config, &doc.id);
        // Per-document dedup (matching the batch pipeline's granularity).
        extracted.sort_by(|a, b| a.key().cmp(&b.key()).then_with(|| b.score.total_cmp(&a.score)));
        extracted.dedup_by(|next, first| next.key() == first.key());
        let stats = slot_fill(&mut self.table, &extracted);
        self.entities.extend(extracted);
        stats.inserted
    }

    /// Current state of the enriched table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// All entities extracted so far.
    pub fn entities(&self) -> &[ExtractedEntity] {
        &self.entities
    }

    /// Consume the session, returning the enriched table.
    pub fn finish(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_data::{sparsity, Schema};
    use thor_embed::SemanticSpaceBuilder;

    /// The complete Fig. 1 scenario.
    fn setup() -> (Thor, Table, Vec<Document>) {
        let store = SemanticSpaceBuilder::new(32, 21)
            .spread(0.4)
            .topic("disease")
            .topic("anatomy")
            .correlated_topic("complication", "anatomy", 0.25)
            .words("disease", ["tuberculosis", "acne", "neuroma", "acoustic"])
            .words("anatomy", ["nervous", "system", "brain", "nerve", "lungs", "skin", "ear"])
            .words(
                "complication",
                ["cancer", "tumor", "unsteadiness", "empyema", "deafness", "non-cancerous"],
            )
            .generic_words(["slow-growing", "grows", "damage", "damages", "severe"])
            .build()
            .into_store();

        let mut table =
            Table::new(Schema::new(["Disease", "Anatomy", "Complication"], "Disease"));
        table.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
        table.fill_slot("Acne", "Anatomy", "skin");
        table.fill_slot("Acne", "Complication", "skin cancer");
        table.row_for_subject("Tuberculosis"); // all slots ⊥ — sparsity

        let docs = vec![Document::new(
            "doc1",
            "Acoustic Neuroma is a slow-growing non-cancerous brain tumor. \
             It may cause unsteadiness and deafness. \
             Tuberculosis generally damages the lungs and may cause empyema.",
        )];
        (Thor::new(store, ThorConfig::with_tau(0.6)), table, docs)
    }

    #[test]
    fn enrichment_reduces_sparsity() {
        let (thor, table, docs) = setup();
        let before = sparsity(&table).ratio;
        let result = thor.enrich(&table, &docs);
        let after = sparsity(&result.table).ratio;
        assert!(after < before, "sparsity {before} -> {after} should drop");
        assert!(result.slot_stats.inserted > 0);
    }

    #[test]
    fn entities_attributed_to_correct_subjects() {
        let (thor, table, docs) = setup();
        let result = thor.enrich(&table, &docs);
        // Entities from the third sentence belong to Tuberculosis.
        let tb: Vec<&ExtractedEntity> =
            result.entities.iter().filter(|e| e.subject == "Tuberculosis").collect();
        assert!(!tb.is_empty(), "entities: {:?}", result.entities);
        // And from the first two to Acoustic Neuroma.
        assert!(result.entities.iter().any(|e| e.subject == "Acoustic Neuroma"));
    }

    #[test]
    fn entities_deduplicated_by_key() {
        let (thor, table, mut docs) = setup();
        // Duplicate the same sentence — same (doc, concept, phrase) keys.
        docs[0].text.push_str(" Tuberculosis generally damages the lungs.");
        let result = thor.enrich(&table, &docs);
        let mut keys: Vec<_> = result.entities.iter().map(|e| e.key()).collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "keys must be unique");
    }

    #[test]
    fn original_table_not_mutated() {
        let (thor, table, docs) = setup();
        let before = table.instance_count();
        let _ = thor.enrich(&table, &docs);
        assert_eq!(table.instance_count(), before);
    }

    #[test]
    fn higher_tau_never_more_entities() {
        let (thor_low, table, docs) = setup();
        let store = thor_low.store.clone();
        let thor_high = Thor::new(store, ThorConfig::with_tau(0.95));
        let low = thor_low.enrich(&table, &docs).entities.len();
        let high = thor_high.enrich(&table, &docs).entities.len();
        assert!(high <= low, "tau 0.95 produced {high} > tau 0.6 {low}");
    }

    #[test]
    fn empty_corpus_is_noop() {
        let (thor, table, _) = setup();
        let result = thor.enrich(&table, &[]);
        assert!(result.entities.is_empty());
        assert_eq!(result.table.instance_count(), table.instance_count());
    }

    #[test]
    fn parallel_extraction_matches_sequential() {
        let (thor, table, docs) = setup();
        // Replicate the corpus so there is real work to split.
        let docs: Vec<Document> = (0..8)
            .flat_map(|i| {
                docs.iter().map(move |d| Document::new(format!("{}-{i}", d.id), d.text.clone()))
            })
            .collect();
        let sequential = thor.extract(&table, &docs).0;
        let mut config = thor.config().clone();
        config.threads = 4;
        let parallel_thor = Thor::new(thor.store.clone(), config);
        let parallel = parallel_thor.extract(&table, &docs).0;
        assert_eq!(sequential.len(), parallel.len());
        let keys = |v: &[ExtractedEntity]| {
            let mut k: Vec<_> = v.iter().map(ExtractedEntity::key).collect();
            k.sort();
            k
        };
        assert_eq!(keys(&sequential), keys(&parallel));
    }

    #[test]
    fn streaming_session_matches_batch() {
        let (thor, table, docs) = setup();
        let batch = thor.enrich(&table, &docs);
        let mut session = thor.session(&table);
        for d in &docs {
            session.process(d);
        }
        assert_eq!(session.entities().len(), batch.entities.len());
        let streamed = session.finish();
        assert_eq!(streamed.instance_count(), batch.table.instance_count());
    }

    #[test]
    fn session_processes_incrementally() {
        let (thor, table, docs) = setup();
        let mut session = thor.session(&table);
        let before = sparsity(session.table()).ratio;
        let inserted = session.process(&docs[0]);
        assert!(inserted > 0);
        assert!(sparsity(session.table()).ratio < before);
    }

    #[test]
    fn timings_reported() {
        let (thor, table, docs) = setup();
        let result = thor.enrich(&table, &docs);
        assert!(result.total_time() >= result.prepare_time);
    }
}
