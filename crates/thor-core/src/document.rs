//! External documents — the raw-text input of the pipeline.

/// A document `D`: an identifier plus plain text. The id ties extracted
/// entities back to their source for evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Stable identifier (file name, URL, generator id, …).
    pub id: String,
    /// The document text.
    pub text: String,
}

impl Document {
    /// Create a document.
    pub fn new(id: impl Into<String>, text: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            text: text.into(),
        }
    }

    /// Number of whitespace-separated tokens (used by corpus statistics
    /// and the annotation-effort model).
    pub fn word_count(&self) -> usize {
        self.text.split_whitespace().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_word_count() {
        let d = Document::new("d1", "Tuberculosis damages the lungs.");
        assert_eq!(d.id, "d1");
        assert_eq!(d.word_count(), 4);
        assert_eq!(Document::new("e", "").word_count(), 0);
    }
}
