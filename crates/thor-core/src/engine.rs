//! The build/serve split: a frozen, persistable, `Arc`-shared
//! [`PreparedEngine`].
//!
//! THOR's Preparation phase (seed collection + τ-expansion + index
//! build) depends only on the integrated table, the vector store and
//! the configuration — not on the documents being served. The engine
//! freezes that output once, behind [`Thor::prepare`]:
//!
//! * the fine-tuned [`SimilarityMatcher`] (concept clusters + expanded
//!   `VectorIndex` + interning phrase cache),
//! * the [`PreparedMatcher`] it was derived from (the untruncated
//!   τ-expansion candidates, so any τ′ ≥ the build τ derives in
//!   microseconds instead of re-scanning the vocabulary),
//! * the dictionary baseline's Aho–Corasick [`DictionaryIndex`],
//! * the subject list, the table, and the `Arc<VectorStore>`.
//!
//! Every serve entry point — [`PreparedEngine::extract`],
//! [`PreparedEngine::enrich`], [`PreparedEngine::session`],
//! [`PreparedEngine::enrich_resilient`] — borrows this immutable bundle;
//! none re-runs `fine_tune` or deep-copies the store. [`Thor::extract`]
//! and friends are now thin prepare-then-serve wrappers.
//!
//! The engine also persists: [`PreparedEngine::save`] writes a
//! versioned binary artifact (magic + format version + FNV-1a checksum,
//! via `thor_fault::atomic_io`) and [`PreparedEngine::load`] rebuilds an
//! engine that produces **byte-identical** output — derived structures
//! (seeds, clusters, indexes, automaton) are reconstructed through the
//! exact constructor path the in-memory build uses, and a semantic
//! fingerprint of store/table/config is verified on load.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use thor_data::Table;
use thor_embed::VectorStore;
use thor_fault::{
    atomic_write, fnv1a, ByteReader, ByteWriter, MapMode, SectionChain, SectionWriter, ThorError,
    ThorResult,
};
use thor_index::DictionaryIndex;
use thor_match::{MatcherConfig, PreparedMatcher, PruneMode, SimilarityMatcher, TAU_RANGE};
use thor_obs::PipelineMetrics;
use thor_text::ScoreScratch;

use crate::config::{ScoreWeights, SegmentationMode, ThorConfig};
use crate::document::Document;
use crate::entity::ExtractedEntity;
use crate::extract::extract_entities_with;
use crate::pipeline::{dedup_entities, EnrichmentResult, EnrichmentSession, Thor};
use crate::pool::WorkerPool;
use crate::segment::segment_metered;
use crate::slotfill::slot_fill_metered;

/// Magic bytes opening an engine artifact file (shared with the
/// sectioned container in `thor_fault::section`).
pub const ENGINE_MAGIC: &[u8; 8] = b"THORENG\0";
/// On-disk format version of the engine artifact. Version 2 is the
/// sectioned, mmap-native layout; version-1 (pre-sectioned) files are
/// rejected by name with a rebuild hint.
pub const ENGINE_FORMAT_VERSION: u32 = 2;

// Section names of the v2 engine artifact. Hot arrays are stored in
// their exact in-memory layout (little-endian, 64-byte aligned) so a
// mapped load borrows them in place.
pub(crate) const SEC_META: &str = "meta";
pub(crate) const SEC_TABLE: &str = "table";
const SEC_STORE_OFFS: &str = "store.offsets";
const SEC_STORE_WORDS: &str = "store.words";
const SEC_STORE_ROWS: &str = "store.rows";
const SEC_CAND_STARTS: &str = "cand.starts";
const SEC_CAND_SIMS: &str = "cand.sims";
const SEC_CAND_WORD_OFFS: &str = "cand.word_offs";
const SEC_CAND_WORDS: &str = "cand.words";
const SEC_IDX_META: &str = "idx.meta";
const SEC_IDX_DATA: &str = "idx.data";
const SEC_IDX_NORMS: &str = "idx.norms";
const SEC_IDX_REPSUMS: &str = "idx.repsums";
const SEC_AUTOMATON: &str = "automaton";
const SEC_SYNTAX: &str = "syntax.seeds";
// Candidate-pruning acceleration structures (clustered bound pruning +
// i8-quantized rows). Pure deterministic functions of the VectorIndex,
// persisted so cold loads skip the k-means pass; artifacts written
// before these sections existed still load — the structures are rebuilt
// on the fly.
const SEC_PRUNE_META: &str = "prune.meta";
const SEC_PRUNE_MEMBERS: &str = "prune.members";
const SEC_PRUNE_CENTROIDS: &str = "prune.centroids";
const SEC_PRUNE_RADII: &str = "prune.radii";
const SEC_PRUNE_CONCEPT_CENTROIDS: &str = "prune.concept_centroids";
const SEC_PRUNE_CONCEPT_RADII: &str = "prune.concept_radii";
const SEC_QUANT_ROWS: &str = "quant.rows";
const SEC_QUANT_SCALES: &str = "quant.scales";

/// The O(vocabulary) sections a mapped load does **not** checksum, so
/// cold-start stays flat in artifact size. Everything else — header,
/// directory, and every other section — is verified on every load;
/// `thor inspect` verifies these too.
pub const ENGINE_LAZY_SECTIONS: &[&str] = &[
    SEC_STORE_OFFS,
    SEC_STORE_WORDS,
    SEC_STORE_ROWS,
    SEC_CAND_WORD_OFFS,
    SEC_CAND_WORDS,
    SEC_CAND_SIMS,
];

pub(crate) struct EngineInner {
    pub(crate) config: ThorConfig,
    pub(crate) store: Arc<VectorStore>,
    pub(crate) table: Arc<Table>,
    pub(crate) subjects: Vec<String>,
    pub(crate) prep: Arc<PreparedMatcher>,
    pub(crate) matcher: SimilarityMatcher,
    pub(crate) dictionary: Arc<DictionaryIndex>,
    /// FNV-1a digests of the store text and table CSV, computed once at
    /// build time and reused by cheap derivations (`with_tau`).
    pub(crate) store_digest: u64,
    pub(crate) table_digest: u64,
    pub(crate) fingerprint: String,
    /// How many deltas separate this engine from a from-scratch build:
    /// 0 for `Thor::prepare` and plain loads, `parent + 1` after
    /// [`PreparedEngine::apply_delta`], the chain depth after loading a
    /// delta chain. Runtime provenance only — never part of the
    /// fingerprint (a delta-evolved engine is bit-identical to the
    /// fresh build of the same state).
    pub(crate) chain_depth: usize,
    pub(crate) prepare_time: Duration,
    pub(crate) metrics: Option<PipelineMetrics>,
}

impl std::fmt::Debug for EngineInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedEngine")
            .field("tau", &self.config.tau)
            .field("concepts", &self.prep.concept_names().len())
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

/// An immutable, `Arc`-shared bundle of everything the serve path
/// needs. Cloning is a refcount bump; the engine can be shared across
/// threads, calls, and (via [`PreparedEngine::with_tau`]) τ values.
#[derive(Clone, Debug)]
pub struct PreparedEngine {
    pub(crate) inner: Arc<EngineInner>,
}

/// The `(concept, instances)` pairs fine-tuning runs on, in schema
/// order.
pub(crate) fn concept_instances(table: &Table) -> Vec<(String, Vec<String>)> {
    table
        .schema()
        .concepts()
        .iter()
        .map(|c| (c.name().to_string(), table.column_values(c.name())))
        .collect()
}

/// Semantic fingerprint of an engine: every configuration field that
/// can change serve output (τ, weights, subphrase/expansion caps,
/// segmentation, chunking, context gate) plus digests of the table and
/// the vector store. `threads` and `cache_capacity` are deliberately
/// excluded — both are output-neutral execution knobs.
pub(crate) fn engine_fingerprint(
    config: &ThorConfig,
    table_digest: u64,
    store_digest: u64,
) -> String {
    let parts: Vec<String> = vec![
        format!("tau={:016x}", config.tau.to_bits()),
        format!("subphrase={}", config.max_subphrase_words),
        format!("expansion={}", config.max_expansion),
        format!("gate={:?}", config.context_gate.map(f64::to_bits)),
        format!("seg={:?}", config.segmentation),
        format!("np={}", config.np_chunking),
        format!(
            "weights={:016x},{:016x},{:016x}",
            config.weights.semantic.to_bits(),
            config.weights.word.to_bits(),
            config.weights.char.to_bits()
        ),
        format!("table={table_digest:016x}"),
        format!("store={store_digest:016x}"),
    ];
    thor_fault::fingerprint(parts)
}

impl Thor {
    /// **Build** the prepared engine for `table`: run Preparation once
    /// (fine-tune the semantic matcher, freeze the expansion
    /// candidates, compile the dictionary automaton) and return the
    /// immutable bundle every serve call borrows.
    ///
    /// Records one `pipeline.prepare` span into the attached metrics,
    /// exactly like the one-shot entry points used to.
    pub fn prepare(&self, table: &Table) -> PreparedEngine {
        let run = self.run_metrics();
        let (inner, prepare_time) = run.prepare.time(|| {
            let concepts = concept_instances(table);
            let matcher_config = self.config().matcher_config();
            let prep = PreparedMatcher::prepare(
                &concepts,
                Arc::clone(self.store_arc()),
                matcher_config.clone(),
            );
            let matcher = prep.matcher_at(matcher_config, self.metrics().cloned());
            let dictionary = DictionaryIndex::from_concepts(concepts);
            let table_csv = thor_data::to_csv(table);
            let store_digest = fnv1a(self.store().to_text().as_bytes());
            let table_digest = fnv1a(table_csv.as_bytes());
            EngineInner {
                fingerprint: engine_fingerprint(self.config(), table_digest, store_digest),
                config: self.config().clone(),
                store: Arc::clone(self.store_arc()),
                table: Arc::new(table.clone()),
                subjects: table.subjects().map(str::to_string).collect(),
                prep: Arc::new(prep),
                matcher,
                dictionary: Arc::new(dictionary),
                store_digest,
                table_digest,
                chain_depth: 0,
                prepare_time: Duration::ZERO,
                metrics: self.metrics().cloned(),
            }
        });
        let mut inner = inner;
        inner.prepare_time = prepare_time;
        PreparedEngine {
            inner: Arc::new(inner),
        }
    }
}

impl PreparedEngine {
    /// The metrics handle serve calls record into: the attached one, or
    /// an ephemeral throwaway so stage timing always has somewhere to
    /// go.
    pub(crate) fn run_metrics(&self) -> PipelineMetrics {
        self.inner.metrics.clone().unwrap_or_default()
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &ThorConfig {
        &self.inner.config
    }

    /// The fine-tuned semantic matcher (clusters + index + cache).
    pub fn matcher(&self) -> &SimilarityMatcher {
        &self.inner.matcher
    }

    /// The frozen Preparation output the matcher was derived from.
    pub fn prepared_matcher(&self) -> &PreparedMatcher {
        &self.inner.prep
    }

    /// The dictionary baseline's Aho–Corasick automaton over the
    /// table's instances.
    pub fn dictionary(&self) -> &Arc<DictionaryIndex> {
        &self.inner.dictionary
    }

    /// The integrated table the engine was built from.
    pub fn table(&self) -> &Table {
        &self.inner.table
    }

    /// The table's subject instances, in row order.
    pub fn subjects(&self) -> &[String] {
        &self.inner.subjects
    }

    /// The shared vector store.
    pub fn store(&self) -> &Arc<VectorStore> {
        &self.inner.store
    }

    /// Semantic fingerprint of (config, table, store) — what
    /// [`PreparedEngine::load`] verifies.
    pub fn fingerprint(&self) -> &str {
        &self.inner.fingerprint
    }

    /// Wall-clock time of the Preparation (or derivation / load) that
    /// produced this engine.
    pub fn prepare_time(&self) -> Duration {
        self.inner.prepare_time
    }

    /// The τ the engine currently serves at.
    pub fn tau(&self) -> f64 {
        self.inner.config.tau
    }

    /// How many deltas separate this engine from a from-scratch build:
    /// 0 for [`Thor::prepare`] and plain artifact loads, one more than
    /// the source engine after every [`PreparedEngine::apply_delta`],
    /// and the chain depth after loading a delta chain. Provenance
    /// only — output and fingerprint are independent of it.
    pub fn chain_depth(&self) -> usize {
        self.inner.chain_depth
    }

    /// Derive an engine at a different τ.
    ///
    /// For τ ≥ the τ the Preparation ran at, this is the cheap path the
    /// sweep harness exploits: the frozen candidate lists are filtered
    /// (τ-monotonicity — no vocabulary re-scan, no store copy) and the
    /// result is bit-identical to a full rebuild at τ. For τ *below*
    /// the base, candidates were never collected, so Preparation re-runs
    /// at the lower τ. Either way `prepare_time` reflects what this
    /// derivation actually cost.
    pub fn with_tau(&self, tau: f64) -> PreparedEngine {
        assert!(
            TAU_RANGE.contains(&tau),
            "tau must be in [0, 1] (TAU_RANGE)"
        );
        let mut config = self.inner.config.clone();
        config.tau = tau;
        if tau < self.inner.prep.base().tau {
            // Below the prepared base: the expansion must be re-scanned.
            let thor = Thor::new(Arc::clone(&self.inner.store), config);
            let thor = match &self.inner.metrics {
                Some(m) => thor.with_metrics(m.clone()),
                None => thor,
            };
            return thor.prepare(&self.inner.table);
        }
        let run = self.run_metrics();
        let (matcher, prepare_time) = run.prepare.time(|| {
            self.inner
                .prep
                .matcher_at(config.matcher_config(), self.inner.metrics.clone())
        });
        PreparedEngine {
            inner: Arc::new(EngineInner {
                fingerprint: engine_fingerprint(
                    &config,
                    self.inner.table_digest,
                    self.inner.store_digest,
                ),
                config,
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                matcher,
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                chain_depth: self.inner.chain_depth,
                prepare_time,
                metrics: self.inner.metrics.clone(),
            }),
        }
    }

    /// The same engine with a different worker-thread count. Threads
    /// are an execution knob, not a model parameter: output and
    /// fingerprint are unchanged.
    pub fn with_threads(&self, threads: usize) -> PreparedEngine {
        let mut config = self.inner.config.clone();
        config.threads = threads;
        PreparedEngine {
            inner: Arc::new(EngineInner {
                config,
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                matcher: self.inner.matcher.clone(),
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                fingerprint: self.inner.fingerprint.clone(),
                chain_depth: self.inner.chain_depth,
                prepare_time: self.inner.prepare_time,
                metrics: self.inner.metrics.clone(),
            }),
        }
    }

    /// The same engine scoring refinement with the documented reference
    /// implementations (`true`) or the allocation-free kernels
    /// (`false`, the default). The two paths are bit-identical, so like
    /// `threads` this is an execution knob: output and fingerprint are
    /// unchanged.
    pub fn with_reference_refine(&self, reference: bool) -> PreparedEngine {
        let mut config = self.inner.config.clone();
        config.reference_refine = reference;
        PreparedEngine {
            inner: Arc::new(EngineInner {
                config,
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                matcher: self.inner.matcher.clone(),
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                fingerprint: self.inner.fingerprint.clone(),
                chain_depth: self.inner.chain_depth,
                prepare_time: self.inner.prepare_time,
                metrics: self.inner.metrics.clone(),
            }),
        }
    }

    /// The same engine with a different candidate-pruning mode. `Exact`
    /// (the default) and `Off` are bit-identical to each other —
    /// bound-based skipping only drops scans that provably cannot win —
    /// so like `threads` they are execution knobs: output and
    /// fingerprint are unchanged. `Approx { margin }` pre-screens rows
    /// with the i8-quantized copy and may miss candidates whose exact
    /// similarity exceeds τ by less than the quantization error the
    /// margin fails to cover; it shares the fingerprint because the
    /// artifact bytes are mode-independent, but serve output may
    /// differ. The matcher's phrase cache is restarted so entries
    /// admitted under one mode never serve another.
    pub fn with_prune(&self, prune: PruneMode) -> PreparedEngine {
        let mut config = self.inner.config.clone();
        config.prune = prune;
        PreparedEngine {
            inner: Arc::new(EngineInner {
                matcher: self.inner.matcher.with_prune_mode(prune),
                config,
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                fingerprint: self.inner.fingerprint.clone(),
                chain_depth: self.inner.chain_depth,
                prepare_time: self.inner.prepare_time,
                metrics: self.inner.metrics.clone(),
            }),
        }
    }

    /// Attach an observability handle. The matcher is re-derived from
    /// the frozen Preparation with the handle installed, so fine-tune
    /// statistics (vocabulary size, expansion counts, representative
    /// counts, index rows) are recorded exactly as an in-memory build
    /// records them — this is what makes a loaded engine's metrics
    /// match the in-memory path. Output is unaffected.
    pub fn with_metrics(&self, metrics: PipelineMetrics) -> PreparedEngine {
        let (matcher, _) = metrics.prepare.time(|| {
            self.inner
                .prep
                .matcher_at(self.inner.config.matcher_config(), Some(metrics.clone()))
        });
        PreparedEngine {
            inner: Arc::new(EngineInner {
                config: self.inner.config.clone(),
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                matcher,
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                fingerprint: self.inner.fingerprint.clone(),
                chain_depth: self.inner.chain_depth,
                prepare_time: self.inner.prepare_time,
                metrics: Some(metrics),
            }),
        }
    }

    /// Extract entities from `docs`, deduplicated per (document,
    /// concept, phrase). Returns the entities and the inference time.
    /// Document-parallel for `config.threads > 1` via the shared
    /// [`WorkerPool`]; output is identical for any thread count.
    pub fn extract(&self, docs: &[Document]) -> (Vec<ExtractedEntity>, Duration) {
        let run = self.run_metrics();
        run.inference.time(|| self.extract_entities(&run, docs))
    }

    /// Segmentation + extraction + dedup, outside any timing span.
    pub(crate) fn extract_entities(
        &self,
        run: &PipelineMetrics,
        docs: &[Document],
    ) -> Vec<ExtractedEntity> {
        let inner = &*self.inner;
        // One `ScoreScratch` per worker: refinement's DP buffers and
        // token spans are reused across every document a worker drains.
        let per_doc = |doc: &Document, scratch: &mut ScoreScratch| {
            run.docs.inc();
            let segments = segment_metered(
                doc,
                &inner.subjects,
                &inner.matcher,
                inner.config.segmentation,
                run,
            );
            extract_entities_with(
                &segments,
                &inner.matcher,
                &inner.config,
                &doc.id,
                Some(run),
                scratch,
            )
        };
        let mut entities: Vec<ExtractedEntity> = if inner.config.threads <= 1 || docs.len() < 2 {
            let mut scratch = ScoreScratch::new();
            docs.iter()
                .flat_map(|doc| per_doc(doc, &mut scratch))
                .collect()
        } else {
            let workers = inner.config.threads.min(docs.len());
            let next = AtomicUsize::new(0);
            let buckets: Mutex<Vec<Vec<ExtractedEntity>>> = Mutex::new(Vec::new());
            WorkerPool::global().scope(workers, |scope| {
                for _ in 0..workers {
                    let (next, buckets, per_doc) = (&next, &buckets, &per_doc);
                    scope.spawn(move || {
                        let mut scratch = ScoreScratch::new();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(doc) = docs.get(i) else { break };
                            out.extend(per_doc(doc, &mut scratch));
                        }
                        buckets.lock().unwrap().push(out);
                    });
                }
            });
            buckets
                .into_inner()
                .unwrap()
                .into_iter()
                .flatten()
                .collect()
        };
        // Deduplicate, keeping the best-scoring instance of each key —
        // the total order makes output independent of work partitioning.
        dedup_entities(&mut entities);
        entities
    }

    /// Run the serve side of the full pipeline: Entity Extraction and
    /// Slot Filling over the engine's table. One `Table` clone, filled
    /// in place.
    pub fn enrich(&self, docs: &[Document]) -> EnrichmentResult {
        let run = self.run_metrics();
        let (entities, mut inference_time) =
            run.inference.time(|| self.extract_entities(&run, docs));
        let mut enriched = (*self.inner.table).clone();
        let t = std::time::Instant::now();
        let slot_stats = slot_fill_metered(&mut enriched, &entities, &run);
        inference_time += t.elapsed();
        EnrichmentResult {
            table: enriched,
            entities,
            slot_stats,
            prepare_time: self.inner.prepare_time,
            inference_time,
        }
    }

    /// Start a streaming enrichment session backed by this engine: the
    /// already-fine-tuned matcher is shared, documents are processed
    /// incrementally, and the session's working table starts as a copy
    /// of the engine's.
    pub fn session(&self) -> EnrichmentSession {
        EnrichmentSession::new(self.clone())
    }

    /// Persist the engine to `path` as a versioned binary artifact
    /// (atomic write; magic + format version + FNV-1a checksum header).
    ///
    /// The payload stores the *inputs plus the expensive intermediate*:
    /// configuration, vector store (exact `f32` bit patterns), table
    /// CSV, and the untruncated τ-expansion candidate lists (exact
    /// `f64` bit patterns). Derived structures — seeds, clusters,
    /// vector index, automaton, phrase cache — are rebuilt at load
    /// through the same constructors, which is what makes the loaded
    /// engine byte-identical.
    pub fn save(&self, path: &Path) -> ThorResult<()> {
        let mut sections = SectionWriter::new();
        for (name, version, bytes) in self.engine_sections() {
            sections.add(name, version, &bytes);
        }
        atomic_write(path, &sections.finish())
    }

    /// The engine's artifact payload as `(section, version, bytes)`
    /// triples in canonical save order — what [`PreparedEngine::save`]
    /// writes and what [`PreparedEngine::save_delta`] byte-diffs
    /// against a parent chain. Deterministic: two engines in the same
    /// state produce identical triples.
    pub(crate) fn engine_sections(&self) -> Vec<(&'static str, u32, Vec<u8>)> {
        let inner = &*self.inner;
        let mut sections: Vec<(&'static str, u32, Vec<u8>)> = Vec::with_capacity(16);

        // meta: config + preparation base + shape + digests + fingerprint.
        let mut w = ByteWriter::new();
        write_config(&mut w, &inner.config);
        let base = inner.prep.base();
        w.put_f64(base.tau);
        w.put_u64(base.max_subphrase_words as u64);
        w.put_u64(base.max_expansion as u64);
        w.put_u64(base.cache_capacity as u64);
        w.put_u64(inner.store.dim() as u64);
        w.put_u64(inner.store.len() as u64);
        w.put_u64(inner.prep.concept_names().len() as u64);
        w.put_u64(inner.store_digest);
        w.put_u64(inner.table_digest);
        w.put_str(&inner.fingerprint);
        sections.push((SEC_META, 1, w.into_bytes()));

        sections.push((SEC_TABLE, 1, thor_data::to_csv(&inner.table).into_bytes()));

        // Vector store: sorted word pool + raw f32 rows, the exact
        // layout `VectorStore::from_frozen` borrows in place.
        let mut word_offs: Vec<u64> = vec![0];
        let mut word_bytes: Vec<u8> = Vec::new();
        let mut row_bytes: Vec<u8> = Vec::new();
        inner.store.for_each_sorted(|word, row| {
            word_bytes.extend_from_slice(word.as_bytes());
            word_offs.push(word_bytes.len() as u64);
            for &x in row {
                row_bytes.extend_from_slice(&x.to_le_bytes());
            }
        });
        sections.push((SEC_STORE_OFFS, 1, le_bytes_u64(&word_offs)));
        sections.push((SEC_STORE_WORDS, 1, word_bytes));
        sections.push((SEC_STORE_ROWS, 1, row_bytes));

        // Untruncated τ-expansion candidates, CSR across concepts.
        let (starts, sims, pool) = inner.prep.candidate_parts();
        sections.push((SEC_CAND_STARTS, 1, le_bytes_u64(&starts)));
        sections.push((SEC_CAND_SIMS, 1, le_bytes_f64(&sims)));
        sections.push((SEC_CAND_WORD_OFFS, 1, le_bytes_u64(pool.offsets())));
        sections.push((SEC_CAND_WORDS, 1, pool.bytes().to_vec()));

        // The fine-tuned VectorIndex at the engine's τ: row labels and
        // concept layout in a small meta blob, the hot arrays raw.
        let ix = inner.matcher.index();
        let mut w = ByteWriter::new();
        w.put_u64(ix.dim() as u64);
        w.put_u64(ix.row_count() as u64);
        for r in 0..ix.row_count() {
            w.put_str(ix.row_word(r));
        }
        w.put_u64(ix.concept_count() as u64);
        for (name, start, rows, seed_rows) in ix.concept_layout() {
            w.put_str(name);
            w.put_u64(start as u64);
            w.put_u64(rows as u64);
            w.put_u64(seed_rows as u64);
        }
        sections.push((SEC_IDX_META, 1, w.into_bytes()));
        sections.push((SEC_IDX_DATA, 1, le_bytes_f32(ix.data())));
        sections.push((SEC_IDX_NORMS, 1, le_bytes_f64(ix.norms())));
        sections.push((SEC_IDX_REPSUMS, 1, le_bytes_f32(ix.rep_sums())));

        // Dictionary automaton: the flat CSR arrays plus the pattern
        // table, reassembled through validating from_parts on load.
        let mut w = ByteWriter::new();
        let (edge_start, edge_bytes, edge_target, fail, out_start, out_pattern, pattern_lens, ci) =
            inner.dictionary.automaton().parts();
        w.put_u8(u8::from(ci));
        put_u32s(&mut w, edge_start);
        w.put_u64(edge_bytes.len() as u64);
        for &b in edge_bytes {
            w.put_u8(b);
        }
        put_u32s(&mut w, edge_target);
        put_u32s(&mut w, fail);
        put_u32s(&mut w, out_start);
        put_u32s(&mut w, out_pattern);
        put_u32s(&mut w, pattern_lens);
        let patterns = inner.dictionary.patterns();
        w.put_u64(patterns.len() as u64);
        for (concept, display) in patterns {
            w.put_str(concept);
            w.put_str(display);
        }
        sections.push((SEC_AUTOMATON, 1, w.into_bytes()));

        // Seed-syntax instances (sorted): the table is derived, this
        // section lets the load cross-check the derivation.
        let mut w = ByteWriter::new();
        let instances = inner.prep.seed_syntax().instances();
        w.put_u64(instances.len() as u64);
        for inst in instances {
            w.put_str(inst);
        }
        sections.push((SEC_SYNTAX, 1, w.into_bytes()));

        // Pruning index + quantized rows. Deterministic given the
        // VectorIndex (fixed k-means seed and iteration count), so a
        // delta-rebuilt engine serializes the same bytes as a fresh
        // build of the same state.
        let prune = inner.matcher.prune_index();
        sections.push((SEC_PRUNE_META, 1, prune.meta_bytes()));
        sections.push((SEC_PRUNE_MEMBERS, 1, le_bytes_u32(prune.members())));
        sections.push((SEC_PRUNE_CENTROIDS, 1, le_bytes_f32(prune.centroids())));
        sections.push((SEC_PRUNE_RADII, 1, le_bytes_f64(prune.radii())));
        sections.push((
            SEC_PRUNE_CONCEPT_CENTROIDS,
            1,
            le_bytes_f32(prune.concept_centroids()),
        ));
        sections.push((
            SEC_PRUNE_CONCEPT_RADII,
            1,
            le_bytes_f64(prune.concept_radii()),
        ));
        sections.push((SEC_QUANT_ROWS, 1, prune.quant_codes().to_vec()));
        sections.push((SEC_QUANT_SCALES, 1, le_bytes_f32(prune.quant_scales())));

        sections
    }

    /// Load an engine artifact written by [`PreparedEngine::save`],
    /// fully verified ([`MapMode::Owned`]): every section checksum is
    /// checked, and the store digest is recomputed.
    ///
    /// Rejects corrupt, truncated or version-mismatched files with
    /// named [`ThorError`]s before any state is built. The loaded
    /// engine has no metrics handle; attach one with
    /// [`PreparedEngine::with_metrics`].
    pub fn load(path: &Path) -> ThorResult<PreparedEngine> {
        Self::load_with(path, MapMode::Owned)
    }

    /// [`PreparedEngine::load`] with an explicit backing mode.
    ///
    /// [`MapMode::Mapped`] maps the artifact read-only and borrows the
    /// hot arrays (store rows/words, candidate lists, index buffers) in
    /// place: startup cost is independent of vocabulary size and N
    /// processes share one physical copy of the file. The structural
    /// layer (header, directory, bounds, alignment) and every small
    /// section are still verified; only the O(vocabulary) sections in
    /// [`ENGINE_LAZY_SECTIONS`] skip checksumming — corruption there is
    /// caught by `thor inspect` (which always verifies everything) and
    /// is memory-safe but garbage-in/garbage-out at serve time.
    /// Extraction output is bit-identical between the two modes.
    ///
    /// `path` may name a plain engine artifact **or a delta artifact**
    /// written by [`PreparedEngine::save_delta`]: the loader opens the
    /// whole parent chain, link-checks every delta (directory checksum
    /// at the container layer, engine fingerprint here — a stale or
    /// swapped base is a named `delta base mismatch`, never a checksum
    /// panic), and resolves each section against its topmost provider.
    /// The result is indistinguishable from loading the compacted
    /// artifact; [`PreparedEngine::chain_depth`] records how many
    /// deltas were stacked.
    pub fn load_with(path: &Path, mode: MapMode) -> ThorResult<PreparedEngine> {
        let t0 = std::time::Instant::now();
        let file = SectionChain::open(path, mode)?;
        match mode {
            MapMode::Owned => file.verify_all()?,
            MapMode::Mapped => file.verify_except(ENGINE_LAZY_SECTIONS)?,
        }
        // Link-check the semantic identity of every delta: its recorded
        // parent engine fingerprint must equal the fingerprint the
        // chain *prefix below it* resolves to. (`metas()[i]` is carried
        // by file i + 1 and links to the prefix ending at file i.)
        for (i, meta) in file.metas().iter().enumerate() {
            let prefix_meta = file
                .bytes_upto(SEC_META, i)
                .map_err(|e| e.context(format!("{}: engine meta section", path.display())))?;
            let found = meta_fingerprint(prefix_meta)
                .map_err(|e| e.context(format!("{}: engine meta section", path.display())))?;
            if meta.parent_fingerprint != found {
                return Err(ThorError::delta_base_mismatch(
                    file.paths()[i].display(),
                    format!("engine fingerprint {}", meta.parent_fingerprint),
                    format!("engine fingerprint {found}"),
                ));
            }
        }
        let total_len: usize = file.files().iter().map(|f| f.total_len()).sum();
        let ctx = |what: &str| {
            let what = what.to_string();
            let path = path.display().to_string();
            move |e: ThorError| e.context(format!("{path}: engine {what}"))
        };
        let invalid = |msg: String| ThorError::validation(format!("{}: {msg}", path.display()));

        // meta
        let mut r = ByteReader::new(file.bytes(SEC_META)?);
        let config = read_config(&mut r).map_err(ctx("meta section"))?;
        let meta = (|| -> ThorResult<_> {
            let base = MatcherConfig {
                tau: r.get_f64()?,
                max_subphrase_words: r.get_u64()? as usize,
                max_expansion: r.get_u64()? as usize,
                cache_capacity: r.get_u64()? as usize,
                // Execution knob, never persisted.
                prune: PruneMode::Exact,
            };
            let dim = r.get_u64()? as usize;
            let word_count = r.get_u64()? as usize;
            let concept_count = r.get_u64()? as usize;
            let store_digest = r.get_u64()?;
            let table_digest = r.get_u64()?;
            let fingerprint = r.get_str()?;
            r.finish("engine meta section")?;
            Ok((
                base,
                dim,
                word_count,
                concept_count,
                store_digest,
                table_digest,
                fingerprint,
            ))
        })()
        .map_err(ctx("meta section"))?;
        let (base, dim, word_count, concept_count, store_digest, table_digest, stored_fingerprint) =
            meta;
        if !TAU_RANGE.contains(&base.tau) {
            return Err(invalid(format!(
                "stored base tau {} outside [0, 1]",
                base.tau
            )));
        }

        // table (always verified against its digest — it is small).
        let table_csv = std::str::from_utf8(file.bytes(SEC_TABLE)?)
            .map_err(|e| invalid(format!("table section is not UTF-8: {e}")))?
            .to_string();
        if fnv1a(table_csv.as_bytes()) != table_digest {
            return Err(invalid(
                "table digest mismatch; artifact does not describe its own contents".to_string(),
            ));
        }
        let table = thor_data::from_csv(&table_csv)
            .map_err(|e| ThorError::parse(format!("{}: embedded table: {e}", path.display())))?;
        let concepts = concept_instances(&table);
        if concepts.len() != concept_count {
            return Err(invalid(format!(
                "artifact stores {concept_count} candidate lists for {} table concepts",
                concepts.len()
            )));
        }
        let fingerprint = engine_fingerprint(&config, table_digest, store_digest);
        if fingerprint != stored_fingerprint {
            return Err(invalid(format!(
                "engine fingerprint mismatch (stored {stored_fingerprint}, rebuilt \
                 {fingerprint}); artifact does not describe its own contents"
            )));
        }

        // Vector store: borrowed (mapped) or owned views over the
        // sorted word pool + raw rows.
        let store_words = file.pool(SEC_STORE_OFFS, SEC_STORE_WORDS)?;
        if store_words.len() != word_count {
            return Err(invalid(format!(
                "store word pool has {} words, meta declares {word_count}",
                store_words.len()
            )));
        }
        let store_rows = file.frozen_slice::<f32>(SEC_STORE_ROWS)?;
        let store = Arc::new(
            VectorStore::from_frozen(dim, store_words, store_rows)
                .map_err(ctx("store sections"))?,
        );
        if matches!(mode, MapMode::Owned) {
            // Owned loads pay the O(vocabulary) pass anyway; recompute
            // the digest as defense in depth. Mapped loads trust the
            // meta section's digest (itself checksummed) to stay flat.
            let recomputed = fnv1a(store.to_text().as_bytes());
            if recomputed != store_digest {
                return Err(invalid(format!(
                    "store digest mismatch (stored {store_digest:016x}, recomputed \
                     {recomputed:016x})"
                )));
            }
        }

        // Candidate lists.
        let prep = PreparedMatcher::from_frozen_candidates(
            &concepts,
            Arc::clone(&store),
            base,
            file.frozen_slice::<u64>(SEC_CAND_STARTS)?,
            file.pool(SEC_CAND_WORD_OFFS, SEC_CAND_WORDS)?,
            file.frozen_slice::<f64>(SEC_CAND_SIMS)?,
        )
        .map_err(|m| invalid(format!("candidate sections: {m}")))?;

        // VectorIndex: labels + layout from the meta blob, hot arrays
        // borrowed from their sections.
        let mut r = ByteReader::new(file.bytes(SEC_IDX_META)?);
        let idx_meta = (|| -> ThorResult<_> {
            let idx_dim = r.get_u64()? as usize;
            let rows = r.get_u64()? as usize;
            let mut words = Vec::with_capacity(rows.min(total_len));
            for _ in 0..rows {
                words.push(r.get_str()?);
            }
            let n = r.get_u64()? as usize;
            let mut layout = Vec::with_capacity(n.min(total_len));
            for _ in 0..n {
                let name = r.get_str()?;
                let start = r.get_u64()? as usize;
                let crows = r.get_u64()? as usize;
                let seed_rows = r.get_u64()? as usize;
                layout.push((name, start, crows, seed_rows));
            }
            r.finish("engine index meta section")?;
            Ok((idx_dim, words, layout))
        })()
        .map_err(ctx("index meta section"))?;
        let (idx_dim, idx_words, idx_layout) = idx_meta;
        let index = thor_index::VectorIndex::from_parts(
            idx_dim,
            file.frozen_slice::<f32>(SEC_IDX_DATA)?,
            file.frozen_slice::<f64>(SEC_IDX_NORMS)?,
            file.frozen_slice::<f32>(SEC_IDX_REPSUMS)?,
            idx_words,
            idx_layout,
        )
        .map_err(|m| invalid(format!("index sections: {m}")))?;
        // Pruning sections: present in artifacts written at or after
        // this format revision — validated and borrowed in place.
        // Absent in older v2 artifacts — `matcher_with_index` rebuilds
        // the (deterministic) structures from the index instead, so old
        // artifacts keep loading with pruning fully enabled.
        let prune = match file.entry(SEC_PRUNE_META) {
            Some(_) => Some(Arc::new(
                thor_index::PruneIndex::from_parts(
                    &index,
                    file.bytes(SEC_PRUNE_META)?,
                    file.frozen_slice::<u32>(SEC_PRUNE_MEMBERS)?,
                    file.frozen_slice::<f32>(SEC_PRUNE_CENTROIDS)?,
                    file.frozen_slice::<f64>(SEC_PRUNE_RADII)?,
                    file.frozen_slice::<f32>(SEC_PRUNE_CONCEPT_CENTROIDS)?,
                    file.frozen_slice::<f64>(SEC_PRUNE_CONCEPT_RADII)?,
                    file.frozen_slice::<u8>(SEC_QUANT_ROWS)?,
                    file.frozen_slice::<f32>(SEC_QUANT_SCALES)?,
                )
                .map_err(|m| invalid(format!("prune sections: {m}")))?,
            )),
            None => None,
        };
        let matcher = prep
            .matcher_with_index(config.matcher_config(), None, index, prune)
            .map_err(|m| invalid(format!("index sections: {m}")))?;

        // Dictionary automaton.
        let mut r = ByteReader::new(file.bytes(SEC_AUTOMATON)?);
        let automaton = (|| -> ThorResult<_> {
            let case_insensitive = match r.get_u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(ThorError::parse(format!(
                        "bad case-insensitivity flag {other}"
                    )))
                }
            };
            let edge_start = get_u32s(&mut r)?;
            let n = r.get_u64()? as usize;
            let mut edge_bytes = Vec::with_capacity(n.min(total_len));
            for _ in 0..n {
                edge_bytes.push(r.get_u8()?);
            }
            let edge_target = get_u32s(&mut r)?;
            let fail = get_u32s(&mut r)?;
            let out_start = get_u32s(&mut r)?;
            let out_pattern = get_u32s(&mut r)?;
            let pattern_lens = get_u32s(&mut r)?;
            let n = r.get_u64()? as usize;
            let mut patterns = Vec::with_capacity(n.min(total_len));
            for _ in 0..n {
                let concept = r.get_str()?;
                let display = r.get_str()?;
                patterns.push((concept, display));
            }
            r.finish("engine automaton section")?;
            let automaton = thor_index::AhoCorasick::from_parts(
                edge_start,
                edge_bytes,
                edge_target,
                fail,
                out_start,
                out_pattern,
                pattern_lens,
                case_insensitive,
            )
            .map_err(ThorError::validation)?;
            DictionaryIndex::from_parts(automaton, patterns).map_err(ThorError::validation)
        })()
        .map_err(ctx("automaton section"))?;

        // Seed-syntax cross-check: the table is derived from the seeds;
        // the stored instance list pins the derivation.
        let mut r = ByteReader::new(file.bytes(SEC_SYNTAX)?);
        let stored_instances = (|| -> ThorResult<_> {
            let n = r.get_u64()? as usize;
            let mut out = Vec::with_capacity(n.min(total_len));
            for _ in 0..n {
                out.push(r.get_str()?);
            }
            r.finish("engine seed-syntax section")?;
            Ok(out)
        })()
        .map_err(ctx("seed-syntax section"))?;
        let derived_instances: Vec<String> = prep
            .seed_syntax()
            .instances()
            .into_iter()
            .map(str::to_string)
            .collect();
        if stored_instances != derived_instances {
            return Err(invalid(format!(
                "seed-syntax section lists {} instances but the derivation produced {}; \
                 artifact does not describe its own contents",
                stored_instances.len(),
                derived_instances.len()
            )));
        }

        Ok(PreparedEngine {
            inner: Arc::new(EngineInner {
                config,
                subjects: table.subjects().map(str::to_string).collect(),
                table: Arc::new(table),
                store,
                prep: Arc::new(prep),
                matcher,
                dictionary: Arc::new(automaton),
                store_digest,
                table_digest,
                fingerprint,
                chain_depth: file.depth(),
                prepare_time: t0.elapsed(),
                metrics: None,
            }),
        })
    }
}

/// The engine fingerprint stored in a `meta` section payload, without
/// building anything — what the chain loader and
/// [`PreparedEngine::save_delta`] link deltas by.
pub(crate) fn meta_fingerprint(bytes: &[u8]) -> ThorResult<String> {
    let mut r = ByteReader::new(bytes);
    read_config(&mut r)?;
    r.get_f64()?; // preparation base tau
    for _ in 0..3 {
        r.get_u64()?; // base subphrase / expansion / cache caps
    }
    for _ in 0..5 {
        r.get_u64()?; // dim, word count, concept count, two digests
    }
    let fingerprint = r.get_str()?;
    r.finish("engine meta section")?;
    Ok(fingerprint)
}

/// Little-endian byte images of numeric arrays — the exact layout the
/// frozen views reinterpret in place (the loader rejects big-endian
/// hosts up front).
fn le_bytes_u64(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn le_bytes_f64(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn le_bytes_f32(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn le_bytes_u32(v: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn put_u32s(w: &mut ByteWriter, v: &[u32]) {
    w.put_u64(v.len() as u64);
    for &x in v {
        w.put_u32(x);
    }
}

fn get_u32s(r: &mut ByteReader<'_>) -> ThorResult<Vec<u32>> {
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(r.get_u32()?);
    }
    Ok(out)
}

fn write_config(w: &mut ByteWriter, c: &ThorConfig) {
    w.put_f64(c.tau);
    w.put_f64(c.weights.semantic);
    w.put_f64(c.weights.word);
    w.put_f64(c.weights.char);
    w.put_u64(c.max_subphrase_words as u64);
    w.put_u64(c.max_expansion as u64);
    w.put_u64(c.cache_capacity as u64);
    w.put_u8(match c.segmentation {
        SegmentationMode::MentionCarryForward => 0,
        SegmentationMode::SemanticOnly => 1,
        SegmentationMode::MentionOnly => 2,
    });
    w.put_u8(u8::from(c.np_chunking));
    match c.context_gate {
        Some(gate) => {
            w.put_u8(1);
            w.put_f64(gate);
        }
        None => w.put_u8(0),
    }
    w.put_u64(c.threads as u64);
}

fn read_config(r: &mut ByteReader<'_>) -> ThorResult<ThorConfig> {
    let tau = r.get_f64()?;
    let weights = ScoreWeights {
        semantic: r.get_f64()?,
        word: r.get_f64()?,
        char: r.get_f64()?,
    };
    let max_subphrase_words = r.get_u64()? as usize;
    let max_expansion = r.get_u64()? as usize;
    let cache_capacity = r.get_u64()? as usize;
    let segmentation = match r.get_u8()? {
        0 => SegmentationMode::MentionCarryForward,
        1 => SegmentationMode::SemanticOnly,
        2 => SegmentationMode::MentionOnly,
        other => {
            return Err(ThorError::parse(format!(
                "unknown segmentation mode tag {other}"
            )))
        }
    };
    let np_chunking = match r.get_u8()? {
        0 => false,
        1 => true,
        other => return Err(ThorError::parse(format!("bad np_chunking flag {other}"))),
    };
    let context_gate = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_f64()?),
        other => return Err(ThorError::parse(format!("bad context_gate tag {other}"))),
    };
    let threads = r.get_u64()? as usize;
    if !TAU_RANGE.contains(&tau) {
        return Err(ThorError::validation(format!(
            "stored tau {tau} outside [0, 1]"
        )));
    }
    Ok(ThorConfig {
        tau,
        weights,
        max_subphrase_words,
        max_expansion,
        cache_capacity,
        segmentation,
        np_chunking,
        context_gate,
        threads,
        // Execution knobs are not persisted (the artifact format is
        // unchanged): a loaded engine starts from the defaults.
        early_abandon: true,
        reference_refine: false,
        prune: thor_match::PruneMode::Exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_data::Schema;
    use thor_embed::SemanticSpaceBuilder;

    fn setup() -> (Thor, Table, Vec<Document>) {
        let store = SemanticSpaceBuilder::new(24, 5)
            .topic("anatomy")
            .words("anatomy", ["lungs", "brain", "skin", "nerve"])
            .generic_words(["damages", "grows"])
            .build()
            .into_store();
        let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
        table.fill_slot("Tuberculosis", "Anatomy", "lungs");
        table.row_for_subject("Acne");
        let docs = vec![
            Document::new("d0", "Tuberculosis damages the lungs and the brain."),
            Document::new("d1", "Acne grows on the skin."),
        ];
        (Thor::new(store, ThorConfig::with_tau(0.6)), table, docs)
    }

    #[test]
    fn prepared_engine_matches_one_shot_enrich() {
        let (thor, table, docs) = setup();
        let one_shot = thor.enrich(&table, &docs);
        let engine = thor.prepare(&table);
        let served = engine.enrich(&docs);
        assert_eq!(served.entities, one_shot.entities);
        assert_eq!(
            thor_data::to_csv(&served.table),
            thor_data::to_csv(&one_shot.table)
        );
        // Reuse: a second serve call off the same engine is identical.
        let again = engine.enrich(&docs);
        assert_eq!(again.entities, one_shot.entities);
    }

    #[test]
    fn with_tau_derivation_matches_fresh_build() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        for tau in [0.6, 0.7, 0.85, 1.0] {
            let derived = engine.with_tau(tau);
            let fresh = Thor::new(Arc::clone(engine.store()), ThorConfig::with_tau(tau));
            let expected = fresh.enrich(&table, &docs);
            let got = derived.enrich(&docs);
            assert_eq!(got.entities, expected.entities, "tau {tau}");
            assert_eq!(
                thor_data::to_csv(&got.table),
                thor_data::to_csv(&expected.table),
                "tau {tau}"
            );
        }
    }

    #[test]
    fn with_tau_below_base_re_prepares() {
        let (thor, table, docs) = setup();
        let high = Thor::new(Arc::clone(thor.store_arc()), ThorConfig::with_tau(0.9));
        let engine = high.prepare(&table);
        let lowered = engine.with_tau(0.6);
        let expected = thor.enrich(&table, &docs);
        assert_eq!(lowered.enrich(&docs).entities, expected.entities);
    }

    #[test]
    fn save_load_round_trip_is_byte_identical() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        let dir = std::env::temp_dir().join(format!("thor-engine-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.thor");
        engine.save(&path).unwrap();
        let loaded = PreparedEngine::load(&path).unwrap();
        assert_eq!(loaded.fingerprint(), engine.fingerprint());
        assert_eq!(loaded.tau(), engine.tau());
        let a = engine.enrich(&docs);
        let b = loaded.enrich(&docs);
        assert_eq!(a.entities, b.entities);
        assert_eq!(thor_data::to_csv(&a.table), thor_data::to_csv(&b.table));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_tau() {
        let (thor, table, _) = setup();
        let engine = thor.prepare(&table);
        assert_eq!(
            engine.with_threads(8).fingerprint(),
            engine.fingerprint(),
            "threads are output-neutral"
        );
        assert_ne!(engine.with_tau(0.9).fingerprint(), engine.fingerprint());
    }

    #[test]
    fn engine_session_streams_like_batch() {
        let (thor, table, docs) = setup();
        let batch = thor.enrich(&table, &docs);
        let engine = thor.prepare(&table);
        let mut session = engine.session();
        for d in &docs {
            session.process(d);
        }
        assert_eq!(session.entities().len(), batch.entities.len());
        assert_eq!(
            session.finish().instance_count(),
            batch.table.instance_count()
        );
    }
}
