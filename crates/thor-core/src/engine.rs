//! The build/serve split: a frozen, persistable, `Arc`-shared
//! [`PreparedEngine`].
//!
//! THOR's Preparation phase (seed collection + τ-expansion + index
//! build) depends only on the integrated table, the vector store and
//! the configuration — not on the documents being served. The engine
//! freezes that output once, behind [`Thor::prepare`]:
//!
//! * the fine-tuned [`SimilarityMatcher`] (concept clusters + expanded
//!   `VectorIndex` + interning phrase cache),
//! * the [`PreparedMatcher`] it was derived from (the untruncated
//!   τ-expansion candidates, so any τ′ ≥ the build τ derives in
//!   microseconds instead of re-scanning the vocabulary),
//! * the dictionary baseline's Aho–Corasick [`DictionaryIndex`],
//! * the subject list, the table, and the `Arc<VectorStore>`.
//!
//! Every serve entry point — [`PreparedEngine::extract`],
//! [`PreparedEngine::enrich`], [`PreparedEngine::session`],
//! [`PreparedEngine::enrich_resilient`] — borrows this immutable bundle;
//! none re-runs `fine_tune` or deep-copies the store. [`Thor::extract`]
//! and friends are now thin prepare-then-serve wrappers.
//!
//! The engine also persists: [`PreparedEngine::save`] writes a
//! versioned binary artifact (magic + format version + FNV-1a checksum,
//! via `thor_fault::atomic_io`) and [`PreparedEngine::load`] rebuilds an
//! engine that produces **byte-identical** output — derived structures
//! (seeds, clusters, indexes, automaton) are reconstructed through the
//! exact constructor path the in-memory build uses, and a semantic
//! fingerprint of store/table/config is verified on load.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use thor_data::Table;
use thor_embed::{Vector, VectorStore};
use thor_fault::{
    fnv1a, read_artifact, write_artifact, ByteReader, ByteWriter, ThorError, ThorResult,
};
use thor_index::DictionaryIndex;
use thor_match::{MatcherConfig, PreparedMatcher, SimilarityMatcher, TAU_RANGE};
use thor_obs::PipelineMetrics;
use thor_text::ScoreScratch;

use crate::config::{ScoreWeights, SegmentationMode, ThorConfig};
use crate::document::Document;
use crate::entity::ExtractedEntity;
use crate::extract::extract_entities_with;
use crate::pipeline::{dedup_entities, EnrichmentResult, EnrichmentSession, Thor};
use crate::pool::WorkerPool;
use crate::segment::segment_metered;
use crate::slotfill::slot_fill_metered;

/// Magic bytes opening an engine artifact file.
pub const ENGINE_MAGIC: &[u8; 8] = b"THORENG\0";
/// On-disk format version of the engine artifact payload.
pub const ENGINE_FORMAT_VERSION: u32 = 1;

pub(crate) struct EngineInner {
    config: ThorConfig,
    store: Arc<VectorStore>,
    table: Arc<Table>,
    subjects: Vec<String>,
    prep: Arc<PreparedMatcher>,
    matcher: SimilarityMatcher,
    dictionary: Arc<DictionaryIndex>,
    /// FNV-1a digests of the store text and table CSV, computed once at
    /// build time and reused by cheap derivations (`with_tau`).
    store_digest: u64,
    table_digest: u64,
    fingerprint: String,
    prepare_time: Duration,
    metrics: Option<PipelineMetrics>,
}

impl std::fmt::Debug for EngineInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedEngine")
            .field("tau", &self.config.tau)
            .field("concepts", &self.prep.concept_names().len())
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

/// An immutable, `Arc`-shared bundle of everything the serve path
/// needs. Cloning is a refcount bump; the engine can be shared across
/// threads, calls, and (via [`PreparedEngine::with_tau`]) τ values.
#[derive(Clone, Debug)]
pub struct PreparedEngine {
    inner: Arc<EngineInner>,
}

/// The `(concept, instances)` pairs fine-tuning runs on, in schema
/// order.
pub(crate) fn concept_instances(table: &Table) -> Vec<(String, Vec<String>)> {
    table
        .schema()
        .concepts()
        .iter()
        .map(|c| (c.name().to_string(), table.column_values(c.name())))
        .collect()
}

/// Semantic fingerprint of an engine: every configuration field that
/// can change serve output (τ, weights, subphrase/expansion caps,
/// segmentation, chunking, context gate) plus digests of the table and
/// the vector store. `threads` and `cache_capacity` are deliberately
/// excluded — both are output-neutral execution knobs.
fn engine_fingerprint(config: &ThorConfig, table_digest: u64, store_digest: u64) -> String {
    let parts: Vec<String> = vec![
        format!("tau={:016x}", config.tau.to_bits()),
        format!("subphrase={}", config.max_subphrase_words),
        format!("expansion={}", config.max_expansion),
        format!("gate={:?}", config.context_gate.map(f64::to_bits)),
        format!("seg={:?}", config.segmentation),
        format!("np={}", config.np_chunking),
        format!(
            "weights={:016x},{:016x},{:016x}",
            config.weights.semantic.to_bits(),
            config.weights.word.to_bits(),
            config.weights.char.to_bits()
        ),
        format!("table={table_digest:016x}"),
        format!("store={store_digest:016x}"),
    ];
    thor_fault::fingerprint(parts)
}

impl Thor {
    /// **Build** the prepared engine for `table`: run Preparation once
    /// (fine-tune the semantic matcher, freeze the expansion
    /// candidates, compile the dictionary automaton) and return the
    /// immutable bundle every serve call borrows.
    ///
    /// Records one `pipeline.prepare` span into the attached metrics,
    /// exactly like the one-shot entry points used to.
    pub fn prepare(&self, table: &Table) -> PreparedEngine {
        let run = self.run_metrics();
        let (inner, prepare_time) = run.prepare.time(|| {
            let concepts = concept_instances(table);
            let matcher_config = self.config().matcher_config();
            let prep = PreparedMatcher::prepare(
                &concepts,
                Arc::clone(self.store_arc()),
                matcher_config.clone(),
            );
            let matcher = prep.matcher_at(matcher_config, self.metrics().cloned());
            let dictionary = DictionaryIndex::from_concepts(concepts);
            let table_csv = thor_data::to_csv(table);
            let store_digest = fnv1a(self.store().to_text().as_bytes());
            let table_digest = fnv1a(table_csv.as_bytes());
            EngineInner {
                fingerprint: engine_fingerprint(self.config(), table_digest, store_digest),
                config: self.config().clone(),
                store: Arc::clone(self.store_arc()),
                table: Arc::new(table.clone()),
                subjects: table.subjects().map(str::to_string).collect(),
                prep: Arc::new(prep),
                matcher,
                dictionary: Arc::new(dictionary),
                store_digest,
                table_digest,
                prepare_time: Duration::ZERO,
                metrics: self.metrics().cloned(),
            }
        });
        let mut inner = inner;
        inner.prepare_time = prepare_time;
        PreparedEngine {
            inner: Arc::new(inner),
        }
    }
}

impl PreparedEngine {
    /// The metrics handle serve calls record into: the attached one, or
    /// an ephemeral throwaway so stage timing always has somewhere to
    /// go.
    pub(crate) fn run_metrics(&self) -> PipelineMetrics {
        self.inner.metrics.clone().unwrap_or_default()
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &ThorConfig {
        &self.inner.config
    }

    /// The fine-tuned semantic matcher (clusters + index + cache).
    pub fn matcher(&self) -> &SimilarityMatcher {
        &self.inner.matcher
    }

    /// The frozen Preparation output the matcher was derived from.
    pub fn prepared_matcher(&self) -> &PreparedMatcher {
        &self.inner.prep
    }

    /// The dictionary baseline's Aho–Corasick automaton over the
    /// table's instances.
    pub fn dictionary(&self) -> &Arc<DictionaryIndex> {
        &self.inner.dictionary
    }

    /// The integrated table the engine was built from.
    pub fn table(&self) -> &Table {
        &self.inner.table
    }

    /// The table's subject instances, in row order.
    pub fn subjects(&self) -> &[String] {
        &self.inner.subjects
    }

    /// The shared vector store.
    pub fn store(&self) -> &Arc<VectorStore> {
        &self.inner.store
    }

    /// Semantic fingerprint of (config, table, store) — what
    /// [`PreparedEngine::load`] verifies.
    pub fn fingerprint(&self) -> &str {
        &self.inner.fingerprint
    }

    /// Wall-clock time of the Preparation (or derivation / load) that
    /// produced this engine.
    pub fn prepare_time(&self) -> Duration {
        self.inner.prepare_time
    }

    /// The τ the engine currently serves at.
    pub fn tau(&self) -> f64 {
        self.inner.config.tau
    }

    /// Derive an engine at a different τ.
    ///
    /// For τ ≥ the τ the Preparation ran at, this is the cheap path the
    /// sweep harness exploits: the frozen candidate lists are filtered
    /// (τ-monotonicity — no vocabulary re-scan, no store copy) and the
    /// result is bit-identical to a full rebuild at τ. For τ *below*
    /// the base, candidates were never collected, so Preparation re-runs
    /// at the lower τ. Either way `prepare_time` reflects what this
    /// derivation actually cost.
    pub fn with_tau(&self, tau: f64) -> PreparedEngine {
        assert!(
            TAU_RANGE.contains(&tau),
            "tau must be in [0, 1] (TAU_RANGE)"
        );
        let mut config = self.inner.config.clone();
        config.tau = tau;
        if tau < self.inner.prep.base().tau {
            // Below the prepared base: the expansion must be re-scanned.
            let thor = Thor::new(Arc::clone(&self.inner.store), config);
            let thor = match &self.inner.metrics {
                Some(m) => thor.with_metrics(m.clone()),
                None => thor,
            };
            return thor.prepare(&self.inner.table);
        }
        let run = self.run_metrics();
        let (matcher, prepare_time) = run.prepare.time(|| {
            self.inner
                .prep
                .matcher_at(config.matcher_config(), self.inner.metrics.clone())
        });
        PreparedEngine {
            inner: Arc::new(EngineInner {
                fingerprint: engine_fingerprint(
                    &config,
                    self.inner.table_digest,
                    self.inner.store_digest,
                ),
                config,
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                matcher,
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                prepare_time,
                metrics: self.inner.metrics.clone(),
            }),
        }
    }

    /// The same engine with a different worker-thread count. Threads
    /// are an execution knob, not a model parameter: output and
    /// fingerprint are unchanged.
    pub fn with_threads(&self, threads: usize) -> PreparedEngine {
        let mut config = self.inner.config.clone();
        config.threads = threads;
        PreparedEngine {
            inner: Arc::new(EngineInner {
                config,
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                matcher: self.inner.matcher.clone(),
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                fingerprint: self.inner.fingerprint.clone(),
                prepare_time: self.inner.prepare_time,
                metrics: self.inner.metrics.clone(),
            }),
        }
    }

    /// The same engine scoring refinement with the documented reference
    /// implementations (`true`) or the allocation-free kernels
    /// (`false`, the default). The two paths are bit-identical, so like
    /// `threads` this is an execution knob: output and fingerprint are
    /// unchanged.
    pub fn with_reference_refine(&self, reference: bool) -> PreparedEngine {
        let mut config = self.inner.config.clone();
        config.reference_refine = reference;
        PreparedEngine {
            inner: Arc::new(EngineInner {
                config,
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                matcher: self.inner.matcher.clone(),
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                fingerprint: self.inner.fingerprint.clone(),
                prepare_time: self.inner.prepare_time,
                metrics: self.inner.metrics.clone(),
            }),
        }
    }

    /// Attach an observability handle. The matcher is re-derived from
    /// the frozen Preparation with the handle installed, so fine-tune
    /// statistics (vocabulary size, expansion counts, representative
    /// counts, index rows) are recorded exactly as an in-memory build
    /// records them — this is what makes a loaded engine's metrics
    /// match the in-memory path. Output is unaffected.
    pub fn with_metrics(&self, metrics: PipelineMetrics) -> PreparedEngine {
        let (matcher, _) = metrics.prepare.time(|| {
            self.inner
                .prep
                .matcher_at(self.inner.config.matcher_config(), Some(metrics.clone()))
        });
        PreparedEngine {
            inner: Arc::new(EngineInner {
                config: self.inner.config.clone(),
                store: Arc::clone(&self.inner.store),
                table: Arc::clone(&self.inner.table),
                subjects: self.inner.subjects.clone(),
                prep: Arc::clone(&self.inner.prep),
                matcher,
                dictionary: Arc::clone(&self.inner.dictionary),
                store_digest: self.inner.store_digest,
                table_digest: self.inner.table_digest,
                fingerprint: self.inner.fingerprint.clone(),
                prepare_time: self.inner.prepare_time,
                metrics: Some(metrics),
            }),
        }
    }

    /// Extract entities from `docs`, deduplicated per (document,
    /// concept, phrase). Returns the entities and the inference time.
    /// Document-parallel for `config.threads > 1` via the shared
    /// [`WorkerPool`]; output is identical for any thread count.
    pub fn extract(&self, docs: &[Document]) -> (Vec<ExtractedEntity>, Duration) {
        let run = self.run_metrics();
        run.inference.time(|| self.extract_entities(&run, docs))
    }

    /// Segmentation + extraction + dedup, outside any timing span.
    pub(crate) fn extract_entities(
        &self,
        run: &PipelineMetrics,
        docs: &[Document],
    ) -> Vec<ExtractedEntity> {
        let inner = &*self.inner;
        // One `ScoreScratch` per worker: refinement's DP buffers and
        // token spans are reused across every document a worker drains.
        let per_doc = |doc: &Document, scratch: &mut ScoreScratch| {
            run.docs.inc();
            let segments = segment_metered(
                doc,
                &inner.subjects,
                &inner.matcher,
                inner.config.segmentation,
                run,
            );
            extract_entities_with(
                &segments,
                &inner.matcher,
                &inner.config,
                &doc.id,
                Some(run),
                scratch,
            )
        };
        let mut entities: Vec<ExtractedEntity> = if inner.config.threads <= 1 || docs.len() < 2 {
            let mut scratch = ScoreScratch::new();
            docs.iter()
                .flat_map(|doc| per_doc(doc, &mut scratch))
                .collect()
        } else {
            let workers = inner.config.threads.min(docs.len());
            let next = AtomicUsize::new(0);
            let buckets: Mutex<Vec<Vec<ExtractedEntity>>> = Mutex::new(Vec::new());
            WorkerPool::global().scope(workers, |scope| {
                for _ in 0..workers {
                    let (next, buckets, per_doc) = (&next, &buckets, &per_doc);
                    scope.spawn(move || {
                        let mut scratch = ScoreScratch::new();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(doc) = docs.get(i) else { break };
                            out.extend(per_doc(doc, &mut scratch));
                        }
                        buckets.lock().unwrap().push(out);
                    });
                }
            });
            buckets
                .into_inner()
                .unwrap()
                .into_iter()
                .flatten()
                .collect()
        };
        // Deduplicate, keeping the best-scoring instance of each key —
        // the total order makes output independent of work partitioning.
        dedup_entities(&mut entities);
        entities
    }

    /// Run the serve side of the full pipeline: Entity Extraction and
    /// Slot Filling over the engine's table. One `Table` clone, filled
    /// in place.
    pub fn enrich(&self, docs: &[Document]) -> EnrichmentResult {
        let run = self.run_metrics();
        let (entities, mut inference_time) =
            run.inference.time(|| self.extract_entities(&run, docs));
        let mut enriched = (*self.inner.table).clone();
        let t = std::time::Instant::now();
        let slot_stats = slot_fill_metered(&mut enriched, &entities, &run);
        inference_time += t.elapsed();
        EnrichmentResult {
            table: enriched,
            entities,
            slot_stats,
            prepare_time: self.inner.prepare_time,
            inference_time,
        }
    }

    /// Start a streaming enrichment session backed by this engine: the
    /// already-fine-tuned matcher is shared, documents are processed
    /// incrementally, and the session's working table starts as a copy
    /// of the engine's.
    pub fn session(&self) -> EnrichmentSession {
        EnrichmentSession::new(self.clone())
    }

    /// Persist the engine to `path` as a versioned binary artifact
    /// (atomic write; magic + format version + FNV-1a checksum header).
    ///
    /// The payload stores the *inputs plus the expensive intermediate*:
    /// configuration, vector store (exact `f32` bit patterns), table
    /// CSV, and the untruncated τ-expansion candidate lists (exact
    /// `f64` bit patterns). Derived structures — seeds, clusters,
    /// vector index, automaton, phrase cache — are rebuilt at load
    /// through the same constructors, which is what makes the loaded
    /// engine byte-identical.
    pub fn save(&self, path: &Path) -> ThorResult<()> {
        let inner = &*self.inner;
        let mut w = ByteWriter::new();
        write_config(&mut w, &inner.config);
        write_store(&mut w, &inner.store);
        w.put_str(&thor_data::to_csv(&inner.table));
        let base = inner.prep.base();
        w.put_f64(base.tau);
        w.put_u64(base.max_subphrase_words as u64);
        w.put_u64(base.max_expansion as u64);
        w.put_u64(base.cache_capacity as u64);
        let candidates = inner.prep.candidates();
        w.put_u64(candidates.len() as u64);
        for list in candidates {
            w.put_u64(list.len() as u64);
            for (word, sim) in list {
                w.put_str(word);
                w.put_f64(*sim);
            }
        }
        w.put_str(&inner.fingerprint);
        write_artifact(path, ENGINE_MAGIC, ENGINE_FORMAT_VERSION, &w.into_bytes())
    }

    /// Load an engine artifact written by [`PreparedEngine::save`].
    ///
    /// Rejects corrupt, truncated or version-mismatched files with
    /// named [`ThorError`]s before any state is built, and verifies the
    /// recomputed semantic fingerprint against the stored one after
    /// rebuilding. The loaded engine has no metrics handle; attach one
    /// with [`PreparedEngine::with_metrics`].
    pub fn load(path: &Path) -> ThorResult<PreparedEngine> {
        let t0 = std::time::Instant::now();
        let payload = read_artifact(path, ENGINE_MAGIC, ENGINE_FORMAT_VERSION)?;
        let mut r = ByteReader::new(&payload);
        let err_ctx = |e: ThorError| e.context(format!("{}: engine payload", path.display()));

        let config = read_config(&mut r).map_err(err_ctx)?;
        let store = read_store(&mut r).map_err(err_ctx)?;
        let table_csv = r.get_str().map_err(err_ctx)?;
        let base = MatcherConfig {
            tau: r.get_f64().map_err(err_ctx)?,
            max_subphrase_words: r.get_u64().map_err(err_ctx)? as usize,
            max_expansion: r.get_u64().map_err(err_ctx)? as usize,
            cache_capacity: r.get_u64().map_err(err_ctx)? as usize,
        };
        let concept_count = r.get_u64().map_err(err_ctx)? as usize;
        let mut candidates = Vec::with_capacity(concept_count.min(payload.len()));
        for _ in 0..concept_count {
            let entries = r.get_u64().map_err(err_ctx)? as usize;
            let mut list = Vec::with_capacity(entries.min(payload.len()));
            for _ in 0..entries {
                let word = r.get_str().map_err(err_ctx)?;
                let sim = r.get_f64().map_err(err_ctx)?;
                list.push((word, sim));
            }
            candidates.push(list);
        }
        let stored_fingerprint = r.get_str().map_err(err_ctx)?;
        r.finish("engine artifact").map_err(err_ctx)?;

        let table = thor_data::from_csv(&table_csv)
            .map_err(|e| ThorError::parse(format!("{}: embedded table: {e}", path.display())))?;
        let concepts = concept_instances(&table);
        if concepts.len() != candidates.len() {
            return Err(ThorError::validation(format!(
                "{}: artifact stores {} candidate lists for {} table concepts",
                path.display(),
                candidates.len(),
                concepts.len()
            )));
        }
        let store = Arc::new(store);
        let store_digest = fnv1a(store.to_text().as_bytes());
        let table_digest = fnv1a(table_csv.as_bytes());
        let fingerprint = engine_fingerprint(&config, table_digest, store_digest);
        if fingerprint != stored_fingerprint {
            return Err(ThorError::validation(format!(
                "{}: engine fingerprint mismatch (stored {stored_fingerprint}, rebuilt \
                 {fingerprint}); artifact does not describe its own contents",
                path.display()
            )));
        }

        let prep = PreparedMatcher::from_parts(&concepts, Arc::clone(&store), base, candidates);
        let matcher = prep.matcher_at(config.matcher_config(), None);
        let dictionary = DictionaryIndex::from_concepts(concepts);
        Ok(PreparedEngine {
            inner: Arc::new(EngineInner {
                config,
                subjects: table.subjects().map(str::to_string).collect(),
                table: Arc::new(table),
                store,
                prep: Arc::new(prep),
                matcher,
                dictionary: Arc::new(dictionary),
                store_digest,
                table_digest,
                fingerprint,
                prepare_time: t0.elapsed(),
                metrics: None,
            }),
        })
    }
}

fn write_config(w: &mut ByteWriter, c: &ThorConfig) {
    w.put_f64(c.tau);
    w.put_f64(c.weights.semantic);
    w.put_f64(c.weights.word);
    w.put_f64(c.weights.char);
    w.put_u64(c.max_subphrase_words as u64);
    w.put_u64(c.max_expansion as u64);
    w.put_u64(c.cache_capacity as u64);
    w.put_u8(match c.segmentation {
        SegmentationMode::MentionCarryForward => 0,
        SegmentationMode::SemanticOnly => 1,
        SegmentationMode::MentionOnly => 2,
    });
    w.put_u8(u8::from(c.np_chunking));
    match c.context_gate {
        Some(gate) => {
            w.put_u8(1);
            w.put_f64(gate);
        }
        None => w.put_u8(0),
    }
    w.put_u64(c.threads as u64);
}

fn read_config(r: &mut ByteReader<'_>) -> ThorResult<ThorConfig> {
    let tau = r.get_f64()?;
    let weights = ScoreWeights {
        semantic: r.get_f64()?,
        word: r.get_f64()?,
        char: r.get_f64()?,
    };
    let max_subphrase_words = r.get_u64()? as usize;
    let max_expansion = r.get_u64()? as usize;
    let cache_capacity = r.get_u64()? as usize;
    let segmentation = match r.get_u8()? {
        0 => SegmentationMode::MentionCarryForward,
        1 => SegmentationMode::SemanticOnly,
        2 => SegmentationMode::MentionOnly,
        other => {
            return Err(ThorError::parse(format!(
                "unknown segmentation mode tag {other}"
            )))
        }
    };
    let np_chunking = match r.get_u8()? {
        0 => false,
        1 => true,
        other => return Err(ThorError::parse(format!("bad np_chunking flag {other}"))),
    };
    let context_gate = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_f64()?),
        other => return Err(ThorError::parse(format!("bad context_gate tag {other}"))),
    };
    let threads = r.get_u64()? as usize;
    if !TAU_RANGE.contains(&tau) {
        return Err(ThorError::validation(format!(
            "stored tau {tau} outside [0, 1]"
        )));
    }
    Ok(ThorConfig {
        tau,
        weights,
        max_subphrase_words,
        max_expansion,
        cache_capacity,
        segmentation,
        np_chunking,
        context_gate,
        threads,
        // Execution knobs are not persisted (the artifact format is
        // unchanged): a loaded engine starts from the defaults.
        early_abandon: true,
        reference_refine: false,
    })
}

/// Vector store layout: dim, word count, then each word (sorted) with
/// its exact `f32` bit patterns. Sorting makes save deterministic; the
/// words round-trip already normalized, so re-insertion is lossless.
fn write_store(w: &mut ByteWriter, store: &VectorStore) {
    w.put_u64(store.dim() as u64);
    w.put_u64(store.len() as u64);
    let mut words: Vec<(&str, &Vector)> = store.iter().collect();
    words.sort_by_key(|(word, _)| *word);
    for (word, vector) in words {
        w.put_str(word);
        for &v in vector.as_slice() {
            w.put_f32(v);
        }
    }
}

fn read_store(r: &mut ByteReader<'_>) -> ThorResult<VectorStore> {
    let dim = r.get_u64()? as usize;
    let count = r.get_u64()? as usize;
    let mut store = VectorStore::new(dim);
    for _ in 0..count {
        let word = r.get_str()?;
        let mut values = Vec::with_capacity(dim);
        for _ in 0..dim {
            values.push(r.get_f32()?);
        }
        store.insert(&word, Vector(values));
    }
    if store.len() != count {
        return Err(ThorError::validation(format!(
            "store declared {count} words, rebuilt {}",
            store.len()
        )));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_data::Schema;
    use thor_embed::SemanticSpaceBuilder;

    fn setup() -> (Thor, Table, Vec<Document>) {
        let store = SemanticSpaceBuilder::new(24, 5)
            .topic("anatomy")
            .words("anatomy", ["lungs", "brain", "skin", "nerve"])
            .generic_words(["damages", "grows"])
            .build()
            .into_store();
        let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
        table.fill_slot("Tuberculosis", "Anatomy", "lungs");
        table.row_for_subject("Acne");
        let docs = vec![
            Document::new("d0", "Tuberculosis damages the lungs and the brain."),
            Document::new("d1", "Acne grows on the skin."),
        ];
        (Thor::new(store, ThorConfig::with_tau(0.6)), table, docs)
    }

    #[test]
    fn prepared_engine_matches_one_shot_enrich() {
        let (thor, table, docs) = setup();
        let one_shot = thor.enrich(&table, &docs);
        let engine = thor.prepare(&table);
        let served = engine.enrich(&docs);
        assert_eq!(served.entities, one_shot.entities);
        assert_eq!(
            thor_data::to_csv(&served.table),
            thor_data::to_csv(&one_shot.table)
        );
        // Reuse: a second serve call off the same engine is identical.
        let again = engine.enrich(&docs);
        assert_eq!(again.entities, one_shot.entities);
    }

    #[test]
    fn with_tau_derivation_matches_fresh_build() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        for tau in [0.6, 0.7, 0.85, 1.0] {
            let derived = engine.with_tau(tau);
            let fresh = Thor::new(Arc::clone(engine.store()), ThorConfig::with_tau(tau));
            let expected = fresh.enrich(&table, &docs);
            let got = derived.enrich(&docs);
            assert_eq!(got.entities, expected.entities, "tau {tau}");
            assert_eq!(
                thor_data::to_csv(&got.table),
                thor_data::to_csv(&expected.table),
                "tau {tau}"
            );
        }
    }

    #[test]
    fn with_tau_below_base_re_prepares() {
        let (thor, table, docs) = setup();
        let high = Thor::new(Arc::clone(thor.store_arc()), ThorConfig::with_tau(0.9));
        let engine = high.prepare(&table);
        let lowered = engine.with_tau(0.6);
        let expected = thor.enrich(&table, &docs);
        assert_eq!(lowered.enrich(&docs).entities, expected.entities);
    }

    #[test]
    fn save_load_round_trip_is_byte_identical() {
        let (thor, table, docs) = setup();
        let engine = thor.prepare(&table);
        let dir = std::env::temp_dir().join(format!("thor-engine-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.thor");
        engine.save(&path).unwrap();
        let loaded = PreparedEngine::load(&path).unwrap();
        assert_eq!(loaded.fingerprint(), engine.fingerprint());
        assert_eq!(loaded.tau(), engine.tau());
        let a = engine.enrich(&docs);
        let b = loaded.enrich(&docs);
        assert_eq!(a.entities, b.entities);
        assert_eq!(thor_data::to_csv(&a.table), thor_data::to_csv(&b.table));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_tau() {
        let (thor, table, _) = setup();
        let engine = thor.prepare(&table);
        assert_eq!(
            engine.with_threads(8).fingerprint(),
            engine.fingerprint(),
            "threads are output-neutral"
        );
        assert_ne!(engine.with_tau(0.9).fingerprint(), engine.fingerprint());
    }

    #[test]
    fn engine_session_streams_like_batch() {
        let (thor, table, docs) = setup();
        let batch = thor.enrich(&table, &docs);
        let engine = thor.prepare(&table);
        let mut session = engine.session();
        for d in &docs {
            session.process(d);
        }
        assert_eq!(session.entities().len(), batch.entities.len());
        assert_eq!(
            session.finish().instance_count(),
            batch.table.instance_count()
        );
    }
}
