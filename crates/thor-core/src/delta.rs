//! Incremental engine evolution: apply additive deltas to a
//! [`PreparedEngine`] without rebuilding it, persist the change as a
//! **delta artifact** stacking on a parent engine file, and fold a
//! chain back into a single base.
//!
//! A delta is *additive*: new seed instances for existing concepts, new
//! subject rows, or a new (empty) concept column appended to the
//! schema. Additivity is what makes incrementality exact — the frozen
//! τ-expansion candidates are untruncated and sorted, so new seeds can
//! be merge-inserted ([`PreparedMatcher::with_additions`]) and the
//! vector index extended by block-copying untouched concepts, producing
//! an engine **bit-identical** to `Thor::prepare` on the final table:
//! same extraction output, same fingerprint, same saved bytes. That
//! invariant is also why [`PreparedEngine::save_delta`] can byte-diff
//! the evolved engine's sections against the parent chain and write
//! only what changed.
//!
//! On disk a delta artifact is an ordinary v2 sectioned container with
//! a `delta.meta` parent link (see `thor_fault::chain`); loading one
//! resolves the whole chain, and [`compact_chain`] rewrites it as the
//! single artifact a fresh build would have saved — byte-identical.
//!
//! [`PreparedMatcher::with_additions`]: thor_match::PreparedMatcher::with_additions

use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

use thor_data::Table;
use thor_fault::{
    atomic_write, fnv1a, DeltaMeta, MapMode, SectionChain, SectionWriter, ThorError, ThorResult,
    DELTA_META_SECTION, DELTA_META_VERSION, MAX_CHAIN_DEPTH,
};
use thor_index::VectorIndexBuilder;
use thor_obs::PipelineMetrics;

use crate::engine::{
    concept_instances, engine_fingerprint, meta_fingerprint, EngineInner, ENGINE_LAZY_SECTIONS,
    SEC_META,
};
use crate::PreparedEngine;

/// New seed instances (and, implicitly, new subject rows) to merge into
/// an engine's table: a small standalone table with the same subject
/// concept whose cells are replayed into the engine's table.
#[derive(Debug, Clone)]
pub struct SeedDelta {
    rows: Table,
}

impl SeedDelta {
    /// A seed delta from a table of additions.
    pub fn new(rows: Table) -> Self {
        Self { rows }
    }

    /// Parse a seed delta from CSV text (same dialect as the engine
    /// table: header row of concept names, subject first).
    pub fn from_csv(text: &str) -> ThorResult<Self> {
        let rows =
            thor_data::from_csv(text).map_err(|e| ThorError::parse(format!("seed delta: {e}")))?;
        Ok(Self { rows })
    }

    /// The additions, as a standalone table.
    pub fn rows(&self) -> &Table {
        &self.rows
    }
}

/// A new, initially empty concept column appended to the schema.
#[derive(Debug, Clone)]
pub struct ConceptDelta {
    name: String,
}

impl ConceptDelta {
    /// A concept delta adding the column `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }

    /// The concept to append.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// An additive change to apply to a [`PreparedEngine`].
#[derive(Debug, Clone)]
pub enum EngineDelta {
    /// New seed instances / subject rows for existing concepts.
    Seeds(SeedDelta),
    /// A new concept column appended to the schema.
    Concept(ConceptDelta),
}

impl PreparedEngine {
    /// Evolve the engine by an additive delta **without rebuilding**:
    /// the table is extended, new candidates are merge-inserted into
    /// the frozen τ-expansion lists, untouched concepts of the vector
    /// index are block-copied, the seed syntax and the dictionary
    /// automaton are extended in place. The result is bit-identical to
    /// `Thor::prepare` on the evolved table — same extraction output,
    /// same fingerprint, same saved artifact bytes — at a fraction of
    /// the cost (no vocabulary re-scan for untouched concepts).
    ///
    /// Non-additive changes (removing instances, renaming or reordering
    /// concepts) are rejected with a named [`ThorError`]; counters
    /// `delta.applied` / `delta.rejected` and the `engine.chain_depth`
    /// gauge are recorded on the engine's metrics handle.
    pub fn apply_delta(&self, delta: &EngineDelta) -> ThorResult<PreparedEngine> {
        let run = self.run_metrics();
        let (result, elapsed) = run.prepare.time(|| self.apply_delta_inner(delta));
        match result {
            Ok(mut inner) => {
                inner.prepare_time = elapsed;
                run.registry().counter("delta.applied").inc();
                run.registry()
                    .gauge("engine.chain_depth")
                    .set(inner.chain_depth as u64);
                Ok(PreparedEngine {
                    inner: Arc::new(inner),
                })
            }
            Err(e) => {
                run.registry().counter("delta.rejected").inc();
                Err(e)
            }
        }
    }

    fn apply_delta_inner(&self, delta: &EngineDelta) -> ThorResult<EngineInner> {
        let inner = &*self.inner;

        // 1. The evolved table.
        let table = match delta {
            EngineDelta::Concept(c) => {
                if inner.table.schema().index_of(c.name()).is_some() {
                    return Err(ThorError::validation(format!(
                        "delta adds concept `{}` which the engine already has",
                        c.name()
                    )));
                }
                inner.table.with_concept(c.name())
            }
            EngineDelta::Seeds(s) => {
                let schema = inner.table.schema();
                let dschema = s.rows().schema();
                if dschema.subject() != schema.subject() {
                    return Err(ThorError::validation(format!(
                        "seed delta subject `{}` does not match engine subject `{}`",
                        dschema.subject().name(),
                        schema.subject().name()
                    )));
                }
                for (ci, concept) in dschema.concepts().iter().enumerate() {
                    if ci == dschema.subject_index() {
                        continue;
                    }
                    match schema.index_of(concept.name()) {
                        None => {
                            return Err(ThorError::validation(format!(
                                "seed delta column `{}` is not a concept of the engine schema; \
                                 add the column first with a concept delta",
                                concept.name()
                            )))
                        }
                        Some(i) if i == schema.subject_index() => {
                            return Err(ThorError::validation(format!(
                                "seed delta column `{}` duplicates the subject concept",
                                concept.name()
                            )))
                        }
                        Some(_) => {}
                    }
                }
                let mut table = (*inner.table).clone();
                for (ri, row) in s.rows().rows().iter().enumerate() {
                    let subject = s.rows().subject_of(ri);
                    table.row_for_subject(subject);
                    for (ci, concept) in dschema.concepts().iter().enumerate() {
                        if ci == dschema.subject_index() {
                            continue;
                        }
                        for value in row.cell(ci).values() {
                            table.fill_slot(subject, concept.name(), value);
                        }
                    }
                }
                table
            }
        };

        // 2. Merge-insert the new seeds into the frozen candidates.
        let concepts = concept_instances(&table);
        let (prep, touched) = inner
            .prep
            .with_additions(&concepts)
            .map_err(|m| ThorError::validation(format!("delta is not additive: {m}")))?;

        // 3. Extend the vector index: untouched concepts are
        // block-copied bit-for-bit from the current index; touched and
        // new ones are rebuilt from their (re-derived) clusters.
        let matcher_config = inner.config.matcher_config();
        let clusters = prep.clusters_at(&matcher_config, None);
        let old_index = inner.matcher.index();
        let touched: HashSet<usize> = touched.into_iter().collect();
        let mut builder = VectorIndexBuilder::new(inner.store.dim());
        for (ci, cluster) in clusters.iter().enumerate() {
            if ci < old_index.concept_count() && !touched.contains(&ci) {
                builder.add_concept_from(old_index, ci);
            } else {
                builder.add_concept(
                    &cluster.concept,
                    cluster.seed_count(),
                    cluster
                        .representative_vectors()
                        .map(|(w, v)| (w, v.as_slice())),
                );
            }
        }
        let index = builder.build();
        let matcher = prep
            .matcher_with_index(matcher_config, inner.metrics.clone(), index, None)
            .map_err(|m| ThorError::validation(format!("delta index extension: {m}")))?;

        // 4. Extend the dictionary automaton with the merged patterns.
        let dictionary = inner
            .dictionary
            .extend(concepts.iter().map(|(n, i)| (n.clone(), i.iter().cloned())))
            .map_err(|m| ThorError::validation(format!("delta is not additive: {m}")))?;

        // 5. Re-fingerprint: the store is unchanged, the table is not.
        let table_digest = fnv1a(thor_data::to_csv(&table).as_bytes());
        Ok(EngineInner {
            fingerprint: engine_fingerprint(&inner.config, table_digest, inner.store_digest),
            config: inner.config.clone(),
            store: Arc::clone(&inner.store),
            subjects: table.subjects().map(str::to_string).collect(),
            table: Arc::new(table),
            prep: Arc::new(prep),
            matcher,
            dictionary: Arc::new(dictionary),
            store_digest: inner.store_digest,
            table_digest,
            chain_depth: inner.chain_depth + 1,
            prepare_time: std::time::Duration::ZERO,
            metrics: inner.metrics.clone(),
        })
    }

    /// Persist this engine as a **delta artifact** on `parent` (a plain
    /// engine artifact or itself a delta): only the sections whose
    /// bytes differ from what the parent chain resolves are written,
    /// plus a `delta.meta` link recording the parent's path, directory
    /// checksum and engine fingerprint. Loading `out` resolves the
    /// whole chain and is indistinguishable from loading a full save
    /// of this engine.
    ///
    /// `note` is free-form provenance (e.g. the CLI invocation) echoed
    /// by `thor inspect`.
    pub fn save_delta(&self, parent: &Path, out: &Path, note: &str) -> ThorResult<()> {
        let chain = SectionChain::open(parent, MapMode::Mapped)?;
        chain.verify_except(ENGINE_LAZY_SECTIONS)?;
        let depth = chain.depth() + 1;
        if depth > MAX_CHAIN_DEPTH {
            return Err(ThorError::validation(format!(
                "stacking on {} would exceed {MAX_CHAIN_DEPTH} deltas; fold the chain with \
                 `thor compact` first",
                parent.display()
            )));
        }
        let parent_fingerprint = meta_fingerprint(chain.bytes(SEC_META)?)
            .map_err(|e| e.context(format!("{}: engine meta section", parent.display())))?;
        // Record the parent relative to the delta's own directory when
        // they live side by side, so the chain survives moving the
        // directory as a unit.
        let parent_path = match (parent.parent(), out.parent(), parent.file_name()) {
            (Some(a), Some(b), Some(name)) if a == b => name.to_string_lossy().into_owned(),
            _ => parent.display().to_string(),
        };
        let meta = DeltaMeta {
            parent: parent_path,
            parent_dir_checksum: chain.top().dir_checksum(),
            parent_fingerprint,
            depth: depth as u64,
            note: note.to_string(),
        };
        let mut w = SectionWriter::new();
        w.add(DELTA_META_SECTION, DELTA_META_VERSION, &meta.encode());
        for (name, version, bytes) in self.engine_sections() {
            if chain.bytes(name).ok() != Some(bytes.as_slice()) {
                w.add(name, version, &bytes);
            }
        }
        atomic_write(out, &w.finish())
    }
}

/// Fold the delta chain under `path` into the single artifact `out` —
/// byte-identical to what a fresh [`PreparedEngine::save`] of the
/// resolved state writes. The whole chain is fully verified first
/// (every checksum, every link), and the compacted artifact is loaded
/// back and its fingerprint compared before the function returns the
/// resulting engine. Records a `compact.runs` counter on `metrics`.
pub fn compact_chain(
    path: &Path,
    out: &Path,
    metrics: Option<&PipelineMetrics>,
) -> ThorResult<PreparedEngine> {
    let chain = SectionChain::open(path, MapMode::Owned)?;
    chain.verify_all()?;
    let expected = meta_fingerprint(chain.bytes(SEC_META)?)
        .map_err(|e| e.context(format!("{}: engine meta section", path.display())))?;
    let folded = chain.compact_bytes()?;
    drop(chain);
    atomic_write(out, &folded)?;
    let engine = PreparedEngine::load(out)?;
    if engine.fingerprint() != expected {
        return Err(ThorError::validation(format!(
            "{}: compacted engine fingerprint {} does not match the chain's {expected}",
            out.display(),
            engine.fingerprint()
        )));
    }
    if let Some(m) = metrics {
        m.registry().counter("compact.runs").inc();
        m.registry().gauge("engine.chain_depth").set(0);
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThorConfig;
    use crate::document::Document;
    use crate::pipeline::Thor;
    use thor_data::Schema;
    use thor_embed::SemanticSpaceBuilder;

    fn space() -> Arc<thor_embed::VectorStore> {
        Arc::new(
            SemanticSpaceBuilder::new(24, 5)
                .topic("anatomy")
                .words("anatomy", ["lungs", "brain", "skin", "nerve", "spine"])
                .topic("medicine")
                .words("medicine", ["aspirin", "insulin"])
                .generic_words(["damages", "grows", "treats"])
                .build()
                .into_store(),
        )
    }

    fn base_table() -> Table {
        let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
        table.fill_slot("Tuberculosis", "Anatomy", "lungs");
        table.row_for_subject("Acne");
        table
    }

    fn docs() -> Vec<Document> {
        vec![
            Document::new("d0", "Tuberculosis damages the lungs and the brain."),
            Document::new("d1", "Acne grows on the skin."),
            Document::new("d2", "Aspirin treats the nerve and the spine."),
        ]
    }

    fn seed_delta(csv: &str) -> EngineDelta {
        EngineDelta::Seeds(SeedDelta::from_csv(csv).unwrap())
    }

    /// The tentpole invariant at the engine layer: a chain of deltas is
    /// bit-identical to a fresh build of the final state — fingerprint,
    /// extraction output, *and the saved artifact bytes*.
    #[test]
    fn delta_chain_matches_fresh_build_bit_for_bit() {
        let store = space();
        let thor = Thor::new(Arc::clone(&store), ThorConfig::with_tau(0.6));
        let engine = thor.prepare(&base_table());
        assert_eq!(engine.chain_depth(), 0);

        // Delta 1: new seeds (an existing word becomes a seed — the
        // shadow case — plus a brand-new subject row).
        let d1 = seed_delta("Disease,Anatomy\nTuberculosis,brain\nStroke,nerve\n");
        // Delta 2: a new concept column, then seeds for it.
        let d2 = EngineDelta::Concept(ConceptDelta::new("Treatment"));
        let d3 = seed_delta("Disease,Treatment\nStroke,aspirin\n");

        let evolved = engine
            .apply_delta(&d1)
            .unwrap()
            .apply_delta(&d2)
            .unwrap()
            .apply_delta(&d3)
            .unwrap();
        assert_eq!(evolved.chain_depth(), 3);

        // The same final table, built from scratch.
        let mut final_table = base_table();
        final_table.fill_slot("Tuberculosis", "Anatomy", "brain");
        final_table.fill_slot("Stroke", "Anatomy", "nerve");
        let mut final_table = final_table.with_concept("Treatment");
        final_table.fill_slot("Stroke", "Treatment", "aspirin");
        let fresh = thor.prepare(&final_table);

        assert_eq!(evolved.fingerprint(), fresh.fingerprint());
        assert_eq!(
            thor_data::to_csv(evolved.table()),
            thor_data::to_csv(fresh.table())
        );
        let a = evolved.enrich(&docs());
        let b = fresh.enrich(&docs());
        assert_eq!(a.entities, b.entities);
        assert_eq!(thor_data::to_csv(&a.table), thor_data::to_csv(&b.table));

        // Strongest form: the artifacts are byte-identical.
        let dir = std::env::temp_dir().join(format!("thor-delta-bits-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (pa, pb) = (dir.join("evolved.eng"), dir.join("fresh.eng"));
        evolved.save(&pa).unwrap();
        fresh.save(&pb).unwrap();
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_delta_writes_patches_and_loads_like_a_full_save() {
        let store = space();
        let thor = Thor::new(Arc::clone(&store), ThorConfig::with_tau(0.6));
        let engine = thor.prepare(&base_table());
        let dir = std::env::temp_dir().join(format!("thor-delta-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("base.eng");
        engine.save(&base_path).unwrap();

        let d1 = seed_delta("Disease,Anatomy\nStroke,nerve\n");
        let e1 = engine.apply_delta(&d1).unwrap();
        let d1_path = dir.join("d1.eng");
        e1.save_delta(&base_path, &d1_path, "test delta 1").unwrap();

        let d2 = EngineDelta::Concept(ConceptDelta::new("Treatment"));
        let e2 = e1.apply_delta(&d2).unwrap();
        let d2_path = dir.join("d2.eng");
        e2.save_delta(&d1_path, &d2_path, "test delta 2").unwrap();

        // A delta file is smaller than a full save (the vector store is
        // never repeated).
        let full = std::fs::metadata(&base_path).unwrap().len();
        let patch = std::fs::metadata(&d1_path).unwrap().len();
        assert!(
            patch < full,
            "delta ({patch} bytes) should be smaller than the base ({full} bytes)"
        );

        for mode in [MapMode::Owned, MapMode::Mapped] {
            let loaded = PreparedEngine::load_with(&d2_path, mode).unwrap();
            assert_eq!(loaded.fingerprint(), e2.fingerprint());
            assert_eq!(loaded.chain_depth(), 2);
            let a = loaded.enrich(&docs());
            let b = e2.enrich(&docs());
            assert_eq!(a.entities, b.entities);
            assert_eq!(thor_data::to_csv(&a.table), thor_data::to_csv(&b.table));
        }
        // The base still loads on its own, untouched by the stack.
        assert_eq!(
            PreparedEngine::load(&base_path).unwrap().fingerprint(),
            engine.fingerprint()
        );

        // Compaction folds the chain into the bytes a fresh save of the
        // evolved engine writes.
        let compact_path = dir.join("compact.eng");
        let compacted = compact_chain(&d2_path, &compact_path, None).unwrap();
        assert_eq!(compacted.fingerprint(), e2.fingerprint());
        assert_eq!(compacted.chain_depth(), 0);
        let fresh_path = dir.join("fresh.eng");
        e2.save(&fresh_path).unwrap();
        assert_eq!(
            std::fs::read(&compact_path).unwrap(),
            std::fs::read(&fresh_path).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_base_is_rejected_by_name() {
        let store = space();
        let thor = Thor::new(Arc::clone(&store), ThorConfig::with_tau(0.6));
        let engine = thor.prepare(&base_table());
        let dir = std::env::temp_dir().join(format!("thor-delta-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("base.eng");
        engine.save(&base_path).unwrap();
        let e1 = engine
            .apply_delta(&seed_delta("Disease,Anatomy\nStroke,nerve\n"))
            .unwrap();
        let d1_path = dir.join("d1.eng");
        e1.save_delta(&base_path, &d1_path, "").unwrap();

        // Swap the base for a different engine build after the delta
        // was cut: the load must fail with the named mismatch (which
        // points at `thor compact`), not a checksum panic.
        thor.prepare(&{
            let mut t = base_table();
            t.fill_slot("Acne", "Anatomy", "skin");
            t
        })
        .save(&base_path)
        .unwrap();
        let err = PreparedEngine::load(&d1_path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("delta base mismatch"), "{msg}");
        assert!(msg.contains("thor compact"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_additive_and_malformed_deltas_are_rejected() {
        let store = space();
        let thor = Thor::new(Arc::clone(&store), ThorConfig::with_tau(0.6));
        let engine = thor.prepare(&base_table());
        let metrics = PipelineMetrics::new();
        let engine = engine.with_metrics(metrics.clone());

        // Unknown column.
        let err = engine
            .apply_delta(&seed_delta("Disease,Treatment\nAcne,aspirin\n"))
            .unwrap_err();
        assert!(err.to_string().contains("not a concept"), "{err}");
        // Duplicate concept.
        let err = engine
            .apply_delta(&EngineDelta::Concept(ConceptDelta::new("Anatomy")))
            .unwrap_err();
        assert!(err.to_string().contains("already has"), "{err}");
        // Wrong subject.
        let err = engine
            .apply_delta(&seed_delta("Drug,Anatomy\naspirin,nerve\n"))
            .unwrap_err();
        assert!(err.to_string().contains("subject"), "{err}");

        // Rejections were counted; a success counts too.
        assert_eq!(metrics.snapshot().count("delta.rejected"), 3);
        engine
            .apply_delta(&seed_delta("Disease,Anatomy\nStroke,nerve\n"))
            .unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.count("delta.applied"), 1);
        assert_eq!(snap.count("engine.chain_depth"), 1);
    }
}
