//! Phase ③ — slot filling (Algorithm 1 lines 16–20).
//!
//! "THOR iterates over subject instances, and for each subject instance
//! c*, the row r that has value c* … is selected. Then, for every entity
//! e related to subject c*, THOR fills in the slot that corresponds to
//! row r and column e.C with the extracted phrase e.p."

use thor_data::Table;
use thor_obs::PipelineMetrics;

use crate::entity::ExtractedEntity;

/// Outcome counts of a slot-filling pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotFillStats {
    /// Values newly inserted into cells.
    pub inserted: usize,
    /// Values already present (idempotent re-inserts).
    pub duplicates: usize,
    /// Entities whose concept is the subject concept (never slot-filled:
    /// the subject column is the single-valued key).
    pub subject_concept_skipped: usize,
    /// Entities whose concept is not in the table schema.
    pub unknown_concept_skipped: usize,
}

/// Fill `table` with `entities`, returning the outcome counts. The
/// table is mutated in place; rows are created for unseen subjects
/// (entities always originate from known subjects, but the enriched
/// test tables start stripped).
pub fn slot_fill(table: &mut Table, entities: &[ExtractedEntity]) -> SlotFillStats {
    let mut stats = SlotFillStats::default();
    let subject_key = table.schema().subject().key();
    for e in entities {
        if e.concept.to_lowercase() == subject_key {
            stats.subject_concept_skipped += 1;
            continue;
        }
        if table.schema().index_of(&e.concept).is_none() {
            stats.unknown_concept_skipped += 1;
            continue;
        }
        if table.fill_slot(&e.subject, &e.concept, &e.phrase) {
            stats.inserted += 1;
        } else {
            stats.duplicates += 1;
        }
    }
    stats
}

/// [`slot_fill`] with observability: the pass runs under a
/// `stage.slot_fill` span and the insert/duplicate outcomes feed the
/// `slots.inserted` / `slots.duplicate` counters.
pub fn slot_fill_metered(
    table: &mut Table,
    entities: &[ExtractedEntity],
    metrics: &PipelineMetrics,
) -> SlotFillStats {
    let (stats, _) = metrics.slot_fill.time(|| slot_fill(table, entities));
    metrics.slots_inserted.add(stats.inserted as u64);
    metrics.slots_duplicate.add(stats.duplicates as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_data::Schema;

    fn entity(subject: &str, concept: &str, phrase: &str) -> ExtractedEntity {
        ExtractedEntity {
            subject: subject.into(),
            concept: concept.into(),
            phrase: phrase.into(),
            score: 0.5,
            matched_instance: String::new(),
            doc_id: "d".into(),
            sentence_index: 0,
        }
    }

    fn table() -> Table {
        Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ))
    }

    #[test]
    fn fig4_slot_filling() {
        // "two entities, 'unsteadiness' and 'empyema', related to two
        // subjects … fill in two slots for the concept 'Complication'."
        let mut t = table();
        let entities = vec![
            entity("Acoustic Neuroma", "Complication", "unsteadiness"),
            entity("Tuberculosis", "Complication", "empyema"),
        ];
        let stats = slot_fill(&mut t, &entities);
        assert_eq!(stats.inserted, 2);
        assert!(t
            .get_row("Acoustic Neuroma")
            .unwrap()
            .cell(2)
            .contains("unsteadiness"));
        assert!(t
            .get_row("Tuberculosis")
            .unwrap()
            .cell(2)
            .contains("empyema"));
    }

    #[test]
    fn idempotent_refill() {
        let mut t = table();
        let es = vec![entity("TB", "Anatomy", "lungs")];
        assert_eq!(slot_fill(&mut t, &es).inserted, 1);
        let again = slot_fill(&mut t, &es);
        assert_eq!(again.inserted, 0);
        assert_eq!(again.duplicates, 1);
    }

    #[test]
    fn subject_concept_entities_skipped() {
        let mut t = table();
        let es = vec![entity("TB", "Disease", "malaria")];
        let stats = slot_fill(&mut t, &es);
        assert_eq!(stats.inserted, 0);
        assert_eq!(stats.subject_concept_skipped, 1);
    }

    #[test]
    fn unknown_concept_entities_skipped() {
        let mut t = table();
        let es = vec![entity("TB", "Bogus", "value")];
        let stats = slot_fill(&mut t, &es);
        assert_eq!(stats.unknown_concept_skipped, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn enrichment_completes_partial_data() {
        // Fig 1: 'Anatomy' already has 'nervous system' for Acoustic
        // Neuroma; the extracted 'brain' is *additional* information.
        let mut t = table();
        t.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system");
        slot_fill(&mut t, &[entity("Acoustic Neuroma", "Anatomy", "brain")]);
        let row = t.get_row("Acoustic Neuroma").unwrap();
        let ci = t.schema().index_of("Anatomy").unwrap();
        assert_eq!(row.cell(ci).len(), 2);
    }
}
