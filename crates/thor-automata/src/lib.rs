#![warn(missing_docs)]
//! # thor-automata
//!
//! A from-scratch Aho–Corasick multi-pattern string matcher.
//!
//! The paper's **Baseline** competitor is "a traditional ER method that
//! uses substring-search for exact syntactic matching (Aho–Corasick
//! algorithm). … It uses structured data as patterns to build a
//! dictionary or lexicon, which is then further used to match all
//! sub-strings from the text." This crate provides that substrate: a
//! goto/failure automaton built from a pattern dictionary, reporting all
//! (overlapping) occurrences in a single pass over the text.
//!
//! The implementation follows Aho & Corasick (CACM 1975): a byte-level
//! trie with BFS-computed failure links and merged output sets. Matching
//! is `O(text + matches)`.

mod matcher;

pub use matcher::{AhoCorasick, AhoCorasickBuilder, Match};
