//! Aho–Corasick automaton: trie construction, failure links, matching.

use std::collections::{HashMap, VecDeque};

/// A single pattern occurrence in the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Match {
    /// Index of the matched pattern (insertion order in the builder).
    pub pattern: usize,
    /// Byte offset of the first byte of the occurrence.
    pub start: usize,
    /// Byte offset one past the last byte of the occurrence.
    pub end: usize,
}

/// Builder: collect patterns, then [`AhoCorasickBuilder::build`].
#[derive(Debug, Default)]
pub struct AhoCorasickBuilder {
    patterns: Vec<Vec<u8>>,
    case_insensitive: bool,
}

impl AhoCorasickBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold ASCII case during both construction and matching.
    pub fn ascii_case_insensitive(mut self, yes: bool) -> Self {
        self.case_insensitive = yes;
        self
    }

    /// Add one pattern. Empty patterns are ignored (they would match at
    /// every position).
    pub fn add_pattern(&mut self, pattern: impl AsRef<[u8]>) -> &mut Self {
        let p = pattern.as_ref();
        if !p.is_empty() {
            self.patterns.push(p.to_vec());
        }
        self
    }

    /// Insert one pattern at position `index`, shifting later patterns
    /// up — the delta path of dictionary evolution, where new instances
    /// must land at their canonical position so the rebuilt automaton is
    /// byte-identical to a from-scratch build over the merged list.
    /// Empty patterns are ignored; `index` is clamped to the current
    /// pattern count.
    pub fn insert_pattern_at(&mut self, index: usize, pattern: impl AsRef<[u8]>) -> &mut Self {
        let p = pattern.as_ref();
        if !p.is_empty() {
            let at = index.min(self.patterns.len());
            self.patterns.insert(at, p.to_vec());
        }
        self
    }

    /// Number of patterns collected so far.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Add many patterns.
    pub fn add_patterns<I, P>(&mut self, patterns: I) -> &mut Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        for p in patterns {
            self.add_pattern(p);
        }
        self
    }

    /// Construct the automaton.
    pub fn build(&self) -> AhoCorasick {
        let fold = |b: u8| {
            if self.case_insensitive {
                b.to_ascii_lowercase()
            } else {
                b
            }
        };

        // ---- goto (trie) ----
        let mut nodes: Vec<Node> = vec![Node::default()];
        for (pid, pat) in self.patterns.iter().enumerate() {
            let mut state = 0usize;
            for &byte in pat {
                let b = fold(byte);
                state = match nodes[state].next.get(&b) {
                    Some(&s) => s,
                    None => {
                        nodes.push(Node::default());
                        let new = nodes.len() - 1;
                        nodes[state].next.insert(b, new);
                        new
                    }
                };
            }
            nodes[state].outputs.push(pid);
        }

        // ---- failure links (BFS) ----
        let mut queue = VecDeque::new();
        let root_children: Vec<(u8, usize)> = nodes[0].next.iter().map(|(&b, &s)| (b, s)).collect();
        for (_, s) in root_children {
            nodes[s].fail = 0;
            queue.push_back(s);
        }
        while let Some(state) = queue.pop_front() {
            let children: Vec<(u8, usize)> =
                nodes[state].next.iter().map(|(&b, &s)| (b, s)).collect();
            for (b, child) in children {
                // Follow failures of `state` until a node with a `b`
                // transition (or the root).
                let mut f = nodes[state].fail;
                loop {
                    if let Some(&t) = nodes[f].next.get(&b) {
                        if t != child {
                            nodes[child].fail = t;
                            break;
                        }
                    }
                    if f == 0 {
                        nodes[child].fail = nodes[0]
                            .next
                            .get(&b)
                            .copied()
                            .filter(|&t| t != child)
                            .unwrap_or(0);
                        break;
                    }
                    f = nodes[f].fail;
                }
                // Merge outputs from the failure target.
                let fail_outputs = nodes[nodes[child].fail].outputs.clone();
                nodes[child].outputs.extend(fail_outputs);
                queue.push_back(child);
            }
        }

        // ---- flatten to CSR ----
        // Node indices were assigned in pattern-insertion order and the
        // BFS above finalizes fail/outputs independently of sibling
        // visit order, so this flattening is deterministic: the same
        // pattern list always yields byte-identical arrays (the
        // property the artifact round-trip tests assert).
        assert!(nodes.len() < u32::MAX as usize, "automaton too large");
        let mut edge_start: Vec<u32> = Vec::with_capacity(nodes.len() + 1);
        let mut edge_bytes: Vec<u8> = Vec::new();
        let mut edge_target: Vec<u32> = Vec::new();
        let mut fail: Vec<u32> = Vec::with_capacity(nodes.len());
        let mut out_start: Vec<u32> = Vec::with_capacity(nodes.len() + 1);
        let mut out_pattern: Vec<u32> = Vec::new();
        edge_start.push(0);
        out_start.push(0);
        for node in &nodes {
            let mut edges: Vec<(u8, usize)> = node.next.iter().map(|(&b, &s)| (b, s)).collect();
            edges.sort_unstable();
            for (b, target) in edges {
                edge_bytes.push(b);
                edge_target.push(target as u32);
            }
            edge_start.push(edge_bytes.len() as u32);
            fail.push(node.fail as u32);
            // Output order is load-bearing (own patterns first, then the
            // fail chain's): it fixes match order within an end position.
            out_pattern.extend(node.outputs.iter().map(|&p| p as u32));
            out_start.push(out_pattern.len() as u32);
        }

        AhoCorasick {
            edge_start,
            edge_bytes,
            edge_target,
            fail,
            out_start,
            out_pattern,
            pattern_lens: self.patterns.iter().map(|p| p.len() as u32).collect(),
            case_insensitive: self.case_insensitive,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Node {
    next: HashMap<u8, usize>,
    fail: usize,
    outputs: Vec<usize>,
}

/// The built automaton in structure-of-arrays (CSR) form: per-node
/// edge ranges over sorted byte/target arrays, failure links, and
/// per-node output-pattern ranges. Flat arrays make the automaton
/// cache-friendly to traverse and directly serializable into (and
/// reconstructible from) raw artifact sections.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Node `i`'s edges live at `edge_start[i] .. edge_start[i + 1]`.
    edge_start: Vec<u32>,
    /// Edge labels, sorted ascending within each node's range.
    edge_bytes: Vec<u8>,
    /// Edge targets, parallel to `edge_bytes`.
    edge_target: Vec<u32>,
    /// Failure link per node (root's is 0).
    fail: Vec<u32>,
    /// Node `i`'s outputs live at `out_start[i] .. out_start[i + 1]`.
    out_start: Vec<u32>,
    /// Pattern ids emitted at a node (own patterns, then fail chain's).
    out_pattern: Vec<u32>,
    /// Byte length of each pattern.
    pattern_lens: Vec<u32>,
    case_insensitive: bool,
}

impl AhoCorasick {
    /// Number of patterns in the dictionary.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Number of automaton states.
    pub fn node_count(&self) -> usize {
        self.fail.len()
    }

    /// Reassemble an automaton from its flat arrays (the artifact load
    /// path). Validates every CSR invariant the matcher relies on, so
    /// a corrupt (but checksum-valid) input yields a named error here
    /// and traversal can never index out of bounds.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        edge_start: Vec<u32>,
        edge_bytes: Vec<u8>,
        edge_target: Vec<u32>,
        fail: Vec<u32>,
        out_start: Vec<u32>,
        out_pattern: Vec<u32>,
        pattern_lens: Vec<u32>,
        case_insensitive: bool,
    ) -> Result<Self, String> {
        let nodes = fail.len();
        if nodes == 0 {
            return Err("automaton has no states (root required)".into());
        }
        if edge_start.len() != nodes + 1 || out_start.len() != nodes + 1 {
            return Err(format!(
                "automaton CSR shape mismatch: {nodes} states, {} edge offsets, {} output offsets",
                edge_start.len(),
                out_start.len()
            ));
        }
        if edge_bytes.len() != edge_target.len() {
            return Err(format!(
                "automaton edge arrays disagree: {} labels, {} targets",
                edge_bytes.len(),
                edge_target.len()
            ));
        }
        let monotone_to = |starts: &[u32], total: usize, what: &str| -> Result<(), String> {
            if starts.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("automaton {what} offsets are not monotone"));
            }
            if starts[0] != 0 || *starts.last().expect("non-empty") as usize != total {
                return Err(format!("automaton {what} offsets do not cover the array"));
            }
            Ok(())
        };
        monotone_to(&edge_start, edge_bytes.len(), "edge")?;
        monotone_to(&out_start, out_pattern.len(), "output")?;
        if let Some(&t) = edge_target.iter().find(|&&t| t as usize >= nodes) {
            return Err(format!(
                "automaton edge target {t} out of range ({nodes} states)"
            ));
        }
        if let Some(&f) = fail.iter().find(|&&f| f as usize >= nodes) {
            return Err(format!(
                "automaton failure link {f} out of range ({nodes} states)"
            ));
        }
        if let Some(&p) = out_pattern
            .iter()
            .find(|&&p| p as usize >= pattern_lens.len())
        {
            return Err(format!(
                "automaton output pattern {p} out of range ({} patterns)",
                pattern_lens.len()
            ));
        }
        if pattern_lens.contains(&0) {
            return Err("automaton has a zero-length pattern".into());
        }
        Ok(Self {
            edge_start,
            edge_bytes,
            edge_target,
            fail,
            out_start,
            out_pattern,
            pattern_lens,
            case_insensitive,
        })
    }

    /// The flat arrays, for artifact serialization: `(edge_start,
    /// edge_bytes, edge_target, fail, out_start, out_pattern,
    /// pattern_lens, case_insensitive)`.
    #[allow(clippy::type_complexity)]
    pub fn parts(&self) -> (&[u32], &[u8], &[u32], &[u32], &[u32], &[u32], &[u32], bool) {
        (
            &self.edge_start,
            &self.edge_bytes,
            &self.edge_target,
            &self.fail,
            &self.out_start,
            &self.out_pattern,
            &self.pattern_lens,
            self.case_insensitive,
        )
    }

    /// One goto/fail transition from `state` on (already case-folded)
    /// byte `b`.
    fn step(&self, mut state: usize, b: u8) -> usize {
        loop {
            let lo = self.edge_start[state] as usize;
            let hi = self.edge_start[state + 1] as usize;
            if let Ok(k) = self.edge_bytes[lo..hi].binary_search(&b) {
                return self.edge_target[lo + k] as usize;
            }
            if state == 0 {
                return 0;
            }
            state = self.fail[state] as usize;
        }
    }

    /// Find **all** (overlapping) occurrences of every pattern, in
    /// order of their end position.
    pub fn find_all(&self, haystack: impl AsRef<[u8]>) -> Vec<Match> {
        let haystack = haystack.as_ref();
        let fold = |b: u8| {
            if self.case_insensitive {
                b.to_ascii_lowercase()
            } else {
                b
            }
        };
        let mut matches = Vec::new();
        let mut state = 0usize;
        for (i, &byte) in haystack.iter().enumerate() {
            state = self.step(state, fold(byte));
            let lo = self.out_start[state] as usize;
            let hi = self.out_start[state + 1] as usize;
            for &pid in &self.out_pattern[lo..hi] {
                let len = self.pattern_lens[pid as usize] as usize;
                matches.push(Match {
                    pattern: pid as usize,
                    // A valid automaton only emits patterns that fit
                    // before `i + 1`; saturate so a corrupt-but-
                    // validated input still cannot panic.
                    start: (i + 1).saturating_sub(len),
                    end: i + 1,
                });
            }
        }
        matches
    }

    /// Like [`AhoCorasick::find_all`], but keeps only matches aligned on
    /// word boundaries (the Baseline extractor matches whole entities,
    /// not arbitrary substrings of words).
    pub fn find_words(&self, haystack: &str) -> Vec<Match> {
        let bytes = haystack.as_bytes();
        let is_word = |i: usize| -> bool {
            i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
        };
        self.find_all(haystack)
            .into_iter()
            .filter(|m| {
                let left_ok = m.start == 0 || !is_word(m.start - 1) || !is_word(m.start);
                let right_ok = m.end == bytes.len() || !is_word(m.end) || !is_word(m.end - 1);
                left_ok && right_ok
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(patterns: &[&str]) -> AhoCorasick {
        let mut b = AhoCorasickBuilder::new();
        b.add_patterns(patterns);
        b.build()
    }

    /// Reference implementation: naive multi-pattern scan.
    fn naive(patterns: &[&str], haystack: &str) -> Vec<Match> {
        let hb = haystack.as_bytes();
        let mut out = Vec::new();
        for i in 0..hb.len() {
            for (pid, p) in patterns.iter().enumerate() {
                let pb = p.as_bytes();
                if pb.is_empty() {
                    continue;
                }
                if i + pb.len() <= hb.len() && &hb[i..i + pb.len()] == pb {
                    out.push(Match {
                        pattern: pid,
                        start: i,
                        end: i + pb.len(),
                    });
                }
            }
        }
        out
    }

    fn sorted(mut m: Vec<Match>) -> Vec<Match> {
        m.sort();
        m
    }

    #[test]
    fn classic_example() {
        // The canonical he/she/his/hers example from the 1975 paper.
        let ac = build(&["he", "she", "his", "hers"]);
        let m = ac.find_all("ushers");
        let found: Vec<(usize, usize, usize)> =
            m.iter().map(|m| (m.pattern, m.start, m.end)).collect();
        assert!(found.contains(&(1, 1, 4))); // she
        assert!(found.contains(&(0, 2, 4))); // he
        assert!(found.contains(&(3, 2, 6))); // hers
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn overlapping_matches_reported() {
        let ac = build(&["aa"]);
        let m = ac.find_all("aaaa");
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn insert_pattern_at_matches_fresh_build_in_merged_order() {
        // Start from a builder seeded with the "old" patterns, insert
        // the additions at their canonical positions, and compare the
        // flattened arrays against a from-scratch build over the merged
        // list — the invariant the dictionary delta path relies on.
        let merged = ["ant", "bee", "cat", "dog", "eel"];
        let mut incremental = AhoCorasickBuilder::new();
        incremental.add_patterns(["ant", "cat", "eel"]);
        incremental.insert_pattern_at(1, "bee");
        incremental.insert_pattern_at(3, "dog");
        incremental.insert_pattern_at(2, ""); // ignored
        assert_eq!(incremental.pattern_count(), merged.len());
        let mut fresh = AhoCorasickBuilder::new();
        fresh.add_patterns(merged);
        assert_eq!(incremental.build().parts(), fresh.build().parts());

        // Clamped insert appends.
        let mut clamped = AhoCorasickBuilder::new();
        clamped.add_pattern("ant");
        clamped.insert_pattern_at(99, "bee");
        let mut appended = AhoCorasickBuilder::new();
        appended.add_patterns(["ant", "bee"]);
        assert_eq!(clamped.build().parts(), appended.build().parts());
    }

    #[test]
    fn parts_round_trip_is_equivalent() {
        let ac = AhoCorasickBuilder::new()
            .ascii_case_insensitive(true)
            .add_patterns(["he", "she", "his", "hers"])
            .build();
        let (es, eb, et, f, os, op, pl, ci) = ac.parts();
        let rebuilt = AhoCorasick::from_parts(
            es.to_vec(),
            eb.to_vec(),
            et.to_vec(),
            f.to_vec(),
            os.to_vec(),
            op.to_vec(),
            pl.to_vec(),
            ci,
        )
        .expect("valid parts");
        assert_eq!(rebuilt.find_all(b"uSHeRs"), ac.find_all(b"uSHeRs"));
        assert_eq!(rebuilt.node_count(), ac.node_count());
    }

    #[test]
    fn from_parts_rejects_invalid_arrays() {
        type Parts = (
            Vec<u32>,
            Vec<u8>,
            Vec<u32>,
            Vec<u32>,
            Vec<u32>,
            Vec<u32>,
            Vec<u32>,
        );
        let ac = AhoCorasickBuilder::new().add_patterns(["ab", "bc"]).build();
        let (es, eb, et, f, os, op, pl, ci) = ac.parts();
        let attempt = |mutate: &dyn Fn(&mut Parts)| {
            let mut p: Parts = (
                es.to_vec(),
                eb.to_vec(),
                et.to_vec(),
                f.to_vec(),
                os.to_vec(),
                op.to_vec(),
                pl.to_vec(),
            );
            mutate(&mut p);
            AhoCorasick::from_parts(p.0, p.1, p.2, p.3, p.4, p.5, p.6, ci)
        };
        assert!(attempt(&|_| ()).is_ok());
        assert!(attempt(&|p| p.3.clear()).is_err());
        assert!(attempt(&|p| p.0[1] = 9999).is_err());
        assert!(attempt(&|p| p.2[0] = 9999).is_err());
        assert!(attempt(&|p| p.3[1] = 9999).is_err());
        assert!(attempt(&|p| p.5[0] = 9999).is_err());
        assert!(attempt(&|p| p.6[0] = 0).is_err());
    }

    #[test]
    fn no_patterns_no_matches() {
        let ac = AhoCorasickBuilder::new().build();
        assert!(ac.find_all("anything").is_empty());
        assert_eq!(ac.pattern_count(), 0);
    }

    #[test]
    fn empty_patterns_ignored() {
        let mut b = AhoCorasickBuilder::new();
        b.add_pattern("");
        b.add_pattern("x");
        let ac = b.build();
        assert_eq!(ac.pattern_count(), 1);
        assert_eq!(ac.find_all("xx").len(), 2);
    }

    #[test]
    fn case_insensitive() {
        let mut b = AhoCorasickBuilder::new().ascii_case_insensitive(true);
        b.add_pattern("Tuberculosis");
        let ac = b.build();
        assert_eq!(ac.find_all("TUBERCULOSIS and tuberculosis").len(), 2);
    }

    #[test]
    fn word_boundary_filter() {
        let mut b = AhoCorasickBuilder::new();
        b.add_pattern("ear");
        let ac = b.build();
        // "ear" inside "hearing" is not word-aligned.
        assert!(ac.find_words("hearing loss").is_empty());
        assert_eq!(ac.find_words("the ear hurts").len(), 1);
        assert_eq!(ac.find_words("ear").len(), 1);
    }

    #[test]
    fn multiword_patterns() {
        let ac = build(&["nervous system", "hearing loss"]);
        let m = ac.find_words("damage to the nervous system causes hearing loss");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn pattern_is_prefix_of_another() {
        let ac = build(&["can", "cancer", "cancerous"]);
        let m = ac.find_all("cancerous");
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn unicode_haystack_byte_offsets() {
        let ac = build(&["nerf"]);
        let hay = "café nerf naïve";
        for m in ac.find_all(hay) {
            assert_eq!(&hay[m.start..m.end], "nerf");
        }
    }

    proptest! {
        #[test]
        fn agrees_with_naive_search(
            patterns in prop::collection::vec("[ab]{1,4}", 1..6),
            haystack in "[ab]{0,40}",
        ) {
            let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
            let ac = build(&refs);
            prop_assert_eq!(sorted(ac.find_all(&haystack)), sorted(naive(&refs, &haystack)));
        }

        #[test]
        fn agrees_with_naive_search_wider_alphabet(
            patterns in prop::collection::vec("[a-e ]{1,6}", 1..8),
            haystack in "[a-e ]{0,60}",
        ) {
            let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
            let ac = build(&refs);
            prop_assert_eq!(sorted(ac.find_all(&haystack)), sorted(naive(&refs, &haystack)));
        }

        #[test]
        fn match_spans_valid(
            patterns in prop::collection::vec("[a-c]{1,5}", 1..5),
            haystack in "[a-c]{0,30}",
        ) {
            let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
            let ac = build(&refs);
            for m in ac.find_all(&haystack) {
                prop_assert!(m.end <= haystack.len());
                prop_assert_eq!(&haystack[m.start..m.end], refs[m.pattern]);
            }
        }
    }
}
