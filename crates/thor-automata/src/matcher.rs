//! Aho–Corasick automaton: trie construction, failure links, matching.

use std::collections::{HashMap, VecDeque};

/// A single pattern occurrence in the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Match {
    /// Index of the matched pattern (insertion order in the builder).
    pub pattern: usize,
    /// Byte offset of the first byte of the occurrence.
    pub start: usize,
    /// Byte offset one past the last byte of the occurrence.
    pub end: usize,
}

/// Builder: collect patterns, then [`AhoCorasickBuilder::build`].
#[derive(Debug, Default)]
pub struct AhoCorasickBuilder {
    patterns: Vec<Vec<u8>>,
    case_insensitive: bool,
}

impl AhoCorasickBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold ASCII case during both construction and matching.
    pub fn ascii_case_insensitive(mut self, yes: bool) -> Self {
        self.case_insensitive = yes;
        self
    }

    /// Add one pattern. Empty patterns are ignored (they would match at
    /// every position).
    pub fn add_pattern(&mut self, pattern: impl AsRef<[u8]>) -> &mut Self {
        let p = pattern.as_ref();
        if !p.is_empty() {
            self.patterns.push(p.to_vec());
        }
        self
    }

    /// Add many patterns.
    pub fn add_patterns<I, P>(&mut self, patterns: I) -> &mut Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        for p in patterns {
            self.add_pattern(p);
        }
        self
    }

    /// Construct the automaton.
    pub fn build(&self) -> AhoCorasick {
        let fold = |b: u8| {
            if self.case_insensitive {
                b.to_ascii_lowercase()
            } else {
                b
            }
        };

        // ---- goto (trie) ----
        let mut nodes: Vec<Node> = vec![Node::default()];
        for (pid, pat) in self.patterns.iter().enumerate() {
            let mut state = 0usize;
            for &byte in pat {
                let b = fold(byte);
                state = match nodes[state].next.get(&b) {
                    Some(&s) => s,
                    None => {
                        nodes.push(Node::default());
                        let new = nodes.len() - 1;
                        nodes[state].next.insert(b, new);
                        new
                    }
                };
            }
            nodes[state].outputs.push(pid);
        }

        // ---- failure links (BFS) ----
        let mut queue = VecDeque::new();
        let root_children: Vec<(u8, usize)> = nodes[0].next.iter().map(|(&b, &s)| (b, s)).collect();
        for (_, s) in root_children {
            nodes[s].fail = 0;
            queue.push_back(s);
        }
        while let Some(state) = queue.pop_front() {
            let children: Vec<(u8, usize)> =
                nodes[state].next.iter().map(|(&b, &s)| (b, s)).collect();
            for (b, child) in children {
                // Follow failures of `state` until a node with a `b`
                // transition (or the root).
                let mut f = nodes[state].fail;
                loop {
                    if let Some(&t) = nodes[f].next.get(&b) {
                        if t != child {
                            nodes[child].fail = t;
                            break;
                        }
                    }
                    if f == 0 {
                        nodes[child].fail = nodes[0]
                            .next
                            .get(&b)
                            .copied()
                            .filter(|&t| t != child)
                            .unwrap_or(0);
                        break;
                    }
                    f = nodes[f].fail;
                }
                // Merge outputs from the failure target.
                let fail_outputs = nodes[nodes[child].fail].outputs.clone();
                nodes[child].outputs.extend(fail_outputs);
                queue.push_back(child);
            }
        }

        AhoCorasick {
            nodes,
            pattern_lengths: self.patterns.iter().map(Vec::len).collect(),
            case_insensitive: self.case_insensitive,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Node {
    next: HashMap<u8, usize>,
    fail: usize,
    outputs: Vec<usize>,
}

/// The built automaton. Immutable and cheap to share.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lengths: Vec<usize>,
    case_insensitive: bool,
}

impl AhoCorasick {
    /// Number of patterns in the dictionary.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lengths.len()
    }

    /// Find **all** (overlapping) occurrences of every pattern, in
    /// order of their end position.
    pub fn find_all(&self, haystack: impl AsRef<[u8]>) -> Vec<Match> {
        let haystack = haystack.as_ref();
        let fold = |b: u8| {
            if self.case_insensitive {
                b.to_ascii_lowercase()
            } else {
                b
            }
        };
        let mut matches = Vec::new();
        let mut state = 0usize;
        for (i, &byte) in haystack.iter().enumerate() {
            let b = fold(byte);
            loop {
                if let Some(&next) = self.nodes[state].next.get(&b) {
                    state = next;
                    break;
                }
                if state == 0 {
                    break;
                }
                state = self.nodes[state].fail;
            }
            for &pid in &self.nodes[state].outputs {
                let len = self.pattern_lengths[pid];
                matches.push(Match {
                    pattern: pid,
                    start: i + 1 - len,
                    end: i + 1,
                });
            }
        }
        matches
    }

    /// Like [`AhoCorasick::find_all`], but keeps only matches aligned on
    /// word boundaries (the Baseline extractor matches whole entities,
    /// not arbitrary substrings of words).
    pub fn find_words(&self, haystack: &str) -> Vec<Match> {
        let bytes = haystack.as_bytes();
        let is_word = |i: usize| -> bool {
            i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
        };
        self.find_all(haystack)
            .into_iter()
            .filter(|m| {
                let left_ok = m.start == 0 || !is_word(m.start - 1) || !is_word(m.start);
                let right_ok = m.end == bytes.len() || !is_word(m.end) || !is_word(m.end - 1);
                left_ok && right_ok
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(patterns: &[&str]) -> AhoCorasick {
        let mut b = AhoCorasickBuilder::new();
        b.add_patterns(patterns);
        b.build()
    }

    /// Reference implementation: naive multi-pattern scan.
    fn naive(patterns: &[&str], haystack: &str) -> Vec<Match> {
        let hb = haystack.as_bytes();
        let mut out = Vec::new();
        for i in 0..hb.len() {
            for (pid, p) in patterns.iter().enumerate() {
                let pb = p.as_bytes();
                if pb.is_empty() {
                    continue;
                }
                if i + pb.len() <= hb.len() && &hb[i..i + pb.len()] == pb {
                    out.push(Match {
                        pattern: pid,
                        start: i,
                        end: i + pb.len(),
                    });
                }
            }
        }
        out
    }

    fn sorted(mut m: Vec<Match>) -> Vec<Match> {
        m.sort();
        m
    }

    #[test]
    fn classic_example() {
        // The canonical he/she/his/hers example from the 1975 paper.
        let ac = build(&["he", "she", "his", "hers"]);
        let m = ac.find_all("ushers");
        let found: Vec<(usize, usize, usize)> =
            m.iter().map(|m| (m.pattern, m.start, m.end)).collect();
        assert!(found.contains(&(1, 1, 4))); // she
        assert!(found.contains(&(0, 2, 4))); // he
        assert!(found.contains(&(3, 2, 6))); // hers
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn overlapping_matches_reported() {
        let ac = build(&["aa"]);
        let m = ac.find_all("aaaa");
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn no_patterns_no_matches() {
        let ac = AhoCorasickBuilder::new().build();
        assert!(ac.find_all("anything").is_empty());
        assert_eq!(ac.pattern_count(), 0);
    }

    #[test]
    fn empty_patterns_ignored() {
        let mut b = AhoCorasickBuilder::new();
        b.add_pattern("");
        b.add_pattern("x");
        let ac = b.build();
        assert_eq!(ac.pattern_count(), 1);
        assert_eq!(ac.find_all("xx").len(), 2);
    }

    #[test]
    fn case_insensitive() {
        let mut b = AhoCorasickBuilder::new().ascii_case_insensitive(true);
        b.add_pattern("Tuberculosis");
        let ac = b.build();
        assert_eq!(ac.find_all("TUBERCULOSIS and tuberculosis").len(), 2);
    }

    #[test]
    fn word_boundary_filter() {
        let mut b = AhoCorasickBuilder::new();
        b.add_pattern("ear");
        let ac = b.build();
        // "ear" inside "hearing" is not word-aligned.
        assert!(ac.find_words("hearing loss").is_empty());
        assert_eq!(ac.find_words("the ear hurts").len(), 1);
        assert_eq!(ac.find_words("ear").len(), 1);
    }

    #[test]
    fn multiword_patterns() {
        let ac = build(&["nervous system", "hearing loss"]);
        let m = ac.find_words("damage to the nervous system causes hearing loss");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn pattern_is_prefix_of_another() {
        let ac = build(&["can", "cancer", "cancerous"]);
        let m = ac.find_all("cancerous");
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn unicode_haystack_byte_offsets() {
        let ac = build(&["nerf"]);
        let hay = "café nerf naïve";
        for m in ac.find_all(hay) {
            assert_eq!(&hay[m.start..m.end], "nerf");
        }
    }

    proptest! {
        #[test]
        fn agrees_with_naive_search(
            patterns in prop::collection::vec("[ab]{1,4}", 1..6),
            haystack in "[ab]{0,40}",
        ) {
            let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
            let ac = build(&refs);
            prop_assert_eq!(sorted(ac.find_all(&haystack)), sorted(naive(&refs, &haystack)));
        }

        #[test]
        fn agrees_with_naive_search_wider_alphabet(
            patterns in prop::collection::vec("[a-e ]{1,6}", 1..8),
            haystack in "[a-e ]{0,60}",
        ) {
            let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
            let ac = build(&refs);
            prop_assert_eq!(sorted(ac.find_all(&haystack)), sorted(naive(&refs, &haystack)));
        }

        #[test]
        fn match_spans_valid(
            patterns in prop::collection::vec("[a-c]{1,5}", 1..5),
            haystack in "[a-c]{0,30}",
        ) {
            let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
            let ac = build(&refs);
            for m in ac.find_all(&haystack) {
                prop_assert!(m.end <= haystack.len());
                prop_assert_eq!(&haystack[m.start..m.end], refs[m.pattern]);
            }
        }
    }
}
