//! Delta chains over the v2 sectioned container.
//!
//! A **delta artifact** is an ordinary [`SectionFile`] that carries a
//! [`DELTA_META_SECTION`] naming its parent artifact (path, directory
//! checksum, engine fingerprint, chain depth) plus the subset of engine
//! sections that *changed* relative to that parent, each under its
//! original name and version. Unchanged sections are not repeated — a
//! reader resolves every section against the **topmost** chain file
//! that provides it, so a base plus N deltas behaves exactly like the
//! artifact a fresh build of the final state would have written.
//!
//! [`SectionChain::open`] walks parent links from the file it is given
//! down to the base, re-using the container's structural validation at
//! every hop and link-checking each delta's recorded parent directory
//! checksum against the actual parent (a mismatch is a named
//! [`ThorError::delta_base_mismatch`], never a checksum panic later).
//! [`SectionChain::compact_bytes`] folds the chain back into a single
//! base artifact: because the writer is deterministic and sections are
//! assembled in base order from their topmost providers, compaction of
//! a chain is byte-identical to a fresh save of the same engine state.

use std::path::{Path, PathBuf};

use crate::artifact::{ByteReader, ByteWriter};
use crate::error::{ResultExt, ThorError, ThorResult};
use crate::section::{MapMode, SectionEntry, SectionFile, SectionWriter};
use crate::view::{FrozenPool, FrozenSlice, Pod};

/// Name of the section that marks a file as a delta and links it to
/// its parent artifact.
pub const DELTA_META_SECTION: &str = "delta.meta";

/// Format version of the [`DELTA_META_SECTION`] payload.
pub const DELTA_META_VERSION: u32 = 1;

/// Maximum number of deltas a chain may stack on one base. The cap
/// bounds open cost, doubles as cycle protection for corrupt parent
/// links, and nudges operators toward `thor compact`.
pub const MAX_CHAIN_DEPTH: usize = 64;

/// The parent link stored in a delta artifact's [`DELTA_META_SECTION`].
/// Fields are public (with explicit [`encode`](Self::encode) /
/// [`parse`](Self::parse)) so tests and tools can craft or inspect
/// links directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaMeta {
    /// Path of the parent artifact; relative paths resolve against the
    /// delta file's own directory, so a chain stays valid when the
    /// directory moves as a unit.
    pub parent: String,
    /// The parent's header directory checksum
    /// ([`SectionFile::dir_checksum`]) — the byte-level identity the
    /// chain walk link-checks.
    pub parent_dir_checksum: u64,
    /// The parent *engine* fingerprint (config + data digests), the
    /// semantic identity the engine loader link-checks.
    pub parent_fingerprint: String,
    /// Position in the chain: 1 for a delta on the base, 2 for a delta
    /// on that, …
    pub depth: u64,
    /// Free-form provenance note (e.g. the CLI invocation).
    pub note: String,
}

impl DeltaMeta {
    /// Serialize the link for a [`DELTA_META_SECTION`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.parent);
        w.put_u64(self.parent_dir_checksum);
        w.put_str(&self.parent_fingerprint);
        w.put_u64(self.depth);
        w.put_str(&self.note);
        w.into_bytes()
    }

    /// Parse a [`DELTA_META_SECTION`] payload.
    pub fn parse(bytes: &[u8]) -> ThorResult<Self> {
        let mut r = ByteReader::new(bytes);
        let parent = r.get_str().ctx(|| DELTA_META_SECTION.to_string())?;
        let parent_dir_checksum = r.get_u64().ctx(|| DELTA_META_SECTION.to_string())?;
        let parent_fingerprint = r.get_str().ctx(|| DELTA_META_SECTION.to_string())?;
        let depth = r.get_u64().ctx(|| DELTA_META_SECTION.to_string())?;
        let note = r.get_str().ctx(|| DELTA_META_SECTION.to_string())?;
        r.finish(DELTA_META_SECTION)?;
        Ok(Self {
            parent,
            parent_dir_checksum,
            parent_fingerprint,
            depth,
            note,
        })
    }
}

/// A base artifact plus zero or more stacked deltas, opened and
/// link-verified as one unit. Section lookups resolve against the
/// topmost file that provides the section.
#[derive(Debug)]
pub struct SectionChain {
    /// `files[0]` is the base; the last entry is the file that was
    /// opened.
    files: Vec<SectionFile>,
    /// Paths in the same order as `files`.
    paths: Vec<PathBuf>,
    /// `metas[i]` is the parent link carried by `files[i + 1]`.
    metas: Vec<DeltaMeta>,
}

impl SectionChain {
    /// Open `path` and every ancestor it links to, all with the same
    /// backing `mode`. Structural validation runs per file exactly as
    /// in [`SectionFile::open`]; additionally each delta's
    /// `delta.meta` section is checksum-verified and its recorded
    /// parent directory checksum compared to the actual parent.
    pub fn open(path: &Path, mode: MapMode) -> ThorResult<Self> {
        let mut files: Vec<SectionFile> = Vec::new();
        let mut paths: Vec<PathBuf> = Vec::new();
        let mut metas: Vec<DeltaMeta> = Vec::new();
        let mut current = path.to_path_buf();
        loop {
            if files.len() > MAX_CHAIN_DEPTH {
                return Err(ThorError::validation(format!(
                    "delta chain under {} exceeds {MAX_CHAIN_DEPTH} deltas (or links form a \
                     cycle); fold it with `thor compact`",
                    path.display()
                )));
            }
            let file = SectionFile::open(&current, mode)?;
            let meta = if file.entry(DELTA_META_SECTION).is_some() {
                file.verify_section(DELTA_META_SECTION)
                    .ctx(|| format!("delta artifact {}", current.display()))?;
                Some(
                    DeltaMeta::parse(file.bytes(DELTA_META_SECTION)?)
                        .ctx(|| format!("delta artifact {}", current.display()))?,
                )
            } else {
                None
            };
            files.push(file);
            paths.push(current.clone());
            match meta {
                Some(m) => {
                    let parent = Path::new(&m.parent);
                    current = if parent.is_absolute() {
                        parent.to_path_buf()
                    } else {
                        current
                            .parent()
                            .unwrap_or_else(|| Path::new("."))
                            .join(parent)
                    };
                    metas.push(m);
                }
                None => break,
            }
        }
        files.reverse();
        paths.reverse();
        metas.reverse();
        let chain = Self {
            files,
            paths,
            metas,
        };
        for (i, meta) in chain.metas.iter().enumerate() {
            let found = chain.files[i].dir_checksum();
            if meta.parent_dir_checksum != found {
                return Err(ThorError::delta_base_mismatch(
                    chain.paths[i].display(),
                    format!("directory checksum {:#018x}", meta.parent_dir_checksum),
                    format!("directory checksum {found:#018x}"),
                ));
            }
        }
        Ok(chain)
    }

    /// A chain consisting of a single (non-delta) file that is already
    /// open — lets callers treat plain artifacts and chains uniformly.
    pub fn from_base(file: SectionFile, path: &Path) -> Self {
        Self {
            files: vec![file],
            paths: vec![path.to_path_buf()],
            metas: Vec::new(),
        }
    }

    /// Number of deltas stacked on the base (0 for a plain artifact).
    pub fn depth(&self) -> usize {
        self.files.len() - 1
    }

    /// The chain's files, base first.
    pub fn files(&self) -> &[SectionFile] {
        &self.files
    }

    /// The chain's file paths, base first.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Parent links, base-most first: `metas()[i]` is carried by
    /// `files()[i + 1]`.
    pub fn metas(&self) -> &[DeltaMeta] {
        &self.metas
    }

    /// The base artifact.
    pub fn base(&self) -> &SectionFile {
        &self.files[0]
    }

    /// The topmost artifact (the file that was opened).
    pub fn top(&self) -> &SectionFile {
        self.files.last().expect("chains are non-empty")
    }

    /// Whether any file in the chain is a kernel memory map.
    pub fn is_mapped(&self) -> bool {
        self.files.iter().any(SectionFile::is_mapped)
    }

    /// The topmost file providing `name` among `files()[..=upto]`.
    fn provider_upto(&self, name: &str, upto: usize) -> Option<&SectionFile> {
        self.files[..=upto]
            .iter()
            .rev()
            .find(|f| f.entry(name).is_some())
    }

    /// The resolved directory entry for `name` (topmost provider).
    pub fn entry(&self, name: &str) -> Option<&SectionEntry> {
        self.provider_upto(name, self.files.len() - 1)
            .and_then(|f| f.entry(name))
    }

    /// Resolved payload bytes for `name` (topmost provider).
    pub fn bytes(&self, name: &str) -> ThorResult<&[u8]> {
        match self.provider_upto(name, self.files.len() - 1) {
            Some(f) => f.bytes(name),
            None => Err(ThorError::validation(format!("missing section `{name}`"))),
        }
    }

    /// Payload bytes for `name` as the chain *prefix* ending at file
    /// `upto` would resolve them — what a reader of that prefix saw
    /// before later deltas stacked on. The engine loader uses this to
    /// link-check each delta's recorded parent fingerprint against the
    /// meta section of the prefix below it.
    pub fn bytes_upto(&self, name: &str, upto: usize) -> ThorResult<&[u8]> {
        match self.provider_upto(name, upto) {
            Some(f) => f.bytes(name),
            None => Err(ThorError::validation(format!("missing section `{name}`"))),
        }
    }

    /// A zero-copy typed view of the resolved section.
    pub fn frozen_slice<T: Pod>(&self, name: &str) -> ThorResult<FrozenSlice<T>> {
        match self.provider_upto(name, self.files.len() - 1) {
            Some(f) => f.frozen_slice(name),
            None => Err(ThorError::validation(format!("missing section `{name}`"))),
        }
    }

    /// A string/byte pool from an offsets section and a bytes section —
    /// each resolved independently, since a delta may patch one half of
    /// a pool without the other.
    pub fn pool(&self, offsets: &str, bytes: &str) -> ThorResult<FrozenPool> {
        Ok(FrozenPool::new(
            self.frozen_slice::<u64>(offsets)?,
            self.frozen_slice::<u8>(bytes)?,
        ))
    }

    /// Full verification of every file in the chain (checksums plus
    /// padding) — the owned-load and `thor inspect` policy.
    pub fn verify_all(&self) -> ThorResult<()> {
        self.verify_except(&[])
    }

    /// Verify every file, skipping sections named in `lazy` in each —
    /// the mapped-load policy. `delta.meta` sections were already
    /// verified during [`open`](Self::open).
    pub fn verify_except(&self, lazy: &[&str]) -> ThorResult<()> {
        for (f, p) in self.files.iter().zip(&self.paths) {
            f.verify_except(lazy)
                .ctx(|| format!("engine artifact {}", p.display()))?;
        }
        Ok(())
    }

    /// Fold the chain into a single base artifact: every base section,
    /// in base order, taken from its topmost provider. Deterministic —
    /// byte-identical to what a fresh save of the resolved state
    /// produces. Errors if a delta patches a section the base does not
    /// have (nothing defines its position in the canonical order).
    pub fn compact_bytes(&self) -> ThorResult<Vec<u8>> {
        for (i, f) in self.files.iter().enumerate().skip(1) {
            for e in f.entries() {
                if e.name != DELTA_META_SECTION && self.files[0].entry(&e.name).is_none() {
                    return Err(ThorError::validation(format!(
                        "delta {} patches section `{}` which the base does not have",
                        self.paths[i].display(),
                        e.name
                    )));
                }
            }
        }
        let mut w = SectionWriter::new();
        for base_entry in self.files[0].entries() {
            let f = self
                .provider_upto(&base_entry.name, self.files.len() - 1)
                .expect("the base itself provides this section");
            let e = f.entry(&base_entry.name).expect("provider has the entry");
            w.add(&base_entry.name, e.version, f.bytes(&base_entry.name)?);
        }
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::fnv1a;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "thor-chain-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_base(dir: &Path) -> PathBuf {
        let mut w = SectionWriter::new();
        w.add("alpha", 1, b"base alpha");
        w.add("beta", 2, b"base beta");
        let path = dir.join("base.eng");
        std::fs::write(&path, w.finish()).unwrap();
        path
    }

    fn write_delta(
        dir: &Path,
        name: &str,
        parent: &Path,
        depth: u64,
        patches: &[(&str, u32, &[u8])],
    ) -> PathBuf {
        let parent_file = SectionFile::open(parent, MapMode::Owned).unwrap();
        let meta = DeltaMeta {
            parent: parent.file_name().unwrap().to_string_lossy().into_owned(),
            parent_dir_checksum: parent_file.dir_checksum(),
            parent_fingerprint: "fp".to_string(),
            depth,
            note: String::new(),
        };
        let mut w = SectionWriter::new();
        w.add(DELTA_META_SECTION, DELTA_META_VERSION, &meta.encode());
        for (sec, version, payload) in patches {
            w.add(sec, *version, payload);
        }
        let path = dir.join(name);
        std::fs::write(&path, w.finish()).unwrap();
        path
    }

    #[test]
    fn meta_round_trips() {
        let meta = DeltaMeta {
            parent: "base.eng".into(),
            parent_dir_checksum: 0xDEAD_BEEF,
            parent_fingerprint: "abc123".into(),
            depth: 2,
            note: "thor delta --add-seeds x.csv".into(),
        };
        assert_eq!(DeltaMeta::parse(&meta.encode()).unwrap(), meta);
        assert!(DeltaMeta::parse(&meta.encode()[..5]).is_err());
    }

    #[test]
    fn chain_resolves_topmost_and_compacts_deterministically() {
        let dir = tmp();
        let base = write_base(&dir);
        let d1 = write_delta(&dir, "d1.eng", &base, 1, &[("beta", 2, b"d1 beta")]);
        let d2 = write_delta(&dir, "d2.eng", &d1, 2, &[("alpha", 1, b"d2 alpha")]);

        let chain = SectionChain::open(&d2, MapMode::Owned).unwrap();
        chain.verify_all().unwrap();
        assert_eq!(chain.depth(), 2);
        assert_eq!(chain.files().len(), 3);
        assert_eq!(chain.metas().len(), 2);
        assert_eq!(chain.metas()[0].depth, 1);
        assert_eq!(chain.bytes("alpha").unwrap(), b"d2 alpha");
        assert_eq!(chain.bytes("beta").unwrap(), b"d1 beta");
        // Prefix resolution: the chain up to d1 still sees base alpha.
        assert_eq!(chain.bytes_upto("alpha", 1).unwrap(), b"base alpha");
        assert_eq!(chain.bytes_upto("beta", 0).unwrap(), b"base beta");
        assert!(chain.bytes("gamma").is_err());

        // Compaction assembles topmost payloads in base section order
        // and is bit-identical to writing that state fresh.
        let compacted = chain.compact_bytes().unwrap();
        let mut fresh = SectionWriter::new();
        fresh.add("alpha", 1, b"d2 alpha");
        fresh.add("beta", 2, b"d1 beta");
        assert_eq!(compacted, fresh.finish());

        // A plain base opens as a depth-0 chain.
        let plain = SectionChain::open(&base, MapMode::Mapped).unwrap();
        assert_eq!(plain.depth(), 0);
        assert_eq!(plain.bytes("alpha").unwrap(), b"base alpha");
    }

    #[test]
    fn stale_parent_is_a_named_base_mismatch() {
        let dir = tmp();
        let base = write_base(&dir);
        let d1 = write_delta(&dir, "stale.eng", &base, 1, &[("beta", 2, b"new beta")]);
        // Rewrite the base after the delta was cut: its directory
        // checksum changes, so the link must fail by name.
        let mut w = SectionWriter::new();
        w.add("alpha", 1, b"rebuilt alpha");
        w.add("beta", 2, b"rebuilt beta");
        std::fs::write(&base, w.finish()).unwrap();
        let err = SectionChain::open(&d1, MapMode::Owned).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("delta base mismatch"), "{msg}");
        assert!(msg.contains("thor compact"), "{msg}");
    }

    #[test]
    fn corrupt_delta_meta_is_a_named_rejection() {
        let dir = tmp();
        let base = write_base(&dir);
        let d1 = write_delta(&dir, "corrupt.eng", &base, 1, &[("beta", 2, b"x")]);
        let mut bytes = std::fs::read(&d1).unwrap();
        let f = SectionFile::from_bytes(bytes.clone()).unwrap();
        let meta_off = f.entry(DELTA_META_SECTION).unwrap().offset as usize;
        drop(f);
        bytes[meta_off] ^= 0xff;
        std::fs::write(&d1, bytes).unwrap();
        let err = SectionChain::open(&d1, MapMode::Owned).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn self_referential_chain_hits_the_depth_cap() {
        let dir = tmp();
        let base = write_base(&dir);
        let d1 = write_delta(&dir, "loop.eng", &base, 1, &[]);
        // Point the delta at itself: re-cut it with parent = loop.eng.
        let loop_delta = write_delta(&dir, "loop.eng", &d1, 1, &[]);
        let err = SectionChain::open(&loop_delta, MapMode::Owned);
        // Either the self-link's recorded checksum no longer matches
        // (the rewrite changed the file) or the walk hits the cap; both
        // are named rejections, never a hang.
        assert!(err.is_err());
    }

    #[test]
    fn delta_with_unknown_section_cannot_compact() {
        let dir = tmp();
        let base = write_base(&dir);
        let d1 = write_delta(&dir, "extra.eng", &base, 1, &[("gamma", 1, b"new")]);
        let chain = SectionChain::open(&d1, MapMode::Owned).unwrap();
        let err = chain.compact_bytes().unwrap_err();
        assert!(err.to_string().contains("gamma"), "{err}");
    }

    #[test]
    fn dir_checksum_matches_header_field() {
        let dir = tmp();
        let base = write_base(&dir);
        let bytes = std::fs::read(&base).unwrap();
        let f = SectionFile::from_bytes(bytes.clone()).unwrap();
        let dir_off = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let dir_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        assert_eq!(f.dir_checksum(), fnv1a(&bytes[dir_off..dir_off + dir_len]));
    }
}
