//! Versioned binary artifact container: magic + format version +
//! length + FNV-1a checksum header around an opaque payload, written
//! atomically via [`crate::atomic_write`].
//!
//! The container is deliberately dumb — it knows nothing about what is
//! inside the payload. Higher layers (the `PreparedEngine` in
//! `thor-core`) serialize their state into a payload with
//! [`ByteWriter`], hand it to [`write_artifact`], and get back exactly
//! those bytes from [`read_artifact`] after the header has been
//! validated. Corruption anywhere in the file — flipped magic bytes, a
//! bumped version, a truncated tail, a flipped payload bit — is
//! rejected with a named [`ThorError`] before any payload parsing runs.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [ magic: 8 bytes ][ version: u32 ][ payload_len: u64 ][ fnv1a(payload): u64 ][ payload ]
//! ```

use std::path::Path;

use crate::atomic_io::{atomic_write, read_bytes};
use crate::error::{ThorError, ThorResult};

/// Size of the fixed header preceding the payload.
pub const ARTIFACT_HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// 64-bit FNV-1a over `bytes` — the same hash family the checkpoint
/// fingerprint uses. Every input byte goes through
/// `state = (state ^ b) * PRIME`, a bijection of the 64-bit state, so
/// any single-byte change changes the digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// Append-only little-endian payload encoder, the writing half of
/// [`ByteReader`].
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an `f32` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Consume the writer, returning the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential little-endian payload decoder. Every read is
/// bounds-checked; running off the end yields an [`ErrorKind::Parse`]
/// error carrying the byte offset where data ran out.
///
/// [`ErrorKind::Parse`]: crate::ErrorKind::Parse
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset into the payload.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> ThorResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(ThorError::parse(format!(
                "truncated payload: needed {n} bytes for {what}, {} left",
                self.remaining()
            ))
            .with_offset(self.pos));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> ThorResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> ThorResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> ThorResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> ThorResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an `f32` bit pattern.
    pub fn get_f32(&mut self) -> ThorResult<f32> {
        let b = self.take(4, "f32")?;
        Ok(f32::from_bits(u32::from_le_bytes(b.try_into().unwrap())))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> ThorResult<String> {
        let len = self.get_u64()? as usize;
        // Guard against absurd lengths from corrupted prefixes before
        // attempting the slice.
        if len > self.remaining() {
            return Err(ThorError::parse(format!(
                "truncated payload: string length {len} exceeds {} remaining bytes",
                self.remaining()
            ))
            .with_offset(self.pos));
        }
        let bytes = self.take(len, "string")?;
        String::from_utf8(bytes.to_vec()).map_err(|e| {
            ThorError::parse(format!("payload string is not UTF-8: {e}")).with_offset(self.pos)
        })
    }

    /// Assert the payload has been fully consumed (catches format
    /// drift where a writer appends fields a reader ignores).
    pub fn finish(self, what: &str) -> ThorResult<()> {
        if self.remaining() != 0 {
            return Err(ThorError::parse(format!(
                "{what}: {} trailing bytes after payload",
                self.remaining()
            ))
            .with_offset(self.pos));
        }
        Ok(())
    }
}

/// Write `payload` to `path` wrapped in a `magic`/`version`/checksum
/// header, atomically (temp file + fsync + rename).
pub fn write_artifact(
    path: &Path,
    magic: &[u8; 8],
    version: u32,
    payload: &[u8],
) -> ThorResult<()> {
    let mut bytes = Vec::with_capacity(ARTIFACT_HEADER_LEN + payload.len());
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&version.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    atomic_write(path, &bytes)
}

/// Read an artifact from `path`, validating magic, format version,
/// declared length and FNV-1a checksum; returns the raw payload.
///
/// Every rejection is a named [`ThorError`]:
/// - wrong magic → [`ErrorKind::Parse`] "not a ... artifact"
/// - wrong version → [`ErrorKind::Parse`] "unsupported ... format version"
/// - short file / length mismatch → [`ErrorKind::Parse`] "truncated"
/// - payload corruption → [`ErrorKind::Validation`] "checksum mismatch"
///
/// [`ErrorKind::Parse`]: crate::ErrorKind::Parse
/// [`ErrorKind::Validation`]: crate::ErrorKind::Validation
pub fn read_artifact(path: &Path, magic: &[u8; 8], version: u32) -> ThorResult<Vec<u8>> {
    let name = String::from_utf8_lossy(magic)
        .trim_end_matches('\0')
        .to_string();
    let bytes = read_bytes(path)?;
    if bytes.len() < ARTIFACT_HEADER_LEN {
        return Err(ThorError::parse(format!(
            "{}: truncated {name} artifact: {} bytes is shorter than the {ARTIFACT_HEADER_LEN}-byte header",
            path.display(),
            bytes.len()
        )));
    }
    if &bytes[..8] != magic {
        return Err(ThorError::parse(format!(
            "{}: not a {name} artifact (bad magic)",
            path.display()
        )));
    }
    let got_version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if got_version != version {
        return Err(ThorError::parse(format!(
            "{}: unsupported {name} format version {got_version} (expected {version})",
            path.display()
        )));
    }
    let declared_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload = &bytes[ARTIFACT_HEADER_LEN..];
    if declared_len != payload.len() as u64 {
        return Err(ThorError::parse(format!(
            "{}: truncated {name} artifact: header declares {declared_len} payload bytes, found {}",
            path.display(),
            payload.len()
        )));
    }
    let declared_sum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let actual_sum = fnv1a(payload);
    if declared_sum != actual_sum {
        return Err(ThorError::validation(format!(
            "{}: {name} artifact checksum mismatch (expected {declared_sum:016x}, computed {actual_sum:016x})",
            path.display()
        )));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"THORTST\0";

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "thor-artifact-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(42);
        w.put_u64(u64::MAX);
        w.put_f64(0.7);
        w.put_f32(-1.25);
        w.put_str("naïve phrase");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 42);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap().to_bits(), 0.7f64.to_bits());
        assert_eq!(r.get_f32().unwrap(), -1.25);
        assert_eq!(r.get_str().unwrap(), "naïve phrase");
        r.finish("test payload").unwrap();
    }

    #[test]
    fn reader_names_truncation_offset() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u32().unwrap();
        let err = r.get_u64().unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Parse);
        assert!(err.to_string().contains("truncated"));
        assert_eq!(err.offset(), Some(4));
    }

    #[test]
    fn corrupt_string_length_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd string length
        let bytes = w.into_bytes();
        let err = ByteReader::new(&bytes).get_str().unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn artifact_round_trip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.bin");
        let payload = b"hello artifact payload".to_vec();
        write_artifact(&path, MAGIC, 3, &payload).unwrap();
        assert_eq!(read_artifact(&path, MAGIC, 3).unwrap(), payload);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_version_truncation_and_checksum_are_named() {
        let dir = tmp_dir("named");
        let path = dir.join("a.bin");
        write_artifact(&path, MAGIC, 1, b"payload bytes here").unwrap();
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let err = read_artifact(&path, MAGIC, 1).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");

        // Version mismatch.
        let err = {
            std::fs::write(&path, &good).unwrap();
            read_artifact(&path, MAGIC, 2).unwrap_err()
        };
        assert!(err.to_string().contains("unsupported"), "{err}");

        // Truncation.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        let err = read_artifact(&path, MAGIC, 1).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // Payload flip → checksum mismatch.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        let err = read_artifact(&path, MAGIC, 1).unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Validation);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv1a_detects_every_single_byte_flip() {
        let payload = b"abcdefgh".to_vec();
        let base = fnv1a(&payload);
        for i in 0..payload.len() {
            for bit in 0..8 {
                let mut mutated = payload.clone();
                mutated[i] ^= 1 << bit;
                assert_ne!(fnv1a(&mutated), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
