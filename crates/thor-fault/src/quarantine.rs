//! The quarantine ledger: per-document failures recorded instead of
//! aborting the run.
//!
//! In lenient mode one bad document costs one document — its id, the
//! pipeline stage that rejected it, the error, and (when known) the
//! byte offset land here, and the run carries on.

use std::fmt::Write as _;

use crate::error::{ErrorKind, ThorError};

/// One quarantined item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// The document (or row) identifier.
    pub doc_id: String,
    /// The stage that failed (`read_doc`, `validate`, `segment`,
    /// `extract`, `csv_row`, …).
    pub stage: String,
    /// The failure class.
    pub kind: ErrorKind,
    /// Rendered error message.
    pub error: String,
    /// Byte offset of the failure within the input, when known.
    pub byte_offset: Option<usize>,
}

impl QuarantineEntry {
    /// Build an entry from a pipeline error.
    pub fn from_error(
        doc_id: impl Into<String>,
        stage: impl Into<String>,
        err: &ThorError,
    ) -> Self {
        Self {
            doc_id: doc_id.into(),
            stage: stage.into(),
            kind: err.kind(),
            error: err.to_string(),
            byte_offset: err.offset(),
        }
    }
}

/// The failures of one run, in quarantine order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    entries: Vec<QuarantineEntry>,
}

impl QuarantineReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one failure.
    pub fn push(&mut self, entry: QuarantineEntry) {
        self.entries.push(entry);
    }

    /// Absorb another report's entries (e.g. CLI read-stage failures
    /// merged with the core run's).
    pub fn extend(&mut self, other: QuarantineReport) {
        self.entries.extend(other.entries);
    }

    /// All entries, in quarantine order.
    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }

    /// Number of quarantined items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries recorded for `stage`.
    pub fn stage_count(&self, stage: &str) -> usize {
        self.entries.iter().filter(|e| e.stage == stage).count()
    }

    /// Render as TSV: `doc_id<TAB>stage<TAB>kind<TAB>byte_offset<TAB>error`,
    /// one line per entry, with a header. Tabs/newlines inside the error
    /// message are space-escaped so the TSV stays line-oriented.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("doc_id\tstage\tkind\tbyte_offset\terror\n");
        for e in &self.entries {
            let offset = e
                .byte_offset
                .map(|o| o.to_string())
                .unwrap_or_else(|| "-".to_string());
            let msg = e.error.replace(['\t', '\n', '\r'], " ");
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                e.doc_id,
                e.stage,
                e.kind.label(),
                offset,
                msg
            );
        }
        out
    }

    /// One-line human summary, for run banners.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "quarantine: empty".to_string();
        }
        let mut stages: Vec<&str> = self.entries.iter().map(|e| e.stage.as_str()).collect();
        stages.sort_unstable();
        stages.dedup();
        let per_stage: Vec<String> = stages
            .iter()
            .map(|s| format!("{s} {}", self.stage_count(s)))
            .collect();
        format!(
            "quarantine: {} item(s) ({})",
            self.len(),
            per_stage.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(doc: &str, stage: &str) -> QuarantineEntry {
        QuarantineEntry::from_error(
            doc,
            stage,
            &ThorError::validation("invalid UTF-8").with_offset(7),
        )
    }

    #[test]
    fn entry_captures_error_fields() {
        let e = entry("doc3", "validate");
        assert_eq!(e.kind, ErrorKind::Validation);
        assert_eq!(e.byte_offset, Some(7));
        assert!(e.error.contains("invalid UTF-8"));
    }

    #[test]
    fn report_counts_and_summary() {
        let mut r = QuarantineReport::new();
        r.push(entry("a", "validate"));
        r.push(entry("b", "extract"));
        r.push(entry("c", "extract"));
        assert_eq!(r.len(), 3);
        assert_eq!(r.stage_count("extract"), 2);
        let s = r.summary();
        assert!(s.contains("3 item(s)"), "{s}");
        assert!(s.contains("extract 2"), "{s}");
        assert_eq!(QuarantineReport::new().summary(), "quarantine: empty");
    }

    #[test]
    fn tsv_is_line_oriented_even_with_hostile_messages() {
        let mut r = QuarantineReport::new();
        r.push(QuarantineEntry {
            doc_id: "d".into(),
            stage: "read_doc".into(),
            kind: ErrorKind::Io,
            error: "multi\nline\terror".into(),
            byte_offset: None,
        });
        let tsv = r.to_tsv();
        assert_eq!(tsv.lines().count(), 2, "{tsv}");
        assert!(tsv.lines().nth(1).unwrap().contains("multi line error"));
        assert!(tsv.contains("\t-\t"), "missing offset renders as -");
    }

    #[test]
    fn extend_merges_in_order() {
        let mut a = QuarantineReport::new();
        a.push(entry("a", "read_doc"));
        let mut b = QuarantineReport::new();
        b.push(entry("b", "extract"));
        a.extend(b);
        assert_eq!(a.entries()[1].doc_id, "b");
    }
}
