#![warn(missing_docs)]
//! # thor-fault
//!
//! The fault-tolerance substrate of the THOR reproduction: everything
//! the pipeline needs to *tunnel through* dirty inputs and survive
//! crashes instead of aborting on the first malformed byte.
//!
//! Five pieces, all std-only (no registry deps, matching the vendored
//! shim convention):
//!
//! - [`error`] — the workspace-wide [`ThorError`] taxonomy with
//!   source/context chaining, replacing `Result<_, String>` plumbing.
//! - [`failpoint`] — named, deterministic fault-injection points
//!   (`THOR_FAILPOINTS=read_doc:err@3,extract:panic@7`) compiled into
//!   I/O and pipeline seams; zero-cost when unarmed.
//! - [`atomic_io`] — atomic file writes (temp file + fsync + rename +
//!   parent-directory fsync) so a kill never leaves truncated artifacts
//!   behind and a completed rename survives power loss.
//! - [`cancel`] — the cooperative [`CancelToken`] checked between
//!   pipeline stages, backing per-request deadline budgets.
//! - [`artifact`] — the versioned binary artifact container (magic +
//!   format version + FNV-1a checksum header) used by persistable
//!   engine bundles; rejects corrupt/truncated/mismatched files before
//!   any payload parsing runs.
//! - [`section`] — the v2 sectioned artifact container: 64-byte-aligned
//!   named sections with per-section checksums and a checksummed
//!   directory, designed so hot arrays can be used in place from a
//!   memory-mapped file.
//! - [`chain`] — delta chains over the sectioned container: a base
//!   artifact plus stacked per-section patches ([`DeltaMeta`] parent
//!   links), resolved topmost-wins on open and foldable back into a
//!   single base via [`SectionChain::compact_bytes`].
//! - [`mmap`] — the std-only read-only mapping shim ([`MappedBuf`])
//!   with an aligned heap fallback.
//! - [`view`] — owned-or-mapped array views ([`FrozenSlice`],
//!   [`FrozenPool`]) the engine structs hold their hot arrays in.
//! - [`validate`] — document admission control: UTF-8 decoding with
//!   byte offsets, size caps, empty/garbage detection.
//! - [`quarantine`] — the per-document failure ledger (doc id, stage,
//!   error, byte offset) lenient runs report instead of dying.
//! - [`checkpoint`] — the resumable-run state file: processed-doc set,
//!   partial slot-fills, quarantine entries, and a metrics snapshot.

pub mod artifact;
pub mod atomic_io;
pub mod cancel;
pub mod chain;
pub mod checkpoint;
pub mod error;
pub mod failpoint;
pub mod mmap;
pub mod quarantine;
pub mod section;
pub mod validate;
pub mod view;

pub use artifact::{fnv1a, read_artifact, write_artifact, ByteReader, ByteWriter};
pub use atomic_io::{atomic_write, read_bytes, read_to_string};
pub use cancel::CancelToken;
pub use chain::{DeltaMeta, SectionChain, DELTA_META_SECTION, DELTA_META_VERSION, MAX_CHAIN_DEPTH};
pub use checkpoint::{fingerprint, Checkpoint, EntityRecord};
pub use error::{ErrorKind, ResultExt, ThorError, ThorResult};
pub use failpoint::{
    fail_point, failpoints_armed, install_from_env, scoped_failpoints, FailAction, FailpointsGuard,
};
pub use mmap::MappedBuf;
pub use quarantine::{QuarantineEntry, QuarantineReport};
pub use section::{
    MapMode, SectionEntry, SectionFile, SectionWriter, CONTAINER_VERSION, SECTION_ALIGN,
    SECTION_MAGIC,
};
pub use validate::{decode_document, validate_text, DocumentPolicy};
pub use view::{FrozenPool, FrozenSlice, Pod};
