//! Borrowed-or-owned views over artifact sections.
//!
//! The zero-copy engine structs (`VectorStore`, `VectorIndex`, the
//! prepared candidate lists) hold their hot arrays as [`FrozenSlice`]s:
//! either an owned `Vec<T>` (fresh in-memory builds) or a typed view
//! into a shared [`MappedBuf`] (engines loaded from a v2 artifact).
//! `Deref<Target = [T]>` lets hot loops bind a plain `&[T]` once per
//! call, so the backing split costs one branch per *call*, not per
//! *element* — no dynamic dispatch anywhere on the scan paths.
//!
//! Views are only constructed by the section reader after it has
//! validated bounds, element-size divisibility and alignment, so the
//! `unsafe` reinterpret below is confined to invariants checked at load
//! time. [`Pod`] is sealed to the five scalar types the artifact
//! format stores; byte layout is little-endian by definition (v2
//! artifacts refuse to open on big-endian hosts).

use std::sync::Arc;

use crate::mmap::MappedBuf;

mod private {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Plain-old-data scalars that may be reinterpreted directly from
/// artifact bytes. Sealed: exactly `u8`, `u32`, `u64`, `f32`, `f64`.
///
/// # Safety
/// Implementors must be valid for every bit pattern and have no
/// padding; the sealed impls all satisfy this.
pub unsafe trait Pod: private::Sealed + Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

#[derive(Clone)]
enum Inner<T: Pod> {
    Owned(Vec<T>),
    Viewed {
        buf: Arc<MappedBuf>,
        /// Byte offset of the first element inside `buf`.
        offset: usize,
        /// Element count.
        len: usize,
    },
}

/// An immutable `[T]` that is either owned or a zero-copy view into a
/// mapped artifact. See the module docs.
#[derive(Clone)]
pub struct FrozenSlice<T: Pod> {
    inner: Inner<T>,
}

impl<T: Pod> FrozenSlice<T> {
    /// An empty owned slice.
    pub fn empty() -> Self {
        Vec::new().into()
    }

    /// Construct a view over `buf[offset .. offset + len * size_of::<T>()]`.
    ///
    /// # Panics
    /// Debug-asserts bounds and alignment; callers (the section reader)
    /// must have validated both. A release-mode violation would still be
    /// caught by the bounds check in `as_slice`.
    pub(crate) fn view(buf: Arc<MappedBuf>, offset: usize, len: usize) -> Self {
        debug_assert!(offset
            .checked_add(len * std::mem::size_of::<T>())
            .is_some_and(|end| end <= buf.len()));
        debug_assert_eq!(
            (buf.as_slice().as_ptr() as usize + offset) % std::mem::align_of::<T>(),
            0
        );
        Self {
            inner: Inner::Viewed { buf, offset, len },
        }
    }

    /// The elements. Hot paths should call this (or deref) once and
    /// keep the `&[T]`.
    pub fn as_slice(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(v) => v,
            Inner::Viewed { buf, offset, len } => {
                let bytes = &buf.as_slice()[*offset..*offset + *len * std::mem::size_of::<T>()];
                // SAFETY: bounds and alignment validated at view
                // construction (section reader) and re-checked by the
                // slice indexing above; `T: Pod` is valid for any bits.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, *len) }
            }
        }
    }

    /// Whether this slice borrows a mapped buffer (vs owning its data).
    pub fn is_view(&self) -> bool {
        matches!(self.inner, Inner::Viewed { .. })
    }
}

impl<T: Pod> From<Vec<T>> for FrozenSlice<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            inner: Inner::Owned(v),
        }
    }
}

impl<T: Pod> std::ops::Deref for FrozenSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Default for FrozenSlice<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for FrozenSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenSlice")
            .field("len", &self.as_slice().len())
            .field("view", &self.is_view())
            .finish()
    }
}

impl<T: Pod + PartialEq> PartialEq for FrozenSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A frozen string/byte pool: `offsets[i] .. offsets[i + 1]` delimits
/// item `i` inside `bytes`. This is the on-artifact representation of
/// sorted word lists (vocabulary, candidate words).
///
/// Accessors are fully defensive — out-of-range or non-monotone
/// offsets yield empty items instead of panicking — because under
/// mapped loads the big pools are covered by structural validation
/// only (their checksums are what owned loads and `thor inspect` pay
/// for); garbage in is garbage out, but never a panic and never UB.
#[derive(Clone, Debug, Default)]
pub struct FrozenPool {
    offsets: FrozenSlice<u64>,
    bytes: FrozenSlice<u8>,
}

impl FrozenPool {
    /// Assemble a pool from its two sections (or owned vectors).
    pub fn new(offsets: FrozenSlice<u64>, bytes: FrozenSlice<u8>) -> Self {
        Self { offsets, bytes }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.offsets.as_slice().len().saturating_sub(1)
    }

    /// Whether the pool has no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Item `i`'s bytes (empty if `i` is out of range or the offsets
    /// are corrupt).
    pub fn get(&self, i: usize) -> &[u8] {
        let offsets = self.offsets.as_slice();
        let (Some(&lo), Some(&hi)) = (offsets.get(i), offsets.get(i + 1)) else {
            return &[];
        };
        let (lo, hi) = (lo as usize, hi as usize);
        if lo > hi {
            return &[];
        }
        self.bytes.as_slice().get(lo..hi).unwrap_or(&[])
    }

    /// Item `i` as UTF-8, if valid.
    pub fn get_str(&self, i: usize) -> Option<&str> {
        std::str::from_utf8(self.get(i)).ok()
    }

    /// The underlying offsets.
    pub fn offsets(&self) -> &FrozenSlice<u64> {
        &self.offsets
    }

    /// The underlying byte pool.
    pub fn bytes(&self) -> &FrozenSlice<u8> {
        &self.bytes
    }

    /// Binary search for `needle` among the items, which must be
    /// sorted ascending by byte order (the writer guarantees this for
    /// vocabulary pools). Corrupt offsets degrade to a wrong lookup,
    /// never a panic.
    pub fn binary_search_bytes(&self, needle: &[u8]) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.get(mid).cmp(needle) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Build an owned pool from items (in the given order).
    pub fn from_items<I, B>(items: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let mut offsets: Vec<u64> = vec![0];
        let mut bytes: Vec<u8> = Vec::new();
        for item in items {
            bytes.extend_from_slice(item.as_ref());
            offsets.push(bytes.len() as u64);
        }
        Self {
            offsets: offsets.into(),
            bytes: bytes.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_slice_derefs() {
        let s: FrozenSlice<f32> = vec![1.0, 2.5].into();
        assert_eq!(&*s, &[1.0, 2.5]);
        assert!(!s.is_view());
    }

    #[test]
    fn pool_round_trip_and_search() {
        let pool = FrozenPool::from_items(["alpha", "beta", "gamma"]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.get_str(1), Some("beta"));
        assert_eq!(pool.get(3), b"");
        // Sorted order: alpha < beta < gamma.
        assert_eq!(pool.binary_search_bytes(b"beta"), Ok(1));
        assert_eq!(pool.binary_search_bytes(b"delta"), Err(2));
    }

    #[test]
    fn corrupt_offsets_degrade_without_panicking() {
        let pool = FrozenPool::new(vec![5, 2, 999].into(), vec![0u8; 4].into());
        assert_eq!(pool.get(0), b"", "non-monotone");
        assert_eq!(pool.get(1), b"", "out of bounds");
        let _ = pool.binary_search_bytes(b"x");
    }
}
