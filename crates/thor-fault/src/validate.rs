//! Document admission control: cheap validation that runs before a
//! document enters the pipeline, so garbage is quarantined at the door
//! with a precise reason instead of producing nonsense downstream.

use crate::error::{ThorError, ThorResult};

/// Validation policy for incoming documents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocumentPolicy {
    /// Hard cap on document size in bytes (protects the O(n²)-ish NLP
    /// stages from a concatenated dump arriving as "one document").
    pub max_bytes: usize,
    /// Documents with fewer non-whitespace characters are rejected as
    /// empty.
    pub min_chars: usize,
    /// Maximum tolerated fraction of garbage characters (control codes,
    /// U+FFFD replacement chars) among non-whitespace characters.
    pub max_garbage_ratio: f64,
}

impl Default for DocumentPolicy {
    fn default() -> Self {
        Self {
            max_bytes: 8 * 1024 * 1024,
            min_chars: 1,
            max_garbage_ratio: 0.5,
        }
    }
}

/// Decode raw bytes into document text under `policy`: UTF-8 with the
/// exact byte offset of the first invalid sequence, then
/// [`validate_text`].
pub fn decode_document(doc_id: &str, bytes: &[u8], policy: &DocumentPolicy) -> ThorResult<String> {
    if bytes.len() > policy.max_bytes {
        return Err(ThorError::validation(format!(
            "document `{doc_id}`: {} bytes exceeds the {} byte cap",
            bytes.len(),
            policy.max_bytes
        )));
    }
    let text = std::str::from_utf8(bytes).map_err(|e| {
        ThorError::validation(format!("document `{doc_id}`: invalid UTF-8"))
            .with_offset(e.valid_up_to())
    })?;
    validate_text(doc_id, text, policy)?;
    Ok(text.to_string())
}

/// Validate already-decoded text: size cap, emptiness, garbage ratio.
pub fn validate_text(doc_id: &str, text: &str, policy: &DocumentPolicy) -> ThorResult<()> {
    if text.len() > policy.max_bytes {
        return Err(ThorError::validation(format!(
            "document `{doc_id}`: {} bytes exceeds the {} byte cap",
            text.len(),
            policy.max_bytes
        )));
    }
    let mut content = 0usize;
    let mut garbage = 0usize;
    let mut first_garbage_offset = None;
    for (offset, c) in text.char_indices() {
        if c.is_whitespace() {
            continue;
        }
        content += 1;
        if c == '\u{FFFD}' || (c.is_control() && c != '\t') {
            garbage += 1;
            first_garbage_offset.get_or_insert(offset);
        }
    }
    if content < policy.min_chars {
        return Err(ThorError::validation(format!(
            "document `{doc_id}`: empty ({content} non-whitespace chars, need {})",
            policy.min_chars
        )));
    }
    let ratio = garbage as f64 / content as f64;
    if ratio > policy.max_garbage_ratio {
        let mut err = ThorError::validation(format!(
            "document `{doc_id}`: {:.0}% garbage characters (limit {:.0}%)",
            ratio * 100.0,
            policy.max_garbage_ratio * 100.0
        ));
        if let Some(offset) = first_garbage_offset {
            err = err.with_offset(offset);
        }
        return Err(err);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_document_passes() {
        let p = DocumentPolicy::default();
        let text = decode_document("d", "Tuberculosis damages the lungs.".as_bytes(), &p).unwrap();
        assert!(text.starts_with("Tuberculosis"));
    }

    #[test]
    fn invalid_utf8_rejected_with_offset() {
        let p = DocumentPolicy::default();
        let bytes = b"good text \xFF\xFE more";
        let err = decode_document("d", bytes, &p).unwrap_err();
        assert_eq!(err.offset(), Some(10));
        assert!(err.to_string().contains("invalid UTF-8"));
    }

    #[test]
    fn oversized_document_rejected() {
        let p = DocumentPolicy {
            max_bytes: 16,
            ..DocumentPolicy::default()
        };
        let err = decode_document("d", &[b'a'; 17], &p).unwrap_err();
        assert!(err.to_string().contains("byte cap"));
        assert!(validate_text("d", &"a".repeat(17), &p).is_err());
    }

    #[test]
    fn empty_and_whitespace_only_rejected() {
        let p = DocumentPolicy::default();
        assert!(validate_text("d", "", &p).is_err());
        assert!(validate_text("d", " \n\t  ", &p).is_err());
        assert!(validate_text("d", "x", &p).is_ok());
    }

    #[test]
    fn garbage_soup_rejected_real_text_passes() {
        let p = DocumentPolicy::default();
        let soup: String = "\u{FFFD}\u{0001}\u{FFFD}a".into();
        let err = validate_text("d", &soup, &p).unwrap_err();
        assert!(err.to_string().contains("garbage"));
        assert_eq!(err.offset(), Some(0));
        // Tabs and newlines are not garbage.
        assert!(validate_text("d", "col1\tcol2\nrow", &p).is_ok());
        // A stray replacement char inside real text is tolerated.
        assert!(validate_text("d", "mostly fine text \u{FFFD} here", &p).is_ok());
    }
}
