//! Crash-safe file I/O: atomic writes and contextual reads.
//!
//! Every artifact the pipeline persists (enriched CSV, entities TSV,
//! checkpoints, quarantine reports) goes through [`atomic_write`]: the
//! bytes land in a temp file in the destination directory, are fsynced,
//! and are renamed over the target. A `kill -9` at any instant leaves
//! either the old complete file or the new complete file — never a
//! truncated hybrid.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{ThorError, ThorResult};
use crate::failpoint::fail_point;

/// Read a file's bytes, naming the path in the error.
pub fn read_bytes(path: &Path) -> ThorResult<Vec<u8>> {
    fs::read(path).map_err(|e| ThorError::io(path.display(), e))
}

/// Read a file as UTF-8 text, naming the path in the error.
pub fn read_to_string(path: &Path) -> ThorResult<String> {
    fs::read_to_string(path).map_err(|e| ThorError::io(path.display(), e))
}

/// Monotonic discriminator so concurrent writers in one process never
/// collide on a temp name.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replace `path` with `bytes`: temp file in the same
/// directory + `fsync` + `rename`, then `fsync` of the directory entry
/// (on Unix), so a crash at any point leaves no truncated output.
///
/// Carries the `atomic_write` failpoint (fires before anything is
/// touched, so an injected fault leaves the previous artifact intact).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> ThorResult<()> {
    fail_point("atomic_write")?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| ThorError::config(format!("{}: not a file path", path.display())))?;
    let temp = dir.join(format!(
        ".{}.tmp-{}-{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));

    let result = (|| -> ThorResult<()> {
        let mut f = File::create(&temp).map_err(|e| ThorError::io(temp.display(), e))?;
        f.write_all(bytes)
            .map_err(|e| ThorError::io(temp.display(), e))?;
        f.sync_all().map_err(|e| ThorError::io(temp.display(), e))?;
        fs::rename(&temp, path).map_err(|e| ThorError::io(path.display(), e))?;
        // Persist the rename itself: fsync the containing directory.
        // Failures here are real durability gaps (a crash could roll the
        // rename back), so they propagate instead of being swallowed.
        #[cfg(unix)]
        {
            let d = File::open(&dir)
                .map_err(|e| ThorError::io(format!("open {} for fsync", dir.display()), e))?;
            d.sync_all()
                .map_err(|e| ThorError::io(format!("fsync {}", dir.display()), e))?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&temp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::scoped_failpoints;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "thor-fault-io-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_read_round_trip() {
        let dir = temp_dir("rt");
        let path = dir.join("out.csv");
        atomic_write(&path, b"a,b\n1,2\n").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "a,b\n1,2\n");
        assert_eq!(read_bytes(&path).unwrap(), b"a,b\n1,2\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_whole_file() {
        let dir = temp_dir("ow");
        let path = dir.join("out.csv");
        atomic_write(&path, b"long original content").unwrap();
        atomic_write(&path, b"new").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "new");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_temp_litter_after_writes() {
        let dir = temp_dir("lit");
        atomic_write(&dir.join("a.txt"), b"x").unwrap();
        atomic_write(&dir.join("a.txt"), b"y").unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.txt"], "temp files must not survive");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fault_preserves_previous_artifact() {
        let dir = temp_dir("fp");
        let path = dir.join("out.csv");
        atomic_write(&path, b"old").unwrap();
        {
            let _guard = scoped_failpoints("atomic_write:err");
            let err = atomic_write(&path, b"new").unwrap_err();
            assert_eq!(err.kind(), crate::error::ErrorKind::Injected);
        }
        assert_eq!(read_to_string(&path).unwrap(), "old");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_errors_name_the_path() {
        let missing = Path::new("/nonexistent/thor/xyz.csv");
        let err = read_to_string(missing).unwrap_err();
        assert!(err.to_string().contains("xyz.csv"), "{err}");
    }
}
