//! Deterministic fault injection: named failpoints compiled into the
//! pipeline's I/O and processing seams.
//!
//! A failpoint is armed with a spec string, either programmatically
//! ([`scoped_failpoints`], for tests) or from the `THOR_FAILPOINTS`
//! environment variable ([`install_from_env`], for the CLI and the
//! kill-and-resume smoke):
//!
//! ```text
//! THOR_FAILPOINTS=read_doc:err@3,extract:panic@7,checkpoint_save:abort
//! ```
//!
//! Each entry is `name:action[@n]` — on the `n`-th evaluation (1-based,
//! default 1) of `fail_point(name)` the action fires **once**:
//!
//! - `err`   — the seam returns an [`ErrorKind::Injected`] `ThorError`,
//! - `panic` — the seam panics (exercising `catch_unwind` isolation),
//! - `abort` — the process dies via `std::process::abort()`, the
//!   deterministic stand-in for `kill -9` in crash/resume tests.
//!
//! When nothing is armed, `fail_point` is a single relaxed atomic load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::error::{ThorError, ThorResult};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return an injected [`ThorError`] from the seam.
    Err,
    /// Panic at the seam.
    Panic,
    /// Abort the process (deterministic `kill -9`).
    Abort,
}

#[derive(Debug)]
struct Failpoint {
    action: FailAction,
    /// Fires when `hits` reaches this 1-based count.
    at: u64,
    hits: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Failpoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Failpoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Poison-tolerant lock: a panic fired *by* a failpoint while the map
/// lock is held elsewhere must not wedge the harness.
fn lock_registry() -> MutexGuard<'static, HashMap<String, Failpoint>> {
    registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Parse a spec string (`name:action[@n],...`) into failpoints.
fn parse_spec(spec: &str) -> ThorResult<HashMap<String, Failpoint>> {
    let mut map = HashMap::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (name, rest) = entry.split_once(':').ok_or_else(|| {
            ThorError::config(format!("failpoint `{entry}`: expected name:action"))
        })?;
        let (action, at) = match rest.split_once('@') {
            Some((action, n)) => {
                let at: u64 = n.parse().map_err(|_| {
                    ThorError::config(format!("failpoint `{entry}`: bad hit count `{n}`"))
                })?;
                if at == 0 {
                    return Err(ThorError::config(format!(
                        "failpoint `{entry}`: hit count is 1-based"
                    )));
                }
                (action, at)
            }
            None => (rest, 1),
        };
        let action = match action {
            "err" => FailAction::Err,
            "panic" => FailAction::Panic,
            "abort" => FailAction::Abort,
            other => {
                return Err(ThorError::config(format!(
                    "failpoint `{entry}`: unknown action `{other}` (err|panic|abort)"
                )))
            }
        };
        map.insert(
            name.to_string(),
            Failpoint {
                action,
                at,
                hits: 0,
            },
        );
    }
    Ok(map)
}

/// Arm failpoints from a spec string, replacing whatever was armed.
/// An empty spec disarms everything.
pub fn set_failpoints(spec: &str) -> ThorResult<()> {
    let parsed = parse_spec(spec)?;
    let armed = !parsed.is_empty();
    *lock_registry() = parsed;
    ARMED.store(armed, Ordering::Release);
    Ok(())
}

/// Disarm every failpoint.
pub fn clear_failpoints() {
    lock_registry().clear();
    ARMED.store(false, Ordering::Release);
}

/// Arm failpoints from `THOR_FAILPOINTS`, if set. Call once at process
/// start; a malformed spec is an error (silently ignoring a typoed
/// injection spec would un-test the chaos suite).
pub fn install_from_env() -> ThorResult<()> {
    match std::env::var("THOR_FAILPOINTS") {
        Ok(spec) => set_failpoints(&spec),
        Err(_) => Ok(()),
    }
}

/// Are any failpoints currently armed?
pub fn failpoints_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Evaluate the failpoint `name`: a no-op unless armed, in which case
/// the armed action fires on its configured hit.
pub fn fail_point(name: &str) -> ThorResult<()> {
    if !ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    let action = {
        let mut map = lock_registry();
        match map.get_mut(name) {
            Some(fp) => {
                fp.hits += 1;
                (fp.hits == fp.at).then_some(fp.action)
            }
            None => None,
        }
    };
    match action {
        None => Ok(()),
        Some(FailAction::Err) => Err(ThorError::injected(name)),
        Some(FailAction::Panic) => panic!("injected panic at failpoint `{name}`"),
        Some(FailAction::Abort) => std::process::abort(),
    }
}

/// The canonical failpoint names compiled into the workspace's seams,
/// for docs and for the chaos suite's "every site" sweep. Per-document
/// sites quarantine in lenient mode; run-level sites fail the run (or,
/// for `checkpoint_save` in lenient mode, skip the checkpoint).
pub const SITES: &[&str] = &[
    "read_table",      // CLI: integrated-table CSV read+parse (run-level)
    "read_doc",        // CLI: per-document file read
    "read_vectors",    // thor-embed: vector-file load (run-level)
    "validate",        // thor-core: per-document admission control
    "segment",         // thor-core: per-document segmentation
    "extract",         // thor-core: per-document entity extraction
    "slot_fill",       // thor-core: run-level slot filling
    "checkpoint_save", // thor-fault: checkpoint persistence
    "atomic_write",    // thor-fault: any atomic artifact write (run-level)
    "serve_request",   // thor-serve: per-request seam in the HTTP front end
    "reload_open",     // thor-serve: candidate artifact open during hot reload
    "reload_validate", // thor-serve: candidate validation during hot reload
    "swap",            // thor-core: the engine-slot generation swap itself
    "worker_panic",    // thor-serve: accept-worker seam (kills one worker)
];

/// Serializes tests that arm the (global) failpoint registry.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard for tests: holds a global lock so concurrently running
/// tests never see each other's failpoints, and disarms on drop.
#[derive(Debug)]
pub struct FailpointsGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FailpointsGuard {
    fn drop(&mut self) {
        clear_failpoints();
    }
}

/// Arm `spec` for the lifetime of the returned guard (test helper).
///
/// # Panics
/// On a malformed spec — tests should fail loudly.
pub fn scoped_failpoints(spec: &str) -> FailpointsGuard {
    let lock = TEST_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    set_failpoints(spec).expect("valid failpoint spec");
    FailpointsGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    #[test]
    fn unarmed_failpoints_are_noops() {
        let _guard = scoped_failpoints("");
        assert!(!failpoints_armed());
        assert!(fail_point("read_doc").is_ok());
    }

    #[test]
    fn err_action_fires_on_nth_hit_once() {
        let _guard = scoped_failpoints("read_doc:err@3");
        assert!(failpoints_armed());
        assert!(fail_point("read_doc").is_ok());
        assert!(fail_point("read_doc").is_ok());
        let err = fail_point("read_doc").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Injected);
        assert!(err.to_string().contains("read_doc"));
        // Fires once, not on every hit past n.
        assert!(fail_point("read_doc").is_ok());
        // Other names are unaffected.
        assert!(fail_point("extract").is_ok());
    }

    #[test]
    fn panic_action_panics() {
        let _guard = scoped_failpoints("extract:panic");
        let caught = std::panic::catch_unwind(|| fail_point("extract"));
        assert!(caught.is_err());
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _guard = scoped_failpoints("segment:err");
        }
        assert!(!failpoints_armed());
        assert!(fail_point("segment").is_ok());
    }

    #[test]
    fn malformed_specs_rejected() {
        for bad in ["nocolon", "x:boom", "x:err@zero", "x:err@0"] {
            assert!(set_failpoints(bad).is_err(), "{bad} should be rejected");
        }
        clear_failpoints();
    }

    #[test]
    fn multi_entry_spec_and_whitespace() {
        let _guard = scoped_failpoints(" read_doc:err@1 , extract:err@2 ");
        assert!(fail_point("read_doc").is_err());
        assert!(fail_point("extract").is_ok());
        assert!(fail_point("extract").is_err());
    }

    #[test]
    fn canonical_sites_are_distinct() {
        let mut names: Vec<&str> = SITES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SITES.len());
    }
}
