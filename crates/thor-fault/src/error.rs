//! [`ThorError`] — the workspace-wide, non-panicking error taxonomy.
//!
//! Every fallible ingest or I/O path returns a `ThorError` carrying a
//! [`ErrorKind`] (what class of failure), a message naming the offending
//! artifact (path, line, document id), optional context frames pushed by
//! callers on the way up, and an optional chained source error.

use std::error::Error;
use std::fmt;

/// Convenience alias used across the workspace.
pub type ThorResult<T> = Result<T, ThorError>;

/// The class of a failure — the dimension quarantine accounting and the
/// CLI's exit reporting group by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Operating-system I/O failure (open/read/write/rename/fsync).
    Io,
    /// Input that could not be parsed (CSV, vector file, TSV, spec).
    Parse,
    /// Input that parsed but was rejected by admission control
    /// (invalid UTF-8, size cap, garbage document).
    Validation,
    /// A caught panic from an isolated pipeline stage.
    Panic,
    /// Checkpoint state that is missing, corrupt, or mismatched.
    Checkpoint,
    /// Bad configuration (unknown flag, out-of-range value).
    Config,
    /// A deterministically injected fault (failpoint harness).
    Injected,
    /// A cooperative cancellation fired: the request's deadline budget
    /// expired between pipeline stages.
    Deadline,
}

impl ErrorKind {
    /// Stable lower-case label (used in quarantine TSVs and tests).
    pub fn label(&self) -> &'static str {
        match self {
            ErrorKind::Io => "io",
            ErrorKind::Parse => "parse",
            ErrorKind::Validation => "validation",
            ErrorKind::Panic => "panic",
            ErrorKind::Checkpoint => "checkpoint",
            ErrorKind::Config => "config",
            ErrorKind::Injected => "injected",
            ErrorKind::Deadline => "deadline",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A structured pipeline error: kind + message + context chain + source.
#[derive(Debug)]
pub struct ThorError {
    kind: ErrorKind,
    message: String,
    /// Context frames, innermost first (pushed as the error bubbles up).
    context: Vec<String>,
    /// Byte offset into the offending input, when known (UTF-8 decode
    /// errors, truncated records) — surfaced in quarantine reports.
    offset: Option<usize>,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl ThorError {
    /// A new error of `kind` with a human message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            context: Vec::new(),
            offset: None,
            source: None,
        }
    }

    /// An [`ErrorKind::Io`] error naming the path it happened on.
    pub fn io(path: impl fmt::Display, source: std::io::Error) -> Self {
        Self::new(ErrorKind::Io, format!("{path}: {source}")).with_source(source)
    }

    /// An [`ErrorKind::Parse`] error.
    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Parse, message)
    }

    /// An [`ErrorKind::Validation`] error.
    pub fn validation(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Validation, message)
    }

    /// An [`ErrorKind::Validation`] error for a delta artifact whose
    /// recorded base does not match the artifact it resolves against.
    /// Names both identities so the operator can see *which* base the
    /// delta wanted, and points at `thor compact` as the way out of a
    /// stale chain.
    pub fn delta_base_mismatch(
        base: impl fmt::Display,
        expected: impl fmt::Display,
        found: impl fmt::Display,
    ) -> Self {
        Self::new(
            ErrorKind::Validation,
            format!(
                "delta base mismatch at {base}: the delta was built against {expected} but this \
                 base is {found}; rebuild the delta against the current base or fold the chain \
                 with `thor compact`"
            ),
        )
    }

    /// An [`ErrorKind::Panic`] error from a caught panic payload.
    pub fn panic(stage: &str, payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Self::new(ErrorKind::Panic, format!("{stage} panicked: {msg}"))
    }

    /// An [`ErrorKind::Checkpoint`] error.
    pub fn checkpoint(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Checkpoint, message)
    }

    /// An [`ErrorKind::Config`] error.
    pub fn config(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Config, message)
    }

    /// An [`ErrorKind::Injected`] error from the failpoint `name`.
    pub fn injected(name: &str) -> Self {
        Self::new(ErrorKind::Injected, format!("injected fault at `{name}`"))
    }

    /// An [`ErrorKind::Deadline`] error naming the stage the budget
    /// expired before.
    pub fn deadline(stage: &str) -> Self {
        Self::new(
            ErrorKind::Deadline,
            format!("deadline exceeded before `{stage}`"),
        )
    }

    /// Attach a chained source error.
    pub fn with_source(mut self, source: impl Error + Send + Sync + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// Attach the byte offset of the failure within its input.
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = Some(offset);
        self
    }

    /// Push a context frame (e.g. the file or stage the error passed
    /// through on its way up).
    pub fn context(mut self, frame: impl Into<String>) -> Self {
        self.context.push(frame.into());
        self
    }

    /// The failure class.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The byte offset of the failure, when known.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }

    /// The innermost message, without context frames.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ThorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Outermost context first: "ctx2: ctx1: message".
        for frame in self.context.iter().rev() {
            write!(f, "{frame}: ")?;
        }
        f.write_str(&self.message)?;
        if let Some(offset) = self.offset {
            write!(f, " (byte {offset})")?;
        }
        Ok(())
    }
}

impl Error for ThorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|e| e as &(dyn Error + 'static))
    }
}

impl From<ThorError> for String {
    fn from(e: ThorError) -> String {
        e.to_string()
    }
}

/// Extension adding `.ctx(..)` to any `Result` with a `ThorError`-like
/// error, so call sites can annotate the artifact they were touching.
pub trait ResultExt<T> {
    /// Push a (lazily built) context frame onto the error.
    fn ctx(self, frame: impl FnOnce() -> String) -> ThorResult<T>;
}

impl<T> ResultExt<T> for ThorResult<T> {
    fn ctx(self, frame: impl FnOnce() -> String) -> ThorResult<T> {
        self.map_err(|e| e.context(frame()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains_context_outermost_first() {
        let e = ThorError::parse("expected 3 fields, got 1")
            .context("table.csv:7")
            .context("reading --table");
        assert_eq!(
            e.to_string(),
            "reading --table: table.csv:7: expected 3 fields, got 1"
        );
        assert_eq!(e.kind(), ErrorKind::Parse);
    }

    #[test]
    fn offset_rendered_and_accessible() {
        let e = ThorError::validation("invalid utf-8").with_offset(17);
        assert_eq!(e.offset(), Some(17));
        assert!(e.to_string().ends_with("(byte 17)"));
    }

    #[test]
    fn io_errors_keep_source_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = ThorError::io("docs/a.txt", io);
        assert_eq!(e.kind(), ErrorKind::Io);
        assert!(e.to_string().contains("docs/a.txt"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn panic_payload_extraction() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        let e = ThorError::panic("extract", payload.as_ref());
        assert_eq!(e.kind(), ErrorKind::Panic);
        assert!(e.to_string().contains("extract panicked: boom"));
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned boom"));
        assert!(ThorError::panic("s", payload.as_ref())
            .to_string()
            .contains("owned boom"));
    }

    #[test]
    fn result_ext_adds_context() {
        let r: ThorResult<()> = Err(ThorError::parse("bad"));
        let e = r.ctx(|| "loading vectors.txt".into()).unwrap_err();
        assert_eq!(e.to_string(), "loading vectors.txt: bad");
    }

    #[test]
    fn kind_labels_are_stable() {
        for (kind, label) in [
            (ErrorKind::Io, "io"),
            (ErrorKind::Parse, "parse"),
            (ErrorKind::Validation, "validation"),
            (ErrorKind::Panic, "panic"),
            (ErrorKind::Checkpoint, "checkpoint"),
            (ErrorKind::Config, "config"),
            (ErrorKind::Injected, "injected"),
            (ErrorKind::Deadline, "deadline"),
        ] {
            assert_eq!(kind.label(), label);
            assert_eq!(kind.to_string(), label);
        }
    }
}
