//! Read-only file buffers for zero-copy artifact access.
//!
//! [`MappedBuf`] is the one primitive the section reader builds on: a
//! contiguous, immutable, 64-byte-aligned byte buffer backed either by
//! a private read-only `mmap(2)` of the file (the zero-copy path — the
//! kernel pages data in on demand and N processes mapping the same
//! artifact share one physical copy) or by an aligned heap allocation
//! filled with `read(2)` (the portable fallback, and the fully-verified
//! "owned" load mode).
//!
//! The mapping shim is std-only: std already links libc on unix, so the
//! two raw `extern "C"` declarations below resolve without any new
//! dependency. On non-unix targets [`MappedBuf::map_file`] degrades to
//! the heap path (documented, deterministic — never a silent behavioral
//! fork on unix, where an `mmap` failure is a named error instead).

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::fs::File;
use std::io::Read;
use std::path::Path;

use crate::error::{ThorError, ThorResult};

/// Guaranteed minimum alignment of a [`MappedBuf`]'s base address.
///
/// Heap buffers are allocated with this alignment; `mmap` returns
/// page-aligned addresses (≥ 4096). Section offsets are multiples of
/// 64, so any section start inside a `MappedBuf` is aligned for every
/// scalar type the artifact stores (`u8`/`u32`/`u64`/`f32`/`f64`).
pub const BUF_ALIGN: usize = 64;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[derive(Debug)]
enum Backing {
    /// 64-byte-aligned heap allocation of `capacity` bytes.
    Heap { capacity: usize },
    /// Kernel mapping of exactly `len` bytes (unmapped on drop).
    #[cfg(unix)]
    Map,
}

/// An immutable byte buffer over a whole file: either a read-only
/// memory map or an aligned heap copy. See the module docs.
pub struct MappedBuf {
    ptr: *mut u8,
    len: usize,
    backing: Backing,
}

// SAFETY: the buffer is immutable after construction and the pointer is
// uniquely owned (heap) or a private read-only mapping (mmap); sharing
// `&[u8]` views across threads is sound.
unsafe impl Send for MappedBuf {}
unsafe impl Sync for MappedBuf {}

impl MappedBuf {
    fn heap_layout(len: usize) -> Layout {
        // Zero-length buffers still get a real (dangling-free) pointer.
        Layout::from_size_align(len.max(1), BUF_ALIGN).expect("buffer layout")
    }

    /// Allocate a zeroed 64-byte-aligned heap buffer of `len` bytes
    /// (used by `read_file` and by in-memory artifact tests that need
    /// the same alignment guarantees a file load provides).
    pub(crate) fn alloc_heap(len: usize) -> Self {
        let layout = Self::heap_layout(len);
        // SAFETY: layout has non-zero size by construction.
        let ptr = unsafe { alloc(layout) };
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        // SAFETY: freshly allocated, valid for `layout.size()` writes.
        unsafe { std::ptr::write_bytes(ptr, 0, layout.size()) };
        Self {
            ptr,
            len,
            backing: Backing::Heap {
                capacity: layout.size(),
            },
        }
    }

    /// Mutable access to a heap buffer during construction.
    ///
    /// # Safety
    /// Callers must hold the only reference (no `as_slice` borrows
    /// alive) and must not call this on a kernel-mapped buffer.
    pub(crate) unsafe fn as_mut_slice(&mut self) -> &mut [u8] {
        debug_assert!(!self.is_mapped());
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }

    /// Read `path` fully into a fresh 64-byte-aligned heap buffer.
    pub fn read_file(path: &Path) -> ThorResult<Self> {
        let mut file = open(path)?;
        let len = file_len(&file, path)?;
        let mut buf = Self::alloc_heap(len);
        // SAFETY: `buf` is freshly allocated and not yet shared.
        let dst = unsafe { buf.as_mut_slice() };
        file.read_exact(dst)
            .map_err(|e| ThorError::io(format!("read {}", path.display()), e))?;
        Ok(buf)
    }

    /// Map `path` read-only. On unix this is a private `mmap(2)` and a
    /// failure is a named I/O error (never a silent fallback); on other
    /// targets it is the documented portable fallback,
    /// [`read_file`](Self::read_file).
    pub fn map_file(path: &Path) -> ThorResult<Self> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = open(path)?;
            let len = file_len(&file, path)?;
            if len == 0 {
                // mmap(2) rejects zero-length maps; an empty artifact is
                // representable (and will fail header validation later).
                return Self::read_file(path);
            }
            // SAFETY: a fresh private read-only mapping of an open fd;
            // the fd may be closed after mmap returns (the mapping keeps
            // its own reference to the file).
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(ThorError::io(
                    format!("mmap {}", path.display()),
                    std::io::Error::last_os_error(),
                ));
            }
            Ok(Self {
                ptr: ptr as *mut u8,
                len,
                backing: Backing::Map,
            })
        }
        #[cfg(not(unix))]
        {
            Self::read_file(path)
        }
    }

    /// Whether this buffer is a kernel memory map (as opposed to a heap
    /// copy).
    pub fn is_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(self.backing, Backing::Map)
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is valid for `len` bytes for the lifetime of
        // `self` and never written after construction.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MappedBuf {
    fn drop(&mut self) {
        match self.backing {
            Backing::Heap { capacity } => {
                let layout = Layout::from_size_align(capacity, BUF_ALIGN).expect("buffer layout");
                // SAFETY: allocated in `read_file` with this exact layout.
                unsafe { dealloc(self.ptr, layout) };
            }
            #[cfg(unix)]
            Backing::Map => {
                // SAFETY: `ptr`/`len` came from a successful mmap call.
                unsafe { sys::munmap(self.ptr as *mut _, self.len) };
            }
        }
    }
}

impl std::fmt::Debug for MappedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedBuf")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

fn open(path: &Path) -> ThorResult<File> {
    File::open(path).map_err(|e| ThorError::io(format!("open {}", path.display()), e))
}

fn file_len(file: &File, path: &Path) -> ThorResult<usize> {
    let meta = file
        .metadata()
        .map_err(|e| ThorError::io(format!("stat {}", path.display()), e))?;
    usize::try_from(meta.len()).map_err(|_| {
        ThorError::new(
            crate::error::ErrorKind::Io,
            format!(
                "{}: file length {} exceeds address space",
                path.display(),
                meta.len()
            ),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("thor-mmap-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn heap_read_round_trips_and_aligns() {
        let path = temp_path("heap.bin");
        let data: Vec<u8> = (0..=255).collect();
        std::fs::write(&path, &data).unwrap();
        let buf = MappedBuf::read_file(&path).unwrap();
        assert_eq!(buf.as_slice(), &data[..]);
        assert!(!buf.is_mapped());
        assert_eq!(buf.as_slice().as_ptr() as usize % BUF_ALIGN, 0);
    }

    #[test]
    fn map_round_trips() {
        let path = temp_path("map.bin");
        let data = vec![7u8; 10_000];
        std::fs::write(&path, &data).unwrap();
        let buf = MappedBuf::map_file(&path).unwrap();
        assert_eq!(buf.as_slice(), &data[..]);
        assert_eq!(buf.as_slice().as_ptr() as usize % BUF_ALIGN, 0);
        #[cfg(unix)]
        assert!(buf.is_mapped());
    }

    #[test]
    fn empty_file_is_representable() {
        let path = temp_path("empty.bin");
        std::fs::write(&path, b"").unwrap();
        for buf in [
            MappedBuf::read_file(&path).unwrap(),
            MappedBuf::map_file(&path).unwrap(),
        ] {
            assert!(buf.is_empty());
            assert_eq!(buf.as_slice(), b"");
        }
    }

    #[test]
    fn missing_file_is_a_named_error() {
        let err = MappedBuf::map_file(Path::new("/nonexistent/thor.bin")).unwrap_err();
        assert!(err.to_string().contains("open"), "{err}");
    }
}
