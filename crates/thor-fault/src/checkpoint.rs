//! Resumable-run state: the checkpoint a crashed `enrich` continues
//! from.
//!
//! A checkpoint directory holds two atomically-written files:
//!
//! - `state.tsv` — a line-oriented record file: a versioned header, a
//!   run fingerprint (so a checkpoint is never resumed against different
//!   inputs), the processed-document set, every extracted entity so far
//!   (scores as exact f64 bit patterns, so a resumed run reproduces the
//!   uninterrupted run byte-for-byte), and the quarantine ledger.
//! - `metrics.json` — a thor-obs metrics snapshot, re-absorbed on
//!   resume so counters span the whole logical run.
//!
//! All fields are tab/newline/backslash-escaped; the format is
//! deliberately dependency-free (no serde in the workspace).

use std::collections::BTreeSet;
use std::path::Path;

use crate::atomic_io::{atomic_write, read_to_string};
use crate::error::{ThorError, ThorResult};
use crate::failpoint::fail_point;

const HEADER: &str = "thor-checkpoint v1";
const STATE_FILE: &str = "state.tsv";
const METRICS_FILE: &str = "metrics.json";

/// A checkpointed extracted entity — mirrors `thor_core::ExtractedEntity`
/// field-for-field, with the score kept as raw bits for exact round-trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityRecord {
    /// Source document id.
    pub doc_id: String,
    /// Owning subject instance.
    pub subject: String,
    /// Assigned concept.
    pub concept: String,
    /// Extracted phrase.
    pub phrase: String,
    /// `f64::to_bits` of the combined score.
    pub score_bits: u64,
    /// The seed instance that anchored the match.
    pub matched_instance: String,
    /// Sentence index within the document.
    pub sentence_index: usize,
}

use crate::quarantine::{QuarantineEntry, QuarantineReport};

/// The state of a partially-completed enrichment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the run inputs (table, config, document set);
    /// resuming against a different fingerprint is refused.
    pub fingerprint: String,
    /// Documents fully handled (processed *or* quarantined).
    pub processed: BTreeSet<String>,
    /// Entities extracted so far (partial slot-fills).
    pub entities: Vec<EntityRecord>,
    /// Failures quarantined so far.
    pub quarantine: QuarantineReport,
    /// Metrics snapshot JSON (thor-obs format), if recorded.
    pub metrics_json: Option<String>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> ThorResult<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(ThorError::checkpoint(format!(
                    "bad escape `\\{}` in checkpoint field",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

impl Checkpoint {
    /// An empty checkpoint for a run identified by `fingerprint`.
    pub fn new(fingerprint: impl Into<String>) -> Self {
        Self {
            fingerprint: fingerprint.into(),
            ..Self::default()
        }
    }

    /// Serialize to the `state.tsv` text format.
    fn to_state_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "fingerprint\t{}", escape(&self.fingerprint));
        for doc in &self.processed {
            let _ = writeln!(out, "doc\t{}", escape(doc));
        }
        for e in &self.entities {
            let _ = writeln!(
                out,
                "ent\t{}\t{}\t{}\t{}\t{:016x}\t{}\t{}",
                escape(&e.doc_id),
                escape(&e.subject),
                escape(&e.concept),
                escape(&e.phrase),
                e.score_bits,
                escape(&e.matched_instance),
                e.sentence_index
            );
        }
        for q in self.quarantine.entries() {
            let _ = writeln!(
                out,
                "quar\t{}\t{}\t{}\t{}\t{}",
                escape(&q.doc_id),
                escape(&q.stage),
                q.kind.label(),
                q.byte_offset
                    .map(|o| o.to_string())
                    .unwrap_or_else(|| "-".into()),
                escape(&q.error)
            );
        }
        out
    }

    /// Parse the `state.tsv` text format.
    fn from_state_text(text: &str) -> ThorResult<Self> {
        let mut lines = text.lines();
        match lines.next() {
            Some(HEADER) => {}
            other => {
                return Err(ThorError::checkpoint(format!(
                    "bad checkpoint header: {other:?} (expected `{HEADER}`)"
                )))
            }
        }
        let mut cp = Checkpoint::default();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| {
                ThorError::checkpoint(format!("state.tsv:{lineno}: malformed `{what}` record"))
            };
            let mut fields = line.split('\t');
            match fields.next() {
                Some("fingerprint") => {
                    cp.fingerprint = unescape(fields.next().ok_or_else(|| bad("fingerprint"))?)?;
                }
                Some("doc") => {
                    cp.processed
                        .insert(unescape(fields.next().ok_or_else(|| bad("doc"))?)?);
                }
                Some("ent") => {
                    let f: Vec<&str> = fields.collect();
                    if f.len() != 7 {
                        return Err(bad("ent"));
                    }
                    cp.entities.push(EntityRecord {
                        doc_id: unescape(f[0])?,
                        subject: unescape(f[1])?,
                        concept: unescape(f[2])?,
                        phrase: unescape(f[3])?,
                        score_bits: u64::from_str_radix(f[4], 16).map_err(|_| bad("ent"))?,
                        matched_instance: unescape(f[5])?,
                        sentence_index: f[6].parse().map_err(|_| bad("ent"))?,
                    });
                }
                Some("quar") => {
                    let f: Vec<&str> = fields.collect();
                    if f.len() != 5 {
                        return Err(bad("quar"));
                    }
                    let kind = match f[2] {
                        "io" => crate::error::ErrorKind::Io,
                        "parse" => crate::error::ErrorKind::Parse,
                        "validation" => crate::error::ErrorKind::Validation,
                        "panic" => crate::error::ErrorKind::Panic,
                        "checkpoint" => crate::error::ErrorKind::Checkpoint,
                        "config" => crate::error::ErrorKind::Config,
                        "injected" => crate::error::ErrorKind::Injected,
                        _ => return Err(bad("quar")),
                    };
                    cp.quarantine.push(QuarantineEntry {
                        doc_id: unescape(f[0])?,
                        stage: unescape(f[1])?,
                        kind,
                        byte_offset: if f[3] == "-" {
                            None
                        } else {
                            Some(f[3].parse().map_err(|_| bad("quar"))?)
                        },
                        error: unescape(f[4])?,
                    });
                }
                Some(other) => {
                    return Err(ThorError::checkpoint(format!(
                        "state.tsv:{lineno}: unknown record type `{other}`"
                    )))
                }
                None => {}
            }
        }
        Ok(cp)
    }

    /// Atomically persist this checkpoint into `dir` (created if
    /// missing). Carries the `checkpoint_save` failpoint.
    pub fn save(&self, dir: &Path) -> ThorResult<()> {
        fail_point("checkpoint_save")?;
        std::fs::create_dir_all(dir).map_err(|e| ThorError::io(dir.display(), e))?;
        atomic_write(&dir.join(STATE_FILE), self.to_state_text().as_bytes())?;
        if let Some(json) = &self.metrics_json {
            atomic_write(&dir.join(METRICS_FILE), json.as_bytes())?;
        }
        Ok(())
    }

    /// Load the checkpoint stored in `dir`. `Ok(None)` when `dir` has no
    /// state file (a fresh run); corrupt state is an error.
    pub fn load(dir: &Path) -> ThorResult<Option<Checkpoint>> {
        let state_path = dir.join(STATE_FILE);
        if !state_path.exists() {
            return Ok(None);
        }
        let text = read_to_string(&state_path)?;
        let mut cp = Self::from_state_text(&text)
            .map_err(|e| e.context(format!("loading checkpoint {}", dir.display())))?;
        let metrics_path = dir.join(METRICS_FILE);
        if metrics_path.exists() {
            cp.metrics_json = Some(read_to_string(&metrics_path)?);
        }
        Ok(Some(cp))
    }
}

/// FNV-1a fingerprint over ordered string parts — ties a checkpoint to
/// the inputs (table, τ, document ids) that produced it.
pub fn fingerprint<I, S>(parts: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_ref().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Separator so ["ab","c"] != ["a","bc"].
        h ^= 0x1F;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    fn sample() -> Checkpoint {
        let mut cp = Checkpoint::new("abc123");
        cp.processed.insert("doc1".into());
        cp.processed.insert("doc with\ttab".into());
        cp.entities.push(EntityRecord {
            doc_id: "doc1".into(),
            subject: "Acoustic Neuroma".into(),
            concept: "Complication".into(),
            phrase: "deaf\nness".into(),
            score_bits: (0.53f64).to_bits(),
            matched_instance: "skin cancer".into(),
            sentence_index: 3,
        });
        cp.quarantine.push(QuarantineEntry {
            doc_id: "doc9".into(),
            stage: "validate".into(),
            kind: ErrorKind::Validation,
            byte_offset: Some(12),
            error: "invalid UTF-8 \\ with backslash".into(),
        });
        cp.metrics_json = Some("{\"docs\":1}".into());
        cp
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("thor-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn text_round_trip_is_exact() {
        let cp = sample();
        let back = Checkpoint::from_state_text(&cp.to_state_text()).unwrap();
        // metrics_json travels in a separate file.
        let mut expected = cp.clone();
        expected.metrics_json = None;
        assert_eq!(back, expected);
        assert_eq!(f64::from_bits(back.entities[0].score_bits), 0.53);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = temp_dir("rt");
        let cp = sample();
        cp.save(&dir).unwrap();
        let back = Checkpoint::load(&dir).unwrap().expect("saved state");
        assert_eq!(back, cp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_fresh_run() {
        assert_eq!(
            Checkpoint::load(Path::new("/nonexistent/thor/ckpt")).unwrap(),
            None
        );
    }

    #[test]
    fn corrupt_state_is_an_error_not_a_panic() {
        for bad in [
            "wrong header\n",
            "thor-checkpoint v1\nent\tonly\ttwo\n",
            "thor-checkpoint v1\nmystery\tx\n",
            "thor-checkpoint v1\nent\ta\tb\tc\td\tnothex\te\t1\n",
            "thor-checkpoint v1\nquar\ta\tstage\tnotakind\t-\tmsg\n",
            "thor-checkpoint v1\nfingerprint\tbad\\qescape\n",
        ] {
            let err = Checkpoint::from_state_text(bad).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Checkpoint, "{bad:?}");
        }
    }

    #[test]
    fn escaping_round_trips_hostile_strings() {
        for s in ["plain", "tab\there", "nl\nthere", "back\\slash", "\r\n\t\\"] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        assert_eq!(fingerprint(["a", "b"]), fingerprint(["a", "b"]));
        assert_ne!(fingerprint(["a", "b"]), fingerprint(["b", "a"]));
        assert_ne!(fingerprint(["ab", "c"]), fingerprint(["a", "bc"]));
        assert_eq!(fingerprint(["a"]).len(), 16);
    }

    #[test]
    fn injected_save_fault_leaves_previous_checkpoint() {
        let dir = temp_dir("fp");
        let mut cp = sample();
        cp.save(&dir).unwrap();
        {
            let _guard = crate::failpoint::scoped_failpoints("checkpoint_save:err");
            cp.processed.insert("doc2".into());
            assert!(cp.save(&dir).is_err());
        }
        let back = Checkpoint::load(&dir).unwrap().unwrap();
        assert!(!back.processed.contains("doc2"), "old state preserved");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
