//! Cooperative cancellation: a cheap, cloneable token checked between
//! pipeline stages.
//!
//! A [`CancelToken`] carries an optional wall-clock deadline and a
//! manual cancel flag. The run layer threads one through enrichment and
//! calls [`CancelToken::check`] at every stage seam (before validate,
//! segment, extract, slot-fill), so an expired per-request budget stops
//! the run at the next seam instead of hanging a connection — no thread
//! is ever killed, workers observe the flag and wind down.
//!
//! Cancellation is a *run-level* outcome, not a per-document one: an
//! expired token aborts the run with [`ErrorKind::Deadline`] even in
//! lenient mode (the request is dead either way; quarantining the
//! remaining documents would misreport them as malformed).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{ThorError, ThorResult};

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation token; see the module docs. The default
/// token ([`CancelToken::none`]) never fires and its checks are a
/// single relaxed atomic load.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::none()
    }
}

impl CancelToken {
    /// A token that never fires unless [`cancel`](Self::cancel)ed.
    pub fn none() -> Self {
        Self {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that fires once `budget` has elapsed from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Fire the token manually (drain, client gone, test).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has the token fired (manually or by deadline)? Latches: once
    /// true it stays true, so every stage after the first refusal
    /// refuses too.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The stage seam: `Ok(())` to proceed, or an
    /// [`ErrorKind::Deadline`](crate::ErrorKind::Deadline) error naming
    /// the stage the budget expired before.
    pub fn check(&self, stage: &str) -> ThorResult<()> {
        if self.is_cancelled() {
            Err(ThorError::deadline(stage))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    #[test]
    fn none_never_fires() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        assert!(t.check("extract").is_ok());
    }

    #[test]
    fn manual_cancel_latches_and_names_the_stage() {
        let t = CancelToken::none();
        t.cancel();
        assert!(t.is_cancelled());
        let e = t.check("segment").unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Deadline);
        assert!(e.to_string().contains("segment"), "{e}");
    }

    #[test]
    fn deadline_fires_after_budget() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.check("validate").unwrap_err().kind(), ErrorKind::Deadline);

        let roomy = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!roomy.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        let u = t.clone();
        t.cancel();
        assert!(u.is_cancelled());
    }
}
