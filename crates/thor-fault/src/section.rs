//! The v2 sectioned artifact container: mmap-native, alignment-padded,
//! checksummed.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [ 0.. 8]  magic            b"THORENG\0"
//! [ 8..12]  container version u32   (= 2)
//! [12..16]  section count     u32
//! [16..24]  directory offset  u64
//! [24..32]  directory length  u64
//! [32..40]  directory FNV-1a  u64
//! [40..48]  total file length u64
//! [48..56]  header FNV-1a     u64   (over bytes 0..48)
//! [56.. ]   sections, each zero-padded to a 64-byte boundary
//! [dir.. ]  section directory (written last, ends the file)
//! ```
//!
//! Each directory entry records `(name, offset, length, alignment,
//! section version, FNV-1a checksum)`. Section payloads are the *exact
//! in-memory layout* of the hot arrays (raw `f32`/`f64`/`u64` little-
//! endian scalars), so a reader can hand out typed views straight into
//! the mapped file.
//!
//! Verification is layered deliberately:
//!
//! * [`SectionFile::open`] always performs **structural** validation —
//!   header magic/version/checksum, exact file length, directory
//!   checksum, and per-entry bounds/alignment/ordering/uniqueness.
//!   Corruption anywhere in the header or directory is a named
//!   [`ThorError`], never a panic and never a silent fallback.
//! * [`SectionFile::verify_except`] additionally checksums every
//!   section *except* a caller-supplied lazy set — the mapped load
//!   policy: O(vocabulary) payloads stay untouched so startup cost
//!   stays flat, while every small section is still verified.
//! * [`SectionFile::verify_all`] checksums everything plus the
//!   inter-section zero padding — the owned load policy and what
//!   `thor inspect --engine` runs.

// `u64::is_multiple_of` would read better but lands in 1.87; the
// workspace MSRV is 1.82.
#![allow(clippy::manual_is_multiple_of)]

use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

use crate::artifact::{fnv1a, ByteReader, ByteWriter};
use crate::error::{ResultExt, ThorError, ThorResult};
use crate::mmap::MappedBuf;
use crate::view::{FrozenPool, FrozenSlice, Pod};

/// Shared magic with the v1 artifact header, so either reader can
/// name-check the other's files.
pub const SECTION_MAGIC: &[u8; 8] = b"THORENG\0";

/// The sectioned container version this module reads and writes.
pub const CONTAINER_VERSION: u32 = 2;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 56;

/// Every section payload starts on a multiple of this (zero-padded),
/// matching [`crate::mmap::BUF_ALIGN`] so mapped sections are aligned
/// for any stored scalar type.
pub const SECTION_ALIGN: usize = 64;

/// How to back a [`SectionFile`]'s bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapMode {
    /// Read the whole file into an owned (64-byte-aligned) heap buffer.
    Owned,
    /// `mmap(2)` the file read-only (zero-copy; heap fallback only on
    /// non-unix targets).
    Mapped,
}

/// One row of the section directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section name (unique within the artifact).
    pub name: String,
    /// Byte offset of the payload from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Alignment the payload was written at.
    pub align: u32,
    /// Section format version (bumped independently of the container).
    pub version: u32,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

/// Serializer for the v2 container: append sections, then
/// [`finish`](Self::finish) writes the directory and header.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
    entries: Vec<SectionEntry>,
}

impl SectionWriter {
    /// Start an empty artifact.
    pub fn new() -> Self {
        Self {
            buf: vec![0u8; HEADER_LEN],
            entries: Vec::new(),
        }
    }

    /// Append one section. Names must be non-empty and unique; this is
    /// a writer-side programming contract, so violations panic.
    pub fn add(&mut self, name: &str, version: u32, payload: &[u8]) {
        assert!(!name.is_empty(), "section name must be non-empty");
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "duplicate section name `{name}`"
        );
        while self.buf.len() % SECTION_ALIGN != 0 {
            self.buf.push(0);
        }
        self.entries.push(SectionEntry {
            name: name.to_string(),
            offset: self.buf.len() as u64,
            len: payload.len() as u64,
            align: SECTION_ALIGN as u32,
            version,
            checksum: fnv1a(payload),
        });
        self.buf.extend_from_slice(payload);
    }

    /// Write the directory and header; returns the finished artifact
    /// bytes.
    pub fn finish(mut self) -> Vec<u8> {
        while self.buf.len() % SECTION_ALIGN != 0 {
            self.buf.push(0);
        }
        let dir_offset = self.buf.len() as u64;
        let mut dir = ByteWriter::new();
        for e in &self.entries {
            dir.put_str(&e.name);
            dir.put_u64(e.offset);
            dir.put_u64(e.len);
            dir.put_u32(e.align);
            dir.put_u32(e.version);
            dir.put_u64(e.checksum);
        }
        let dir = dir.into_bytes();
        let dir_checksum = fnv1a(&dir);
        self.buf.extend_from_slice(&dir);
        let total_len = self.buf.len() as u64;

        let h = &mut self.buf[..HEADER_LEN];
        h[0..8].copy_from_slice(SECTION_MAGIC);
        h[8..12].copy_from_slice(&CONTAINER_VERSION.to_le_bytes());
        h[12..16].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        h[16..24].copy_from_slice(&dir_offset.to_le_bytes());
        h[24..32].copy_from_slice(&(dir.len() as u64).to_le_bytes());
        h[32..40].copy_from_slice(&dir_checksum.to_le_bytes());
        h[40..48].copy_from_slice(&total_len.to_le_bytes());
        let header_checksum = fnv1a(&self.buf[..48]);
        self.buf[48..56].copy_from_slice(&header_checksum.to_le_bytes());
        self.buf
    }
}

/// A structurally-validated v2 artifact, ready to hand out raw bytes
/// or typed [`FrozenSlice`] views. See the module docs for the
/// verification policy split.
#[derive(Debug)]
pub struct SectionFile {
    buf: Arc<MappedBuf>,
    entries: Vec<SectionEntry>,
}

impl SectionFile {
    /// Open `path` with the requested backing and run structural
    /// validation. Checksum policy is the caller's next move:
    /// [`verify_all`](Self::verify_all) (owned loads, `thor inspect`)
    /// or [`verify_except`](Self::verify_except) (mapped loads).
    pub fn open(path: &Path, mode: MapMode) -> ThorResult<Self> {
        let buf = match mode {
            MapMode::Owned => MappedBuf::read_file(path)?,
            MapMode::Mapped => MappedBuf::map_file(path)?,
        };
        Self::parse(Arc::new(buf)).ctx(|| format!("engine artifact {}", path.display()))
    }

    /// Validate and index an in-memory artifact (tests, proptests).
    /// The bytes are copied into a 64-byte-aligned buffer so alignment
    /// behavior matches file loads exactly.
    pub fn from_bytes(bytes: Vec<u8>) -> ThorResult<Self> {
        let mut buf = MappedBuf::alloc_heap(bytes.len());
        // SAFETY: freshly allocated, not yet shared.
        unsafe { buf.as_mut_slice() }.copy_from_slice(&bytes);
        Self::parse(Arc::new(buf))
    }

    fn parse(buf: Arc<MappedBuf>) -> ThorResult<Self> {
        if cfg!(target_endian = "big") {
            return Err(ThorError::validation(
                "sectioned engine artifacts are little-endian; this host is big-endian",
            ));
        }
        let d = buf.as_slice();
        if d.len() < HEADER_LEN {
            return Err(ThorError::validation(format!(
                "truncated: {} bytes, need at least the {HEADER_LEN}-byte header",
                d.len()
            )));
        }
        if &d[0..8] != SECTION_MAGIC {
            return Err(ThorError::validation("bad magic (not a THORENG artifact)"));
        }
        let version = read_u32(d, 8);
        if version == 1 {
            return Err(ThorError::parse(
                "format version 1 (pre-sectioned THORENG) is not readable by the v2 loader; \
                 rebuild the artifact with `thor build --engine`",
            ));
        }
        if version != CONTAINER_VERSION {
            return Err(ThorError::parse(format!(
                "unsupported container version {version} (supported: {CONTAINER_VERSION})"
            )));
        }
        let stored_header = read_u64(d, 48);
        let computed_header = fnv1a(&d[..48]);
        if stored_header != computed_header {
            return Err(ThorError::validation(format!(
                "header checksum mismatch (stored {stored_header:#018x}, computed {computed_header:#018x})"
            )));
        }
        let section_count = read_u32(d, 12) as usize;
        let dir_offset = read_u64(d, 16);
        let dir_len = read_u64(d, 24);
        let dir_checksum = read_u64(d, 32);
        let total_len = read_u64(d, 40);
        if total_len != d.len() as u64 {
            return Err(ThorError::validation(format!(
                "truncated or length mismatch: header records {total_len} bytes, file has {}",
                d.len()
            )));
        }
        let dir_end = dir_offset
            .checked_add(dir_len)
            .filter(|&e| e == total_len && dir_offset >= HEADER_LEN as u64);
        let Some(_) = dir_end else {
            return Err(ThorError::validation(format!(
                "section directory out of bounds (offset {dir_offset}, length {dir_len}, file {total_len})"
            )));
        };
        let dir_bytes = &d[dir_offset as usize..(dir_offset + dir_len) as usize];
        let computed_dir = fnv1a(dir_bytes);
        if computed_dir != dir_checksum {
            return Err(ThorError::validation(format!(
                "section directory checksum mismatch (stored {dir_checksum:#018x}, computed {computed_dir:#018x})"
            )));
        }

        let mut r = ByteReader::new(dir_bytes);
        let mut entries = Vec::with_capacity(section_count.min(1024));
        let mut names: HashSet<String> = HashSet::new();
        let mut prev_end = HEADER_LEN as u64;
        for _ in 0..section_count {
            let name = r.get_str().ctx(|| "section directory".to_string())?;
            let offset = r.get_u64().ctx(|| "section directory".to_string())?;
            let len = r.get_u64().ctx(|| "section directory".to_string())?;
            let align = r.get_u32().ctx(|| "section directory".to_string())?;
            let sec_version = r.get_u32().ctx(|| "section directory".to_string())?;
            let checksum = r.get_u64().ctx(|| "section directory".to_string())?;
            if align == 0 || !align.is_power_of_two() {
                return Err(ThorError::validation(format!(
                    "section `{name}` has invalid alignment {align}"
                )));
            }
            if offset % SECTION_ALIGN as u64 != 0 || offset % align as u64 != 0 {
                return Err(ThorError::validation(format!(
                    "section `{name}` misaligned: offset {offset} is not {SECTION_ALIGN}-byte aligned"
                )));
            }
            let end = offset.checked_add(len);
            let Some(end) = end.filter(|&e| e <= dir_offset && offset >= HEADER_LEN as u64) else {
                return Err(ThorError::validation(format!(
                    "section `{name}` out of bounds (offset {offset}, length {len})"
                )));
            };
            if offset < prev_end {
                return Err(ThorError::validation(format!(
                    "sections overlap or are out of order at `{name}`"
                )));
            }
            if !names.insert(name.clone()) {
                return Err(ThorError::validation(format!("duplicate section `{name}`")));
            }
            prev_end = end;
            entries.push(SectionEntry {
                name,
                offset,
                len,
                align,
                version: sec_version,
                checksum,
            });
        }
        r.finish("section directory")?;
        Ok(Self { buf, entries })
    }

    /// The directory, in file order.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// Whether the backing bytes are a kernel memory map.
    pub fn is_mapped(&self) -> bool {
        self.buf.is_mapped()
    }

    /// Total artifact size in bytes.
    pub fn total_len(&self) -> usize {
        self.buf.len()
    }

    /// The directory FNV-1a checksum from the header — a cheap identity
    /// for the whole artifact (it covers every section's name, layout
    /// and payload checksum), used to link delta files to their parent.
    pub fn dir_checksum(&self) -> u64 {
        read_u64(self.buf.as_slice(), 32)
    }

    /// The directory entry for `name`, if present.
    pub fn entry(&self, name: &str) -> Option<&SectionEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    fn require(&self, name: &str) -> ThorResult<&SectionEntry> {
        self.entry(name)
            .ok_or_else(|| ThorError::validation(format!("missing section `{name}`")))
    }

    /// A section's raw payload bytes.
    pub fn bytes(&self, name: &str) -> ThorResult<&[u8]> {
        let e = self.require(name)?;
        Ok(&self.buf.as_slice()[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// A zero-copy typed view of a section. The payload length must
    /// divide evenly into `T`-sized elements (alignment is implied by
    /// the 64-byte section grid).
    pub fn frozen_slice<T: Pod>(&self, name: &str) -> ThorResult<FrozenSlice<T>> {
        let e = self.require(name)?;
        let size = std::mem::size_of::<T>();
        if e.len as usize % size != 0 {
            return Err(ThorError::validation(format!(
                "section `{name}` length {} is not a multiple of its {size}-byte element size",
                e.len
            )));
        }
        let base = self.buf.as_slice().as_ptr() as usize;
        if (base + e.offset as usize) % std::mem::align_of::<T>() != 0 {
            return Err(ThorError::validation(format!(
                "section `{name}` is misaligned for {size}-byte elements"
            )));
        }
        Ok(FrozenSlice::view(
            Arc::clone(&self.buf),
            e.offset as usize,
            e.len as usize / size,
        ))
    }

    /// A string/byte pool assembled from an offsets section and a
    /// bytes section.
    pub fn pool(&self, offsets: &str, bytes: &str) -> ThorResult<FrozenPool> {
        Ok(FrozenPool::new(
            self.frozen_slice::<u64>(offsets)?,
            self.frozen_slice::<u8>(bytes)?,
        ))
    }

    /// Recompute and compare one section's checksum.
    pub fn verify_section(&self, name: &str) -> ThorResult<()> {
        let computed = fnv1a(self.bytes(name)?);
        let e = self.require(name)?;
        if computed != e.checksum {
            return Err(ThorError::validation(format!(
                "section `{name}` checksum mismatch (stored {:#018x}, computed {computed:#018x})",
                e.checksum
            )));
        }
        Ok(())
    }

    /// Verify that every inter-section padding byte is zero (a flipped
    /// padding byte is corruption even though no section covers it).
    pub fn verify_padding(&self) -> ThorResult<()> {
        let d = self.buf.as_slice();
        let dir_offset = read_u64(d, 16);
        let mut prev_end = HEADER_LEN as u64;
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        for e in &self.entries {
            gaps.push((prev_end, e.offset));
            prev_end = e.offset + e.len;
        }
        gaps.push((prev_end, dir_offset));
        for (lo, hi) in gaps {
            if let Some(pos) = d[lo as usize..hi as usize].iter().position(|&b| b != 0) {
                return Err(ThorError::validation(format!(
                    "nonzero padding byte at offset {}",
                    lo + pos as u64
                )));
            }
        }
        Ok(())
    }

    /// Full verification: every section checksum plus zero padding.
    /// This is the owned-load and `thor inspect` policy.
    pub fn verify_all(&self) -> ThorResult<()> {
        self.verify_except(&[])
    }

    /// Verify padding and every section *not* named in `lazy`. Mapped
    /// loads pass their O(vocabulary) section names here so cold-start
    /// cost stays independent of artifact size.
    pub fn verify_except(&self, lazy: &[&str]) -> ThorResult<()> {
        self.verify_padding()?;
        for e in &self.entries {
            if lazy.contains(&e.name.as_str()) {
                continue;
            }
            self.verify_section(&e.name)?;
        }
        Ok(())
    }
}

fn read_u32(d: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(d[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(d: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(d[at..at + 8].try_into().expect("bounds checked"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SectionWriter::new();
        w.add("meta", 1, b"hello meta");
        w.add(
            "rows",
            1,
            &[1.0f32, -2.5, 3.25]
                .iter()
                .flat_map(|x| x.to_le_bytes())
                .collect::<Vec<u8>>(),
        );
        w.add("empty", 3, b"");
        w.finish()
    }

    #[test]
    fn round_trip_entries_and_views() {
        let bytes = sample();
        let f = SectionFile::from_bytes(bytes).unwrap();
        f.verify_all().unwrap();
        assert_eq!(f.entries().len(), 3);
        assert_eq!(f.bytes("meta").unwrap(), b"hello meta");
        let rows: FrozenSlice<f32> = f.frozen_slice("rows").unwrap();
        assert_eq!(&*rows, &[1.0, -2.5, 3.25]);
        assert!(rows.is_view() || !f.is_mapped());
        assert_eq!(f.entry("empty").unwrap().version, 3);
        assert!(f
            .bytes("nope")
            .unwrap_err()
            .to_string()
            .contains("missing section"));
    }

    #[test]
    fn every_single_byte_flip_is_detected_by_full_verification() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let outcome = SectionFile::from_bytes(corrupt).and_then(|f| f.verify_all());
            assert!(outcome.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected_at_any_length() {
        let bytes = sample();
        for keep in [
            0,
            1,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            let outcome = SectionFile::from_bytes(bytes[..keep].to_vec());
            assert!(outcome.is_err(), "truncation to {keep} bytes accepted");
        }
    }

    #[test]
    fn stale_and_future_versions_are_named_rejections() {
        let mut v1 = sample();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let fixed = fnv1a(&v1[..48]);
        v1[48..56].copy_from_slice(&fixed.to_le_bytes());
        let err = SectionFile::from_bytes(v1).unwrap_err();
        assert!(err.to_string().contains("rebuild"), "{err}");

        let mut v9 = sample();
        v9[8..12].copy_from_slice(&9u32.to_le_bytes());
        let fixed = fnv1a(&v9[..48]);
        v9[48..56].copy_from_slice(&fixed.to_le_bytes());
        let err = SectionFile::from_bytes(v9).unwrap_err();
        assert!(
            err.to_string().contains("unsupported container version 9"),
            "{err}"
        );
    }

    #[test]
    fn misaligned_section_is_a_named_rejection() {
        // Hand-corrupt the first entry's offset to 57 (not 64-aligned)
        // and re-seal the directory + header checksums, so the *only*
        // defect left is the misalignment itself.
        let bytes = sample();
        let f = SectionFile::from_bytes(bytes.clone()).unwrap();
        let dir_offset = f.entries()[0].offset; // first section at 64
        assert_eq!(dir_offset, 64);
        drop(f);

        let mut w = SectionWriter::new();
        w.add("meta", 1, b"hello meta");
        let mut evil = w.finish();
        let dir_off = u64::from_le_bytes(evil[16..24].try_into().unwrap()) as usize;
        let dir_len = u64::from_le_bytes(evil[24..32].try_into().unwrap()) as usize;
        // Directory entry layout: str(len u64 + "meta") then offset u64.
        let entry_offset_pos = dir_off + 8 + 4;
        evil[entry_offset_pos..entry_offset_pos + 8].copy_from_slice(&57u64.to_le_bytes());
        let dir_sum = fnv1a(&evil[dir_off..dir_off + dir_len]);
        evil[32..40].copy_from_slice(&dir_sum.to_le_bytes());
        let head_sum = fnv1a(&evil[..48]);
        evil[48..56].copy_from_slice(&head_sum.to_le_bytes());
        let err = SectionFile::from_bytes(evil).unwrap_err();
        assert!(err.to_string().contains("misaligned"), "{err}");
    }

    #[test]
    fn lazy_verification_skips_named_sections_only() {
        let bytes = sample();
        let rows_entry_offset;
        {
            let f = SectionFile::from_bytes(bytes.clone()).unwrap();
            rows_entry_offset = f.entry("rows").unwrap().offset as usize;
        }
        let mut corrupt = bytes;
        corrupt[rows_entry_offset] ^= 0xff; // inside the rows payload
        let f = SectionFile::from_bytes(corrupt).unwrap();
        f.verify_except(&["rows"]).unwrap();
        assert!(f.verify_all().is_err());
        assert!(f
            .verify_section("rows")
            .unwrap_err()
            .to_string()
            .contains("checksum mismatch"));
    }

    #[test]
    fn file_round_trip_owned_and_mapped() {
        let dir = std::env::temp_dir().join(format!("thor-section-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.thoreng");
        std::fs::write(&path, sample()).unwrap();
        for mode in [MapMode::Owned, MapMode::Mapped] {
            let f = SectionFile::open(&path, mode).unwrap();
            f.verify_all().unwrap();
            assert_eq!(f.bytes("meta").unwrap(), b"hello meta");
        }
        #[cfg(unix)]
        assert!(SectionFile::open(&path, MapMode::Mapped)
            .unwrap()
            .is_mapped());
        assert!(!SectionFile::open(&path, MapMode::Owned)
            .unwrap()
            .is_mapped());
    }
}
