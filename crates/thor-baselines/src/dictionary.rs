//! The **Baseline**: Aho–Corasick dictionary matching.
//!
//! "A traditional ER method that uses substring-search for exact
//! syntactic matching … It uses structured data as patterns to build a
//! dictionary or lexicon, which is then further used to match all
//! sub-strings from the text." Exact matching cannot find
//! out-of-vocabulary entities, which is why the paper's Baseline shows
//! high precision and very low recall.

use std::sync::Arc;

use thor_core::{Document, ExtractedEntity};
use thor_data::Table;
use thor_index::{CandidateEntity, CandidateSource, DictionaryIndex};

use crate::subject::attribute_sentences;
use crate::Extractor;

/// Dictionary-based exact matcher over the table's instances.
///
/// A thin extraction protocol over [`DictionaryIndex`] — the automaton
/// itself lives in `thor-index` so a prepared engine can freeze and
/// share it across serve calls.
#[derive(Debug)]
pub struct DictionaryBaseline {
    index: Arc<DictionaryIndex>,
}

impl DictionaryBaseline {
    /// Build the dictionary from every (concept, instance) of `table`,
    /// including the subject concept (other subjects mentioned in a
    /// document are legitimate subject-concept entities).
    pub fn from_table(table: &Table) -> Self {
        Self::from_index(Arc::new(dictionary_index(table)))
    }

    /// Wrap an already-built (possibly shared) dictionary index.
    pub fn from_index(index: Arc<DictionaryIndex>) -> Self {
        Self { index }
    }

    /// Number of dictionary patterns.
    pub fn pattern_count(&self) -> usize {
        self.index.pattern_count()
    }
}

/// Build the Aho–Corasick [`DictionaryIndex`] for `table`: every
/// (concept, instance) pair of the schema, in schema order.
pub fn dictionary_index(table: &Table) -> DictionaryIndex {
    DictionaryIndex::from_concepts(
        table
            .schema()
            .concepts()
            .iter()
            .map(|c| (c.name().to_string(), table.column_values(c.name()))),
    )
}

impl CandidateSource for DictionaryBaseline {
    fn source_name(&self) -> &str {
        self.index.source_name()
    }

    fn candidates_anchored(
        &self,
        phrase: &str,
        anchor: &dyn Fn(&str) -> bool,
    ) -> Vec<CandidateEntity> {
        self.index.candidates_anchored(phrase, anchor)
    }
}

impl Extractor for DictionaryBaseline {
    fn name(&self) -> &str {
        "Baseline"
    }

    fn extract(&self, table: &Table, docs: &[Document]) -> Vec<ExtractedEntity> {
        let subjects: Vec<String> = table.subjects().map(str::to_string).collect();
        let mut out = Vec::new();
        for doc in docs {
            for (subject, sentence) in attribute_sentences(&doc.text, &subjects) {
                for c in self.candidates(&sentence.text) {
                    out.push(ExtractedEntity {
                        subject: subject.clone(),
                        concept: c.concept,
                        phrase: c.phrase,
                        score: 1.0,
                        matched_instance: c.matched_instance,
                        doc_id: doc.id.clone(),
                        sentence_index: 0,
                    });
                }
            }
        }
        // Deduplicate per (doc, concept, phrase) — evaluation granularity.
        out.sort_by_key(|a| a.key());
        out.dedup_by(|a, b| a.key() == b.key());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_data::Schema;

    fn table() -> Table {
        let mut t = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        t.fill_slot("Tuberculosis", "Anatomy", "lungs");
        t.fill_slot("Tuberculosis", "Complication", "empyema");
        t.fill_slot("Acne", "Anatomy", "skin");
        t
    }

    #[test]
    fn finds_exact_instances() {
        let b = DictionaryBaseline::from_table(&table());
        let docs = vec![Document::new(
            "d",
            "Tuberculosis damages the lungs and causes empyema.",
        )];
        let found = b.extract(&table(), &docs);
        let phrases: Vec<&str> = found.iter().map(|e| e.phrase.as_str()).collect();
        assert!(phrases.contains(&"lungs"));
        assert!(phrases.contains(&"empyema"));
        assert!(
            phrases.contains(&"tuberculosis"),
            "subject instances matched too"
        );
    }

    #[test]
    fn misses_oov_instances() {
        let b = DictionaryBaseline::from_table(&table());
        let docs = vec![Document::new("d", "Tuberculosis may cause meningitis.")];
        let found = b.extract(&table(), &docs);
        assert!(!found.iter().any(|e| e.phrase.contains("meningitis")));
    }

    #[test]
    fn case_insensitive_matching() {
        let b = DictionaryBaseline::from_table(&table());
        let docs = vec![Document::new("d", "TUBERCULOSIS affects the LUNGS.")];
        let found = b.extract(&table(), &docs);
        assert!(found.iter().any(|e| e.phrase == "lungs"));
    }

    #[test]
    fn no_partial_word_matches() {
        let mut t = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
        t.fill_slot("X", "Anatomy", "ear");
        let b = DictionaryBaseline::from_table(&t);
        let docs = vec![Document::new("d", "X is about hearing problems.")];
        let found = b.extract(&t, &docs);
        assert!(!found.iter().any(|e| e.phrase == "ear"), "{found:?}");
    }

    #[test]
    fn deduplicates_per_doc() {
        let b = DictionaryBaseline::from_table(&table());
        let docs = vec![Document::new("d", "Acne affects the skin. The skin heals.")];
        let found = b.extract(&table(), &docs);
        let skins = found.iter().filter(|e| e.phrase == "skin").count();
        assert_eq!(skins, 1);
    }

    #[test]
    fn candidate_source_respects_anchor() {
        let b = DictionaryBaseline::from_table(&table());
        let all = b.candidates("tuberculosis damages the lungs");
        assert!(all.iter().any(|c| c.phrase == "lungs"));
        assert!(all.iter().all(|c| c.semantic_score == 1.0));
        let anchored = b.candidates_anchored("tuberculosis damages the lungs", &|w| w != "lungs");
        assert!(!anchored.iter().any(|c| c.phrase == "lungs"));
        assert!(anchored.iter().any(|c| c.phrase == "tuberculosis"));
        assert_eq!(CandidateSource::source_name(&b), "dictionary");
    }

    #[test]
    fn empty_table_extracts_nothing() {
        let t = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
        let b = DictionaryBaseline::from_table(&t);
        assert_eq!(b.pattern_count(), 0);
        let docs = vec![Document::new("d", "Anything here.")];
        assert!(b.extract(&t, &docs).is_empty());
    }
}
