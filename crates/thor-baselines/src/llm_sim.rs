//! Simulated zero-shot LLM extractors (GPT-4, UniversalNER).
//!
//! We cannot run the paper's LLM rows (GPT-4 behind an API, UniNER on an
//! A100). What the paper *measures* about them is a set of behaviours:
//! per-concept recall profiles, span-boundary sloppiness, label
//! confusion, hallucination, run-to-run nondeterminism, and a hard
//! context window (UniNER: 2,048 tokens — anything beyond is unread).
//! [`SimulatedLlm`] reproduces those behaviours mechanically from the
//! gold annotations so the comparison harness exercises the same
//! evaluation path.
//!
//! ⚠️ The simulator is an *oracle with noise*: its output quality is a
//! calibration to the paper's Table VII, not a measurement of any model.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use thor_core::{Document, ExtractedEntity};
use thor_data::Table;
use thor_datagen::AnnotatedDoc;

use crate::Extractor;

/// Behaviour profile of a simulated LLM.
#[derive(Debug, Clone)]
pub struct LlmProfile {
    /// Display name.
    pub name: String,
    /// Per-concept recall (lowercased concept → probability of emitting
    /// a visible gold entity).
    pub recall: HashMap<String, f64>,
    /// Fallback recall for unlisted concepts.
    pub default_recall: f64,
    /// Probability of truncating an emitted multi-word phrase to its
    /// head word (produces SemEval *partial* matches).
    pub boundary_noise: f64,
    /// Probability of emitting with a wrong (random other) concept
    /// label (produces *incorrect* matches).
    pub confusion: f64,
    /// Expected hallucinated (fabricated) entities per emitted entity
    /// (produces *spurious* predictions).
    pub hallucination: f64,
    /// Context window in whitespace tokens; entities mentioned past the
    /// window are invisible. `usize::MAX` = unlimited.
    pub context_window: usize,
    /// Sampling seed — two different seeds give different outputs (the
    /// paper's "commonly produces different results for the same
    /// input").
    pub seed: u64,
}

impl LlmProfile {
    /// GPT-4 profile calibrated to Table VII (Disease A–Z): strong on
    /// frequent generic classes, weak on domain-specific rare ones, with
    /// noticeable hallucination.
    pub fn gpt4(seed: u64) -> Self {
        let recall = [
            ("anatomy", 0.48),
            ("cause", 0.83),
            ("complication", 0.54),
            ("composition", 0.26),
            ("diagnosis", 0.48),
            ("disease", 0.37),
            ("medicine", 0.38),
            ("precaution", 0.72),
            ("riskfactor", 0.63),
            ("surgery", 0.36),
            ("symptom", 0.88),
            // Résumé: good at names/orgs, terrible at role/duration.
            ("name", 0.85),
            ("university", 0.80),
            ("companies worked at", 0.75),
            ("worked as", 0.08),
            ("years of experience", 0.05),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        Self {
            name: "GPT-4".to_string(),
            recall,
            default_recall: 0.40,
            boundary_noise: 0.22,
            confusion: 0.15,
            hallucination: 0.25,
            context_window: 16_000,
            seed,
        }
    }

    /// UniversalNER profile: 2,048-token context window, zero recall on
    /// the under-represented `Composition` class, near-collapse on the
    /// unseen Résumé domain.
    pub fn uniner(seed: u64) -> Self {
        let recall = [
            ("anatomy", 0.53),
            ("cause", 0.66),
            ("complication", 0.51),
            ("composition", 0.0),
            ("diagnosis", 0.08),
            ("disease", 0.55),
            ("medicine", 0.16),
            ("precaution", 0.35),
            ("riskfactor", 0.54),
            ("surgery", 0.31),
            ("symptom", 0.79),
            // Résumé collapse (185 TP / 2,140 gold in Table XI).
            ("name", 0.25),
            ("awards", 0.02),
            ("certification", 0.03),
            ("degree", 0.05),
            ("university", 0.12),
            ("college name", 0.03),
            ("language", 0.10),
            ("location", 0.12),
            ("worked as", 0.04),
            ("skills", 0.05),
            ("companies worked at", 0.08),
            ("years of experience", 0.02),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        Self {
            name: "UniNER".to_string(),
            recall,
            default_recall: 0.28,
            boundary_noise: 0.20,
            confusion: 0.12,
            hallucination: 0.15,
            context_window: 2_048,
            seed,
        }
    }
}

/// The simulated extractor. Holds the gold annotations of the documents
/// it will be asked about (it "reads" the text; we emulate its output
/// distribution).
#[derive(Debug)]
pub struct SimulatedLlm {
    profile: LlmProfile,
    gold: HashMap<String, AnnotatedDoc>,
}

impl SimulatedLlm {
    /// Create a simulator over the annotated corpus.
    pub fn new(profile: LlmProfile, corpus: &[AnnotatedDoc]) -> Self {
        let gold = corpus
            .iter()
            .map(|d| (d.doc.id.clone(), d.clone()))
            .collect();
        Self { profile, gold }
    }

    /// The profile in use.
    pub fn profile(&self) -> &LlmProfile {
        &self.profile
    }
}

impl Extractor for SimulatedLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn extract(&self, table: &Table, docs: &[Document]) -> Vec<ExtractedEntity> {
        let p = &self.profile;
        let mut rng = StdRng::seed_from_u64(p.seed);
        let concepts: Vec<String> = table
            .schema()
            .concepts()
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        let mut out = Vec::new();

        for doc in docs {
            let Some(annotated) = self.gold.get(&doc.id) else {
                continue; // a document the model never saw
            };
            // Context-window truncation: entities whose phrase first
            // occurs past the window are invisible.
            let visible_text: String = doc
                .text
                .split_whitespace()
                .take(p.context_window)
                .collect::<Vec<_>>()
                .join(" ")
                .to_lowercase();

            for g in &annotated.gold {
                let needle = g.phrase.to_lowercase();
                if !visible_text.contains(&needle) {
                    continue;
                }
                let recall = p
                    .recall
                    .get(&g.concept.to_lowercase())
                    .copied()
                    .unwrap_or(p.default_recall);
                if rng.random::<f64>() >= recall {
                    continue;
                }
                // Boundary noise: keep only the head (last) word.
                let phrase = if rng.random::<f64>() < p.boundary_noise {
                    g.phrase
                        .split_whitespace()
                        .last()
                        .unwrap_or(&g.phrase)
                        .to_string()
                } else {
                    g.phrase.clone()
                };
                // Label confusion.
                let concept = if rng.random::<f64>() < p.confusion && concepts.len() > 1 {
                    loop {
                        let c = &concepts[rng.random_range(0..concepts.len())];
                        if !c.eq_ignore_ascii_case(&g.concept) {
                            break c.clone();
                        }
                    }
                } else {
                    g.concept.clone()
                };
                out.push(ExtractedEntity {
                    subject: g.subject.clone(),
                    concept,
                    phrase,
                    score: 1.0,
                    matched_instance: String::new(),
                    doc_id: doc.id.clone(),
                    sentence_index: 0,
                });
                // Hallucination: fabricate an entity that is not in the
                // text at all ("generated outputs that were not part of
                // the input text").
                if rng.random::<f64>() < p.hallucination {
                    let concept = concepts[rng.random_range(0..concepts.len())].clone();
                    let phrase = format!(
                        "halluc {}{}",
                        concept.to_lowercase().chars().take(4).collect::<String>(),
                        rng.random_range(0..10_000)
                    );
                    out.push(ExtractedEntity {
                        subject: g.subject.clone(),
                        concept,
                        phrase,
                        score: 1.0,
                        matched_instance: String::new(),
                        doc_id: doc.id.clone(),
                        sentence_index: 0,
                    });
                }
            }
        }
        out.sort_by_key(|a| a.key());
        out.dedup_by(|a, b| a.key() == b.key());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_data::Schema;
    use thor_datagen::annotate::GoldEntity;

    fn corpus(words_before_entity: usize) -> Vec<AnnotatedDoc> {
        let filler = vec!["filler"; words_before_entity].join(" ");
        let text = format!("{filler} cortonosis appears here.");
        vec![AnnotatedDoc {
            doc: Document::new("d1", text),
            subjects: vec!["S".into()],
            gold: vec![GoldEntity {
                subject: "S".into(),
                concept: "Complication".into(),
                phrase: "cortonosis".into(),
            }],
        }]
    }

    fn table() -> Table {
        let mut t = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        t.row_for_subject("S");
        t
    }

    #[test]
    fn perfect_profile_reproduces_gold() {
        let profile = LlmProfile {
            name: "Oracle".into(),
            recall: HashMap::new(),
            default_recall: 1.0,
            boundary_noise: 0.0,
            confusion: 0.0,
            hallucination: 0.0,
            context_window: usize::MAX,
            seed: 1,
        };
        let corpus = corpus(5);
        let llm = SimulatedLlm::new(profile, &corpus);
        let docs: Vec<Document> = corpus.iter().map(|d| d.doc.clone()).collect();
        let found = llm.extract(&table(), &docs);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].phrase, "cortonosis");
    }

    #[test]
    fn context_window_hides_late_entities() {
        let profile = LlmProfile {
            name: "Tiny".into(),
            recall: HashMap::new(),
            default_recall: 1.0,
            boundary_noise: 0.0,
            confusion: 0.0,
            hallucination: 0.0,
            context_window: 10,
            seed: 1,
        };
        let corpus = corpus(50); // entity at word ~51 — past the window
        let llm = SimulatedLlm::new(profile, &corpus);
        let docs: Vec<Document> = corpus.iter().map(|d| d.doc.clone()).collect();
        assert!(llm.extract(&table(), &docs).is_empty());
    }

    #[test]
    fn zero_recall_class_never_emitted() {
        let mut recall = HashMap::new();
        recall.insert("complication".to_string(), 0.0);
        let profile = LlmProfile {
            name: "NoCompl".into(),
            recall,
            default_recall: 1.0,
            boundary_noise: 0.0,
            confusion: 0.0,
            hallucination: 0.0,
            context_window: usize::MAX,
            seed: 1,
        };
        let corpus = corpus(5);
        let llm = SimulatedLlm::new(profile, &corpus);
        let docs: Vec<Document> = corpus.iter().map(|d| d.doc.clone()).collect();
        assert!(llm.extract(&table(), &docs).is_empty());
    }

    #[test]
    fn nondeterministic_across_seeds() {
        let corpus: Vec<AnnotatedDoc> = (0..30)
            .map(|i| AnnotatedDoc {
                doc: Document::new(format!("d{i}"), format!("entity{i} appears here.")),
                subjects: vec!["S".into()],
                gold: vec![GoldEntity {
                    subject: "S".into(),
                    concept: "Anatomy".into(),
                    phrase: format!("entity{i}"),
                }],
            })
            .collect();
        let docs: Vec<Document> = corpus.iter().map(|d| d.doc.clone()).collect();
        let run = |seed: u64| {
            let llm = SimulatedLlm::new(
                LlmProfile {
                    seed,
                    ..LlmProfile::gpt4(seed)
                },
                &corpus,
            );
            llm.extract(&table(), &docs).len()
        };
        // Same seed ⇒ same output; different seeds ⇒ (almost surely)
        // different output sizes.
        assert_eq!(run(1), run(1));
        let outputs: Vec<usize> = (1..=5).map(run).collect();
        assert!(outputs.windows(2).any(|w| w[0] != w[1]), "{outputs:?}");
    }

    #[test]
    fn hallucinations_are_spurious_phrases() {
        let profile = LlmProfile {
            name: "Dreamer".into(),
            recall: HashMap::new(),
            default_recall: 1.0,
            boundary_noise: 0.0,
            confusion: 0.0,
            hallucination: 1.0,
            context_window: usize::MAX,
            seed: 3,
        };
        let corpus = corpus(5);
        let llm = SimulatedLlm::new(profile, &corpus);
        let docs: Vec<Document> = corpus.iter().map(|d| d.doc.clone()).collect();
        let found = llm.extract(&table(), &docs);
        assert_eq!(found.len(), 2);
        assert!(found.iter().any(|e| e.phrase.starts_with("halluc")));
        let fabricated = found
            .iter()
            .find(|e| e.phrase.starts_with("halluc"))
            .unwrap();
        assert!(!corpus[0].doc.text.contains(&fabricated.phrase));
    }

    #[test]
    fn unknown_documents_skipped() {
        let llm = SimulatedLlm::new(LlmProfile::gpt4(1), &corpus(5));
        let stranger = vec![Document::new("unknown", "cortonosis here too.")];
        assert!(llm.extract(&table(), &stranger).is_empty());
    }
}
