//! Averaged-perceptron BIO sequence tagger — the stand-in for the
//! paper's fine-tuned RoBERTa models.
//!
//! A structured averaged perceptron (Collins 2002) with the classic NER
//! feature templates: word identity, lowercase form, word shape,
//! prefixes/suffixes, a ±1 context window, and the previous predicted
//! label. Decoding is greedy left-to-right (the previous-label feature
//! carries the sequential signal, as in spaCy's original tagger).
//!
//! Two training regimes reproduce the paper's two systems:
//!
//! * **LM-Human** — [`PerceptronTagger::train_gold`] on the annotated
//!   corpus (`thor_datagen::bio_tags` of gold documents);
//! * **LM-SD** — [`PerceptronTagger::train_weak`]: annotations are
//!   *projected* from the structured table onto unannotated text by
//!   exact matching (distant supervision). Projection conflicts are
//!   resolved toward the most frequent concept, which is precisely the
//!   majority-class bias the paper observes in LM-SD.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use thor_automata::AhoCorasickBuilder;
use thor_core::{Document, ExtractedEntity};
use thor_data::Table;
use thor_datagen::annotate::GoldEntity;
use thor_datagen::{bio_tags, AnnotatedDoc, Bio};
use thor_index::{CandidateEntity, CandidateSource};
use thor_text::shape::{prefix, suffix, word_shape};
use thor_text::{normalize_phrase, tokenize};

use crate::subject::attribute_sentences;
use crate::Extractor;

/// Tagger hyper-parameters.
#[derive(Debug, Clone)]
pub struct TaggerConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TaggerConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            seed: 0xBADCAFE,
        }
    }
}

/// Label set: `O` plus `B-c`/`I-c` per concept, interned to indices.
#[derive(Debug, Clone, Default)]
struct LabelSet {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl LabelSet {
    fn intern(&mut self, label: &str) -> usize {
        if let Some(&i) = self.index.get(label) {
            return i;
        }
        self.names.push(label.to_string());
        self.index.insert(label.to_string(), self.names.len() - 1);
        self.names.len() - 1
    }
}

fn label_name(bio: &Bio) -> String {
    match bio {
        Bio::B(c) => format!("B-{}", c.to_lowercase()),
        Bio::I(c) => format!("I-{}", c.to_lowercase()),
        Bio::O => "O".to_string(),
    }
}

/// The trained tagger.
#[derive(Debug)]
pub struct PerceptronTagger {
    name: String,
    labels: LabelSet,
    /// feature → per-label weights (averaged).
    weights: HashMap<String, Vec<f64>>,
}

fn features(words: &[String], i: usize, prev_label: &str, out: &mut Vec<String>) {
    let w = &words[i];
    let lower = w.to_lowercase();
    out.clear();
    out.push("bias".to_string());
    out.push(format!("w={lower}"));
    out.push(format!("shape={}", word_shape(w)));
    out.push(format!("pre3={}", prefix(&lower, 3)));
    out.push(format!("suf3={}", suffix(&lower, 3)));
    out.push(format!("suf4={}", suffix(&lower, 4)));
    if i > 0 {
        out.push(format!("w-1={}", words[i - 1].to_lowercase()));
    } else {
        out.push("w-1=<s>".to_string());
    }
    if i + 1 < words.len() {
        out.push(format!("w+1={}", words[i + 1].to_lowercase()));
    } else {
        out.push("w+1=</s>".to_string());
    }
    out.push(format!("prev={prev_label}"));
    out.push(format!("prev+w={prev_label}|{lower}"));
}

impl PerceptronTagger {
    /// Train on gold BIO sentences (the LM-Human regime).
    pub fn train_gold(name: &str, docs: &[AnnotatedDoc], config: &TaggerConfig) -> Self {
        let sentences: Vec<Vec<(String, Bio)>> = docs.iter().flat_map(bio_tags).collect();
        Self::train_sentences(name, sentences, config)
    }

    /// Train on weak annotations projected from the table onto the same
    /// documents (the LM-SD regime). Instances of every concept are
    /// matched exactly (Aho–Corasick, word-aligned); a span matched by
    /// several concepts is labeled with the concept that has the most
    /// instances in the table — the majority-class bias.
    pub fn train_weak(
        name: &str,
        table: &Table,
        docs: &[AnnotatedDoc],
        config: &TaggerConfig,
    ) -> Self {
        let weak: Vec<AnnotatedDoc> = docs
            .iter()
            .map(|d| AnnotatedDoc {
                doc: d.doc.clone(),
                subjects: d.subjects.clone(),
                gold: project_weak_labels(table, &d.doc),
            })
            .collect();
        Self::train_gold(name, &weak, config)
    }

    #[allow(clippy::needless_range_loop)] // perceptron loop mirrors the reference algorithm
    fn train_sentences(
        name: &str,
        sentences: Vec<Vec<(String, Bio)>>,
        config: &TaggerConfig,
    ) -> Self {
        let mut labels = LabelSet::default();
        labels.intern("O");
        let encoded: Vec<(Vec<String>, Vec<usize>)> = sentences
            .iter()
            .map(|sent| {
                let words: Vec<String> = sent.iter().map(|(w, _)| w.clone()).collect();
                let tags: Vec<usize> = sent
                    .iter()
                    .map(|(_, b)| labels.intern(&label_name(b)))
                    .collect();
                (words, tags)
            })
            .collect();

        let n_labels = labels.names.len();
        let mut weights: HashMap<String, Vec<f64>> = HashMap::new();
        let mut totals: HashMap<String, Vec<f64>> = HashMap::new();
        let mut stamps: HashMap<String, Vec<usize>> = HashMap::new();
        let mut step = 0usize;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..encoded.len()).collect();
        let mut feats = Vec::new();

        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for &si in &order {
                let (words, gold) = &encoded[si];
                let mut prev = "O".to_string();
                for i in 0..words.len() {
                    step += 1;
                    features(words, i, &prev, &mut feats);
                    // Score labels.
                    let mut scores = vec![0.0f64; n_labels];
                    for f in &feats {
                        if let Some(ws) = weights.get(f) {
                            for (s, w) in scores.iter_mut().zip(ws) {
                                *s += w;
                            }
                        }
                    }
                    let pred = argmax(&scores);
                    let truth = gold[i];
                    if pred != truth {
                        for f in &feats {
                            let ws = weights
                                .entry(f.clone())
                                .or_insert_with(|| vec![0.0; n_labels]);
                            let ts = totals
                                .entry(f.clone())
                                .or_insert_with(|| vec![0.0; n_labels]);
                            let ss = stamps.entry(f.clone()).or_insert_with(|| vec![0; n_labels]);
                            for &(l, delta) in &[(truth, 1.0f64), (pred, -1.0)] {
                                ts[l] += (step - ss[l]) as f64 * ws[l];
                                ss[l] = step;
                                ws[l] += delta;
                            }
                        }
                    }
                    // Teacher forcing on the previous label keeps
                    // training stable on small corpora.
                    prev = labels.names[truth].clone();
                }
            }
        }

        // Average.
        for (f, ws) in &mut weights {
            let ts = totals
                .entry(f.clone())
                .or_insert_with(|| vec![0.0; n_labels]);
            let ss = stamps.entry(f.clone()).or_insert_with(|| vec![0; n_labels]);
            for l in 0..n_labels {
                ts[l] += (step - ss[l]) as f64 * ws[l];
                ws[l] = if step == 0 { 0.0 } else { ts[l] / step as f64 };
            }
        }

        Self {
            name: name.to_string(),
            labels,
            weights,
        }
    }

    /// Tag one tokenized sentence, returning label names.
    fn tag(&self, words: &[String]) -> Vec<String> {
        let n_labels = self.labels.names.len();
        let mut prev = "O".to_string();
        let mut out = Vec::with_capacity(words.len());
        let mut feats = Vec::new();
        for i in 0..words.len() {
            features(words, i, &prev, &mut feats);
            let mut scores = vec![0.0f64; n_labels];
            for f in &feats {
                if let Some(ws) = self.weights.get(f) {
                    for (s, w) in scores.iter_mut().zip(ws) {
                        *s += w;
                    }
                }
            }
            let pred = argmax(&scores);
            prev = self.labels.names[pred].clone();
            out.push(prev.clone());
        }
        out
    }

    /// Decode BIO label sequences into (concept, phrase) spans.
    fn decode_spans(words: &[String], labels: &[String]) -> Vec<(String, String)> {
        let mut spans = Vec::new();
        let mut current: Option<(String, Vec<String>)> = None;
        for (w, l) in words.iter().zip(labels) {
            if let Some(concept) = l.strip_prefix("B-") {
                if let Some((c, ws)) = current.take() {
                    spans.push((c, ws.join(" ")));
                }
                current = Some((concept.to_string(), vec![w.clone()]));
            } else if let Some(concept) = l.strip_prefix("I-") {
                match &mut current {
                    Some((c, ws)) if c == concept => ws.push(w.clone()),
                    // Malformed I without matching B: start a new span.
                    _ => {
                        if let Some((c, ws)) = current.take() {
                            spans.push((c, ws.join(" ")));
                        }
                        current = Some((concept.to_string(), vec![w.clone()]));
                    }
                }
            } else {
                if let Some((c, ws)) = current.take() {
                    spans.push((c, ws.join(" ")));
                }
            }
        }
        if let Some((c, ws)) = current {
            spans.push((c, ws.join(" ")));
        }
        spans
    }

    /// Number of learned features (model size diagnostics).
    pub fn feature_count(&self) -> usize {
        self.weights.len()
    }
}

fn argmax(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, s) in scores.iter().enumerate() {
        if *s > scores[best] {
            best = i;
        }
    }
    best
}

/// Project the table's instances onto a document by exact matching
/// (distant supervision). Conflicting concepts resolve to the one with
/// more table instances.
pub fn project_weak_labels(table: &Table, doc: &Document) -> Vec<GoldEntity> {
    let mut builder = AhoCorasickBuilder::new().ascii_case_insensitive(true);
    let mut patterns: Vec<(String, String)> = Vec::new();
    let mut concept_sizes: HashMap<String, usize> = HashMap::new();
    for concept in table.schema().concepts() {
        let values = table.column_values(concept.name());
        concept_sizes.insert(concept.name().to_string(), values.len());
        for v in values {
            let norm = normalize_phrase(&v);
            if norm.is_empty() {
                continue;
            }
            builder.add_pattern(norm.as_bytes());
            patterns.push((concept.name().to_string(), norm));
        }
    }
    let automaton = builder.build();
    let normalized = normalize_phrase(&doc.text);

    // Group matches by span; resolve concept conflicts to the largest
    // concept (majority bias).
    let mut by_span: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for m in automaton.find_words(&normalized) {
        by_span.entry((m.start, m.end)).or_default().push(m.pattern);
    }
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for ((_, _), pids) in by_span {
        let &pid = pids
            .iter()
            .max_by_key(|&&p| concept_sizes.get(&patterns[p].0).copied().unwrap_or(0))
            .expect("non-empty span group");
        let (concept, phrase) = &patterns[pid];
        if seen.insert((concept.clone(), phrase.clone())) {
            out.push(GoldEntity {
                subject: String::new(),
                concept: concept.clone(),
                phrase: phrase.clone(),
            });
        }
    }
    out
}

impl CandidateSource for PerceptronTagger {
    fn source_name(&self) -> &str {
        "tagger"
    }

    /// Tag `phrase` and decode the BIO spans into candidates. Spans
    /// whose words all fail `anchor` are dropped. The tagger has no
    /// seed instance to report (`matched_instance` stays empty) and no
    /// graded score — every decoded span counts 1.0.
    fn candidates_anchored(
        &self,
        phrase: &str,
        anchor: &dyn Fn(&str) -> bool,
    ) -> Vec<CandidateEntity> {
        let words: Vec<String> = tokenize(phrase).into_iter().map(|t| t.text).collect();
        if words.is_empty() {
            return Vec::new();
        }
        let labels = self.tag(&words);
        let mut out = Vec::new();
        for (concept, span) in Self::decode_spans(&words, &labels) {
            let span = normalize_phrase(&span);
            if span.is_empty() || !span.split_whitespace().any(anchor) {
                continue;
            }
            out.push(CandidateEntity {
                phrase: span,
                concept,
                matched_instance: String::new(),
                semantic_score: 1.0,
                cluster_score: 1.0,
            });
        }
        out
    }
}

impl Extractor for PerceptronTagger {
    fn name(&self) -> &str {
        &self.name
    }

    fn extract(&self, table: &Table, docs: &[Document]) -> Vec<ExtractedEntity> {
        let subjects: Vec<String> = table.subjects().map(str::to_string).collect();
        let mut out = Vec::new();
        for doc in docs {
            for (subject, sentence) in attribute_sentences(&doc.text, &subjects) {
                for c in self.candidates(&sentence.text) {
                    out.push(ExtractedEntity {
                        subject: subject.clone(),
                        concept: c.concept,
                        phrase: c.phrase,
                        score: 1.0,
                        matched_instance: c.matched_instance,
                        doc_id: doc.id.clone(),
                        sentence_index: 0,
                    });
                }
            }
        }
        out.sort_by_key(|a| a.key());
        out.dedup_by(|a, b| a.key() == b.key());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_data::Schema;

    fn annotated(texts_and_gold: &[(&str, &[(&str, &str)])]) -> Vec<AnnotatedDoc> {
        texts_and_gold
            .iter()
            .enumerate()
            .map(|(i, (text, gold))| AnnotatedDoc {
                doc: Document::new(format!("d{i}"), *text),
                subjects: vec!["S".into()],
                gold: gold
                    .iter()
                    .map(|(c, p)| GoldEntity {
                        subject: "S".into(),
                        concept: c.to_string(),
                        phrase: p.to_string(),
                    })
                    .collect(),
            })
            .collect()
    }

    fn training_docs() -> Vec<AnnotatedDoc> {
        annotated(&[
            (
                "The tumor damages the brainex badly.",
                &[("Anatomy", "brainex")],
            ),
            (
                "Patients develop cortonosis quickly.",
                &[("Complication", "cortonosis")],
            ),
            (
                "The nervexum hurts and shows cortonosis.",
                &[("Anatomy", "nervexum"), ("Complication", "cortonosis")],
            ),
            (
                "Doctors saw damage to the spinalex region.",
                &[("Anatomy", "spinalex")],
            ),
            (
                "Severe meningosis develops in rare cases.",
                &[("Complication", "meningosis")],
            ),
            (
                "The lungum and the heartex suffer most.",
                &[("Anatomy", "lungum"), ("Anatomy", "heartex")],
            ),
        ])
    }

    #[test]
    fn learns_training_vocabulary() {
        let tagger =
            PerceptronTagger::train_gold("LM-Test", &training_docs(), &TaggerConfig::default());
        assert!(tagger.feature_count() > 0);
        let table = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        let mut t = table;
        t.row_for_subject("S");
        let docs = vec![Document::new("t", "The brainex shows cortonosis.")];
        let found = tagger.extract(&t, &docs);
        assert!(
            found
                .iter()
                .any(|e| e.phrase == "brainex" && e.concept.eq_ignore_ascii_case("anatomy")),
            "{found:?}"
        );
        assert!(found
            .iter()
            .any(|e| e.phrase == "cortonosis" && e.concept.eq_ignore_ascii_case("complication")));
    }

    #[test]
    fn generalizes_via_suffix_features() {
        // Unseen word with a training-suffix: "-osis" ⇒ Complication.
        let tagger =
            PerceptronTagger::train_gold("LM-Test", &training_docs(), &TaggerConfig::default());
        let mut t = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        t.row_for_subject("S");
        let docs = vec![Document::new(
            "t",
            "Severe fibrosis develops in rare cases.",
        )];
        let found = tagger.extract(&t, &docs);
        // We only require that, IF the model fires on the unseen word, it
        // uses the suffix-consistent class. Firing at all is a bonus.
        for e in &found {
            if e.phrase == "fibrosis" {
                assert!(e.concept.eq_ignore_ascii_case("complication"), "{found:?}");
            }
        }
    }

    #[test]
    fn decode_spans_handles_malformed_bio() {
        let words: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let labels: Vec<String> = ["I-x", "B-y", "I-z"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let spans = PerceptronTagger::decode_spans(&words, &labels);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0], ("x".to_string(), "a".to_string()));
    }

    #[test]
    fn weak_projection_from_table() {
        let mut table = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        table.fill_slot("S", "Anatomy", "brainex");
        table.fill_slot("S", "Complication", "cortonosis");
        let doc = Document::new("d", "The brainex shows cortonosis and more.");
        let weak = project_weak_labels(&table, &doc);
        assert_eq!(weak.len(), 2);
        assert!(weak
            .iter()
            .any(|g| g.phrase == "brainex" && g.concept == "Anatomy"));
    }

    #[test]
    fn weak_conflicts_resolve_to_majority_concept() {
        let mut table = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        // "bloodex" in both concepts; Anatomy has more instances.
        table.fill_slot("S", "Anatomy", "bloodex");
        table.fill_slot("S", "Anatomy", "nervexum");
        table.fill_slot("S", "Anatomy", "heartex");
        table.fill_slot("S", "Complication", "bloodex");
        let doc = Document::new("d", "The bloodex was affected.");
        let weak = project_weak_labels(&table, &doc);
        assert_eq!(weak.len(), 1);
        assert_eq!(weak[0].concept, "Anatomy");
    }

    #[test]
    fn weak_training_runs_end_to_end() {
        let mut table = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        table.fill_slot("S", "Anatomy", "brainex");
        table.fill_slot("S", "Complication", "cortonosis");
        let docs = training_docs();
        let tagger = PerceptronTagger::train_weak("LM-SD", &table, &docs, &TaggerConfig::default());
        let found = tagger.extract(&table, &[docs[2].doc.clone()]);
        // The weakly supervised model should at least find the table
        // instances it was projected from.
        assert!(found.iter().any(|e| e.phrase == "cortonosis"), "{found:?}");
    }

    #[test]
    fn candidate_source_decodes_spans() {
        let tagger =
            PerceptronTagger::train_gold("LM-Test", &training_docs(), &TaggerConfig::default());
        let candidates = tagger.candidates("The brainex shows cortonosis.");
        assert!(
            candidates
                .iter()
                .any(|c| c.phrase == "brainex" && c.concept.eq_ignore_ascii_case("anatomy")),
            "{candidates:?}"
        );
        // Anchoring away every word yields nothing.
        assert!(tagger
            .candidates_anchored("The brainex shows cortonosis.", &|_| false)
            .is_empty());
        assert_eq!(CandidateSource::source_name(&tagger), "tagger");
    }

    #[test]
    fn empty_training_is_safe() {
        let tagger = PerceptronTagger::train_gold("LM-0", &[], &TaggerConfig::default());
        let mut t = Table::new(Schema::new(["D", "A"], "D"));
        t.row_for_subject("S");
        let found = tagger.extract(&t, &[Document::new("d", "Some text here.")]);
        assert!(found.is_empty());
    }
}
