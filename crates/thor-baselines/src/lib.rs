#![warn(missing_docs)]
//! # thor-baselines
//!
//! Every comparison system of the paper's evaluation (Table IV), rebuilt
//! or simulated so the full harness runs offline:
//!
//! * [`dictionary`] — **Baseline**: exact syntactic matching with the
//!   Aho–Corasick automaton (`thor-automata`), dictionary built from the
//!   structured table;
//! * [`tagger`] — **LM-SD / LM-Human**: a from-scratch averaged-
//!   perceptron BIO sequence tagger. *LM-Human* trains on gold-annotated
//!   text; *LM-SD* trains on weak annotations projected from the
//!   structured table onto unannotated text (distant supervision) — the
//!   practical reading of "fine-tuned with the structured data sources".
//!   Unlike the transformer originals, it is CPU-cheap, but it exhibits
//!   the behaviours the paper reports: weak labels inflate false
//!   positives and bias toward the most frequent class; gold labels win
//!   precision but cost annotation time (Experiment 2);
//! * [`llm_sim`] — **GPT-4 / UniversalNER**: *simulated* zero-shot LLMs.
//!   We obviously cannot run the originals; the simulator reproduces
//!   their documented failure modes mechanically (per-concept recall,
//!   label confusion, hallucination, context-window truncation,
//!   sampling nondeterminism), calibrated to the paper's Table VII. It
//!   reads the gold annotations — treat its rows as a *behavioural
//!   reference*, not a measurement of any real model.
//!
//! All systems implement [`Extractor`], the harness's common interface.
//! The dictionary and tagger additionally implement
//! `thor_index::CandidateSource` — the same per-phrase candidate
//! engine surface the semantic matcher exposes — and their `extract`
//! implementations are thin document/subject loops over it.

pub mod dictionary;
pub mod llm_sim;
pub mod subject;
pub mod tagger;

pub use dictionary::{dictionary_index, DictionaryBaseline};
pub use llm_sim::{LlmProfile, SimulatedLlm};
pub use tagger::{PerceptronTagger, TaggerConfig};

use thor_core::{Document, ExtractedEntity};
use thor_data::Table;

/// A system that extracts conceptualized entities from documents given
/// the integrated table (its schema and, depending on the system, its
/// instances).
pub trait Extractor {
    /// Human-readable system name (as printed in the result tables).
    fn name(&self) -> &str;

    /// Extract entities from `docs` against `table`.
    fn extract(&self, table: &Table, docs: &[Document]) -> Vec<ExtractedEntity>;
}
