//! Subject attribution shared by the baseline systems: exact-mention
//! anchoring with carry-forward, the same heuristic THOR's segmentation
//! uses (without the semantic fallback, which only THOR has).

use thor_text::{normalize_phrase, split_sentences, Sentence};

/// Attribute each sentence of `text` to a subject instance. Sentences
/// before the first mention fall to the first subject (if any) so that
/// no extraction is orphaned.
pub fn attribute_sentences(text: &str, subjects: &[String]) -> Vec<(String, Sentence)> {
    let keyed: Vec<(String, String)> = subjects
        .iter()
        .map(|s| (s.clone(), normalize_phrase(s)))
        .collect();
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for sentence in split_sentences(text) {
        let norm = format!(" {} ", normalize_phrase(&sentence.text));
        let mention = keyed
            .iter()
            .filter(|(_, key)| norm.contains(&format!(" {key} ")))
            .max_by_key(|(_, key)| key.len())
            .map(|(display, _)| display.clone());
        if let Some(m) = mention {
            current = Some(m);
        }
        let subject = current.clone().or_else(|| subjects.first().cloned());
        if let Some(subject) = subject {
            out.push((subject, sentence));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carry_forward() {
        let subjects = vec!["Acoustic Neuroma".to_string(), "Tuberculosis".to_string()];
        let segs = attribute_sentences(
            "Acoustic Neuroma is a tumor. It grows slowly. Tuberculosis damages lungs.",
            &subjects,
        );
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].0, "Acoustic Neuroma");
        assert_eq!(segs[1].0, "Acoustic Neuroma");
        assert_eq!(segs[2].0, "Tuberculosis");
    }

    #[test]
    fn orphan_sentences_fall_to_first_subject() {
        let subjects = vec!["X".to_string()];
        let segs = attribute_sentences("No mention here.", &subjects);
        assert_eq!(segs[0].0, "X");
    }

    #[test]
    fn no_subjects_no_output() {
        assert!(attribute_sentences("Anything at all.", &[]).is_empty());
    }
}
