//! Multi-valued tables with labeled nulls.
//!
//! "Every row has a single value for the subject concept, while it can be
//! multi-valued for the other concepts." A missing value (⊥) is an empty
//! cell — the thing THOR's slot-filling phase fills.

use std::collections::BTreeSet;
use std::collections::HashMap;

use thor_text::normalize_phrase;

use crate::schema::{Concept, Schema};

/// A cell: a set of concept-instance strings. Empty ⇔ labeled null ⊥.
/// Values are stored in insertion-normalized display form and compared
/// via [`normalize_phrase`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cell {
    values: BTreeSet<String>,
}

impl Cell {
    /// The labeled null ⊥.
    pub fn null() -> Self {
        Self::default()
    }

    /// A cell with one value.
    pub fn single(value: impl Into<String>) -> Self {
        let mut c = Self::default();
        c.insert(value);
        c
    }

    /// Insert a value (trimmed); empty strings are ignored. Returns
    /// whether the cell changed (duplicates, compared case-insensitively
    /// after normalization, are not re-added).
    pub fn insert(&mut self, value: impl Into<String>) -> bool {
        let v = value.into().trim().to_string();
        if v.is_empty() {
            return false;
        }
        if self.contains(&v) {
            return false;
        }
        self.values.insert(v)
    }

    /// Is this cell a labeled null?
    pub fn is_null(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the cell holds no value (alias of [`Cell::is_null`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Does the cell contain `value` (normalized comparison)?
    pub fn contains(&self, value: &str) -> bool {
        let needle = normalize_phrase(value);
        self.values.iter().any(|v| normalize_phrase(v) == needle)
    }

    /// Iterate the values in deterministic (sorted) order.
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(String::as_str)
    }

    /// Merge another cell's values into this one.
    pub fn merge(&mut self, other: &Cell) {
        for v in other.values() {
            self.insert(v);
        }
    }
}

impl<S: Into<String>> FromIterator<S> for Cell {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        let mut c = Cell::null();
        for v in iter {
            c.insert(v);
        }
        c
    }
}

/// A row: one cell per schema concept. The subject cell must hold
/// exactly one value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    cells: Vec<Cell>,
}

impl Row {
    /// An all-null row of the given arity.
    pub fn empty(arity: usize) -> Self {
        Self {
            cells: vec![Cell::null(); arity],
        }
    }

    /// The cell at concept index `i`.
    pub fn cell(&self, i: usize) -> &Cell {
        &self.cells[i]
    }

    /// Mutable cell access.
    pub fn cell_mut(&mut self, i: usize) -> &mut Cell {
        &mut self.cells[i]
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.cells.len()
    }
}

/// A table `R` adhering to a [`Schema`], keyed by the subject concept.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
    /// normalized subject value → row index.
    index: HashMap<String, usize>,
}

impl Table {
    /// An empty table over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to row `i` (crate-internal; used by the
    /// integration kernel, which upholds the subject-key index).
    pub(crate) fn row_mut(&mut self, i: usize) -> &mut Row {
        &mut self.rows[i]
    }

    /// Get (creating if necessary) the row for subject instance
    /// `subject`, returning its index.
    pub fn row_for_subject(&mut self, subject: &str) -> usize {
        let key = normalize_phrase(subject);
        assert!(!key.is_empty(), "subject instance must be non-empty");
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let mut row = Row::empty(self.schema.arity());
        row.cell_mut(self.schema.subject_index()).insert(subject);
        self.rows.push(row);
        let i = self.rows.len() - 1;
        self.index.insert(key, i);
        i
    }

    /// Look up a row by subject instance.
    pub fn get_row(&self, subject: &str) -> Option<&Row> {
        self.index
            .get(&normalize_phrase(subject))
            .map(|&i| &self.rows[i])
    }

    /// Subject instance of row `i` (display form).
    pub fn subject_of(&self, i: usize) -> &str {
        self.rows[i]
            .cell(self.schema.subject_index())
            .values()
            .next()
            .expect("every row has a subject value")
    }

    /// All subject instances in row order.
    pub fn subjects(&self) -> impl Iterator<Item = &str> {
        (0..self.rows.len()).map(move |i| self.subject_of(i))
    }

    /// Insert a value into the cell `(subject, concept)`, creating the
    /// row if needed. Returns `true` when the value is new.
    ///
    /// # Panics
    /// If `concept` is not in the schema, or is the subject concept.
    pub fn fill_slot(&mut self, subject: &str, concept: &str, value: &str) -> bool {
        let ci = self
            .schema
            .index_of(concept)
            .unwrap_or_else(|| panic!("concept `{concept}` not in schema"));
        assert_ne!(
            ci,
            self.schema.subject_index(),
            "cannot slot-fill the subject concept"
        );
        let ri = self.row_for_subject(subject);
        self.rows[ri].cell_mut(ci).insert(value)
    }

    /// All values appearing in column `concept` (`R.C`), deduplicated,
    /// in deterministic order.
    pub fn column_values(&self, concept: &str) -> Vec<String> {
        let Some(ci) = self.schema.index_of(concept) else {
            return vec![];
        };
        let mut set = BTreeSet::new();
        for row in &self.rows {
            for v in row.cell(ci).values() {
                set.insert(v.to_string());
            }
        }
        set.into_iter().collect()
    }

    /// Total number of concept instances stored (counting the subject).
    pub fn instance_count(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.cells().iter().map(Cell::len).sum::<usize>())
            .sum()
    }

    /// Widen the table with a new (empty) concept column appended to
    /// the schema: every existing row gains a labeled null ⊥ for it.
    /// Row order and all existing cells are untouched, so builds over
    /// the widened table differ from the original only by the appended
    /// concept.
    ///
    /// # Panics
    /// If `concept` is already in the schema.
    pub fn with_concept(&self, concept: &str) -> Table {
        assert!(
            self.schema.index_of(concept).is_none(),
            "concept `{concept}` already in schema"
        );
        let mut concepts: Vec<Concept> = self.schema.concepts().to_vec();
        concepts.push(Concept::new(concept));
        let subject = self.schema.subject().name().to_string();
        let schema = Schema::new(concepts, &subject);
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = r.cells().to_vec();
                cells.push(Cell::null());
                Row { cells }
            })
            .collect();
        Table {
            schema,
            rows,
            index: self.index.clone(),
        }
    }

    /// Strip every non-subject cell (the paper's evaluation setup:
    /// "we deleted the instances of all concepts from these test tables
    /// except for the subject concepts").
    pub fn stripped(&self) -> Table {
        let mut out = Table::new(self.schema.clone());
        for i in 0..self.rows.len() {
            let subject = self.subject_of(i).to_string();
            out.row_for_subject(&subject);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::new(["Disease", "Anatomy", "Complication"], "Disease")
    }

    #[test]
    fn cell_null_and_insert() {
        let mut c = Cell::null();
        assert!(c.is_null());
        assert!(c.insert("brain"));
        assert!(!c.insert("brain"));
        assert!(!c.insert("Brain")); // normalized duplicate
        assert!(!c.insert("  "));
        assert_eq!(c.len(), 1);
        assert!(c.contains("BRAIN"));
    }

    #[test]
    fn cell_merge() {
        let mut a = Cell::from_iter(["x", "y"]);
        let b = Cell::from_iter(["y", "z"]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn row_creation_and_lookup() {
        let mut t = Table::new(schema());
        let i = t.row_for_subject("Tuberculosis");
        assert_eq!(t.row_for_subject("tuberculosis"), i, "case-insensitive key");
        assert_eq!(t.len(), 1);
        assert_eq!(t.subject_of(i), "Tuberculosis");
        assert!(t.get_row("Tuberculosis").is_some());
        assert!(t.get_row("Acne").is_none());
    }

    #[test]
    fn fill_slot_and_column_values() {
        let mut t = Table::new(schema());
        assert!(t.fill_slot("Tuberculosis", "Anatomy", "lungs"));
        assert!(!t.fill_slot("Tuberculosis", "Anatomy", "lungs"));
        assert!(t.fill_slot("Acoustic Neuroma", "Anatomy", "nervous system"));
        assert_eq!(t.column_values("Anatomy"), ["lungs", "nervous system"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn fill_unknown_concept_panics() {
        let mut t = Table::new(schema());
        t.fill_slot("X", "Bogus", "v");
    }

    #[test]
    #[should_panic(expected = "subject concept")]
    fn fill_subject_panics() {
        let mut t = Table::new(schema());
        t.fill_slot("X", "Disease", "v");
    }

    #[test]
    fn instance_count_counts_everything() {
        let mut t = Table::new(schema());
        t.fill_slot("TB", "Anatomy", "lungs");
        t.fill_slot("TB", "Complication", "empyema");
        t.fill_slot("TB", "Complication", "meningitis");
        assert_eq!(t.instance_count(), 4); // subject + 3 values
    }

    #[test]
    fn stripped_keeps_only_subjects() {
        let mut t = Table::new(schema());
        t.fill_slot("TB", "Anatomy", "lungs");
        t.fill_slot("Acne", "Anatomy", "skin");
        let s = t.stripped();
        assert_eq!(s.len(), 2);
        assert_eq!(s.instance_count(), 2);
        assert!(s.column_values("Anatomy").is_empty());
    }

    #[test]
    fn with_concept_appends_null_column() {
        let mut t = Table::new(schema());
        t.fill_slot("TB", "Anatomy", "lungs");
        t.fill_slot("Acne", "Anatomy", "skin");
        let wide = t.with_concept("Medicine");
        assert_eq!(wide.schema().arity(), 4);
        assert_eq!(wide.schema().concepts().last().unwrap().name(), "Medicine");
        assert_eq!(wide.len(), 2);
        assert_eq!(wide.subject_of(0), "TB");
        assert_eq!(wide.column_values("Anatomy"), ["lungs", "skin"]);
        assert!(wide.column_values("Medicine").is_empty());
        let mi = wide.schema().index_of("Medicine").unwrap();
        assert!(wide.rows().iter().all(|r| r.cell(mi).is_null()));
        // The widened table is still keyed: slot-filling the new
        // concept lands on the existing row.
        let mut wide = wide;
        assert!(wide.fill_slot("tb", "Medicine", "isoniazid"));
        assert_eq!(wide.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already in schema")]
    fn with_concept_rejects_duplicates() {
        let t = Table::new(schema());
        t.with_concept("anatomy");
    }

    #[test]
    fn multivalued_cells_ordered() {
        let mut t = Table::new(schema());
        t.fill_slot("TB", "Complication", "empyema");
        t.fill_slot("TB", "Complication", "blood clot");
        let row = t.get_row("TB").unwrap();
        let ci = t.schema().index_of("Complication").unwrap();
        let vals: Vec<&str> = row.cell(ci).values().collect();
        assert_eq!(vals, ["blood clot", "empyema"]); // sorted
    }
}
