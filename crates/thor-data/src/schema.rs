//! Concept-oriented schemas.
//!
//! "We consider a concept-oriented *schema*, defined as a collection of
//! concepts 𝒞, among which one concept, termed the *subject concept*
//! C* ∈ 𝒞 plays the role of the primary key."

use std::fmt;

/// A concept — an idea, category, or class of things (`Disease`,
/// `Anatomy`, …). Concept names are compared case-insensitively but keep
/// their display form.
#[derive(Debug, Clone, Eq)]
pub struct Concept(String);

impl Concept {
    /// Create a concept with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Concept(name.into())
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Canonical (lowercase) form used for comparisons.
    pub fn key(&self) -> String {
        self.0.to_lowercase()
    }
}

impl PartialEq for Concept {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl std::hash::Hash for Concept {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl fmt::Display for Concept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Concept {
    fn from(s: &str) -> Self {
        Concept::new(s)
    }
}

impl From<String> for Concept {
    fn from(s: String) -> Self {
        Concept::new(s)
    }
}

impl From<&String> for Concept {
    fn from(s: &String) -> Self {
        Concept::new(s.clone())
    }
}

/// A schema: an ordered collection of concepts with a designated subject.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    concepts: Vec<Concept>,
    subject: usize,
}

impl Schema {
    /// Build a schema. The subject concept must be a member of
    /// `concepts`.
    ///
    /// # Panics
    /// If `concepts` is empty, contains duplicates, or the subject is
    /// not among them.
    pub fn new<C: Into<Concept>>(concepts: impl IntoIterator<Item = C>, subject: &str) -> Self {
        let concepts: Vec<Concept> = concepts.into_iter().map(Into::into).collect();
        assert!(
            !concepts.is_empty(),
            "schema must have at least one concept"
        );
        let mut seen = std::collections::HashSet::new();
        for c in &concepts {
            assert!(seen.insert(c.key()), "duplicate concept `{c}`");
        }
        let subject_key = subject.to_lowercase();
        let subject = concepts
            .iter()
            .position(|c| c.key() == subject_key)
            .unwrap_or_else(|| panic!("subject concept `{subject}` not in schema"));
        Self { concepts, subject }
    }

    /// The concepts, in schema order.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Number of concepts.
    pub fn arity(&self) -> usize {
        self.concepts.len()
    }

    /// The subject concept `C*`.
    pub fn subject(&self) -> &Concept {
        &self.concepts[self.subject]
    }

    /// Index of the subject concept.
    pub fn subject_index(&self) -> usize {
        self.subject
    }

    /// Index of a concept by (case-insensitive) name.
    pub fn index_of(&self, concept: &str) -> Option<usize> {
        let key = concept.to_lowercase();
        self.concepts.iter().position(|c| c.key() == key)
    }

    /// The non-subject concepts (the slots THOR can fill).
    pub fn slot_concepts(&self) -> impl Iterator<Item = &Concept> {
        self.concepts
            .iter()
            .enumerate()
            .filter_map(move |(i, c)| (i != self.subject).then_some(c))
    }

    /// Merge two schemas (union of concepts, preserving `self`'s order
    /// then appending new ones). Subjects must agree.
    ///
    /// # Panics
    /// If the subject concepts differ.
    pub fn union(&self, other: &Schema) -> Schema {
        assert_eq!(
            self.subject().key(),
            other.subject().key(),
            "cannot union schemas with different subject concepts"
        );
        let mut concepts = self.concepts.clone();
        for c in &other.concepts {
            if !concepts.iter().any(|x| x == c) {
                concepts.push(c.clone());
            }
        }
        let subject_name = self.subject().name().to_string();
        Schema::new(concepts, &subject_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disease_schema() -> Schema {
        Schema::new(
            ["Disease", "Anatomy", "Complication", "Medicine"],
            "Disease",
        )
    }

    #[test]
    fn construction_and_accessors() {
        let s = disease_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.subject().name(), "Disease");
        assert_eq!(s.subject_index(), 0);
        assert_eq!(s.index_of("anatomy"), Some(1));
        assert_eq!(s.index_of("Anatomy"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn slot_concepts_excludes_subject() {
        let s = disease_schema();
        let slots: Vec<&str> = s.slot_concepts().map(Concept::name).collect();
        assert_eq!(slots, ["Anatomy", "Complication", "Medicine"]);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn subject_must_exist() {
        Schema::new(["A", "B"], "C");
    }

    #[test]
    #[should_panic(expected = "duplicate concept")]
    fn duplicates_rejected() {
        Schema::new(["A", "a"], "A");
    }

    #[test]
    fn union_of_schemas() {
        let a = Schema::new(["Disease", "Anatomy"], "Disease");
        let b = Schema::new(["Disease", "Medicine", "Anatomy"], "Disease");
        let u = a.union(&b);
        let names: Vec<&str> = u.concepts().iter().map(Concept::name).collect();
        assert_eq!(names, ["Disease", "Anatomy", "Medicine"]);
        assert_eq!(u.subject().name(), "Disease");
    }

    #[test]
    #[should_panic(expected = "different subject")]
    fn union_requires_same_subject() {
        let a = Schema::new(["Disease", "Anatomy"], "Disease");
        let b = Schema::new(["Name", "Skills"], "Name");
        a.union(&b);
    }

    #[test]
    fn concept_case_insensitive_eq() {
        assert_eq!(Concept::new("Anatomy"), Concept::new("anatomy"));
        assert_ne!(Concept::new("Anatomy"), Concept::new("Cause"));
    }
}
