//! CSV serialization for tables.
//!
//! Artifacts (generated tables, enriched outputs) are written as RFC-4180
//! CSV: the header row is the schema, each body row is one subject, and
//! multi-valued cells join their values with `|`. A labeled null ⊥ is an
//! empty field. The parser handles quoted fields with embedded commas,
//! quotes, and newlines.

use std::fmt::Write as _;

use crate::schema::Schema;
use crate::table::Table;

/// Multi-value separator inside one CSV field.
pub const VALUE_SEPARATOR: char = '|';

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize a table to CSV text.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .concepts()
        .iter()
        .map(|c| escape(c.name()))
        .collect();
    let _ = writeln!(out, "{}", header.join(","));
    for row in table.rows() {
        let fields: Vec<String> = row
            .cells()
            .iter()
            .map(|cell| {
                let joined: Vec<&str> = cell.values().collect();
                escape(&joined.join(&VALUE_SEPARATOR.to_string()))
            })
            .collect();
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

/// Error produced when parsing CSV into a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A row had a different number of fields than the header.
    ArityMismatch {
        /// 1-based line number of the offending record.
        line: usize,
        /// Expected field count (header arity).
        expected: usize,
        /// Actual field count.
        got: usize,
    },
    /// A record's subject field was empty.
    EmptySubject {
        /// 1-based line number of the offending record.
        line: usize,
    },
    /// Unterminated quoted field.
    UnterminatedQuote,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing header row"),
            CsvError::ArityMismatch {
                line,
                expected,
                got,
            } => {
                write!(f, "record {line}: expected {expected} fields, got {got}")
            }
            CsvError::EmptySubject { line } => write!(f, "record {line}: empty subject"),
            CsvError::UnterminatedQuote => write!(f, "unterminated quoted field"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Split CSV text into records of fields (RFC-4180 quoting).
fn parse_records(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote);
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any {
        return Err(CsvError::MissingHeader);
    }
    Ok(records)
}

/// Validate one body record against the header and insert it into the
/// table. Shared by the strict and lenient parsers.
fn insert_record(
    table: &mut Table,
    header: &[String],
    record: &[String],
    line: usize,
) -> Result<(), CsvError> {
    if record.len() != header.len() {
        return Err(CsvError::ArityMismatch {
            line,
            expected: header.len(),
            got: record.len(),
        });
    }
    let subject_value = record[0].trim();
    if subject_value.is_empty() {
        return Err(CsvError::EmptySubject { line });
    }
    table.row_for_subject(subject_value);
    for (ci, field) in record.iter().enumerate().skip(1) {
        for value in field.split(VALUE_SEPARATOR) {
            let v = value.trim();
            if !v.is_empty() {
                table.fill_slot(subject_value, header[ci].as_str(), v);
            }
        }
    }
    Ok(())
}

fn parse_header(records: &mut std::vec::IntoIter<Vec<String>>) -> Result<Vec<String>, CsvError> {
    let header = records.next().ok_or(CsvError::MissingHeader)?;
    if header.is_empty() || header.iter().all(String::is_empty) {
        return Err(CsvError::MissingHeader);
    }
    Ok(header)
}

/// Parse CSV text into a table. The first header column is taken as the
/// subject concept.
pub fn from_csv(text: &str) -> Result<Table, CsvError> {
    let mut iter = parse_records(text)?.into_iter();
    let header = parse_header(&mut iter)?;
    let schema = Schema::new(header.clone(), &header[0]);
    let mut table = Table::new(schema);
    for (i, record) in iter.enumerate() {
        insert_record(&mut table, &header, &record, i + 2)?;
    }
    Ok(table)
}

/// A body row the lenient parser skipped, with its reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedRow {
    /// 1-based record number of the offending row.
    pub line: usize,
    /// Why it was rejected.
    pub error: CsvError,
}

/// Result of a lenient parse: the table built from the well-formed rows
/// plus the ledger of skipped ones.
#[derive(Debug, Clone)]
pub struct LenientCsv {
    /// The table assembled from every valid row.
    pub table: Table,
    /// The malformed rows, in input order.
    pub skipped: Vec<SkippedRow>,
}

/// Parse CSV text, quarantining malformed body rows instead of failing
/// the whole parse: a row with the wrong arity or an empty subject is
/// recorded in [`LenientCsv::skipped`] and the parse carries on.
/// Stream-level problems (no header, unterminated quote — which makes
/// the rest of the input one indivisible field) remain hard errors.
pub fn from_csv_lenient(text: &str) -> Result<LenientCsv, CsvError> {
    let mut iter = parse_records(text)?.into_iter();
    let header = parse_header(&mut iter)?;
    let schema = Schema::new(header.clone(), &header[0]);
    let mut table = Table::new(schema);
    let mut skipped = Vec::new();
    for (i, record) in iter.enumerate() {
        let line = i + 2;
        if let Err(error) = insert_record(&mut table, &header, &record, line) {
            skipped.push(SkippedRow { line, error });
        }
    }
    Ok(LenientCsv { table, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        t.fill_slot("Tuberculosis", "Anatomy", "lungs");
        t.fill_slot("Tuberculosis", "Complication", "empyema");
        t.fill_slot("Tuberculosis", "Complication", "meningitis");
        t.row_for_subject("Acne");
        t
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let csv = to_csv(&t);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(
            back.column_values("Complication"),
            t.column_values("Complication")
        );
        assert!(back.get_row("Acne").unwrap().cell(1).is_null());
    }

    #[test]
    fn quoting_round_trip() {
        let mut t = Table::new(Schema::new(["Name", "Skills"], "Name"));
        t.fill_slot("Smith, John", "Skills", "C++ \"expert\"");
        let csv = to_csv(&t);
        let back = from_csv(&csv).unwrap();
        assert!(back.get_row("Smith, John").is_some());
        assert_eq!(back.column_values("Skills"), ["C++ \"expert\""]);
    }

    #[test]
    fn multivalue_field_format() {
        let csv = to_csv(&sample());
        assert!(csv.contains("empyema|meningitis"), "{csv}");
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(from_csv("").unwrap_err(), CsvError::MissingHeader);
    }

    #[test]
    fn arity_mismatch_detected() {
        let err = from_csv("A,B\nx\n").unwrap_err();
        assert!(matches!(
            err,
            CsvError::ArityMismatch {
                line: 2,
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn empty_subject_detected() {
        let err = from_csv("A,B\n,v\n").unwrap_err();
        assert!(matches!(err, CsvError::EmptySubject { line: 2 }));
    }

    #[test]
    fn unterminated_quote_detected() {
        assert_eq!(
            from_csv("A,B\n\"oops,v\n").unwrap_err(),
            CsvError::UnterminatedQuote
        );
    }

    #[test]
    fn lenient_parse_quarantines_bad_rows() {
        let text = "A,B\nx,1\nbadrow\n,empty\ny,2\n";
        let lenient = from_csv_lenient(text).unwrap();
        assert_eq!(lenient.table.len(), 2, "good rows survive");
        assert_eq!(lenient.table.column_values("B"), ["1", "2"]);
        assert_eq!(lenient.skipped.len(), 2);
        assert_eq!(lenient.skipped[0].line, 3);
        assert!(matches!(
            lenient.skipped[0].error,
            CsvError::ArityMismatch { got: 1, .. }
        ));
        assert!(matches!(
            lenient.skipped[1].error,
            CsvError::EmptySubject { line: 4 }
        ));
    }

    #[test]
    fn lenient_parse_matches_strict_on_clean_input() {
        let csv = to_csv(&sample());
        let strict = from_csv(&csv).unwrap();
        let lenient = from_csv_lenient(&csv).unwrap();
        assert!(lenient.skipped.is_empty());
        assert_eq!(to_csv(&lenient.table), to_csv(&strict));
    }

    #[test]
    fn lenient_parse_keeps_stream_errors_fatal() {
        assert_eq!(from_csv_lenient("").unwrap_err(), CsvError::MissingHeader);
        assert_eq!(
            from_csv_lenient("A,B\n\"oops,v\n").unwrap_err(),
            CsvError::UnterminatedQuote
        );
    }

    #[test]
    fn crlf_accepted() {
        let t = from_csv("A,B\r\nx,y\r\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.column_values("B"), ["y"]);
    }
}
