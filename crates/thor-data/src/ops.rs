//! Relational operations over concept-oriented tables.
//!
//! Beyond the integration operators of [`crate::integrate`], downstream
//! users shape tables before/after enrichment: project a schema subset,
//! select rows, rename concepts (schema evolution), diff two versions of
//! a table (what did enrichment add?).

use crate::schema::Schema;
use crate::table::{Row, Table};

/// Project `table` onto a subset of concepts. The subject concept is
/// always kept (it is the key).
///
/// # Panics
/// If any requested concept is not in the schema.
pub fn project(table: &Table, concepts: &[&str]) -> Table {
    let subject = table.schema().subject().name().to_string();
    let mut keep: Vec<String> = vec![subject.clone()];
    for c in concepts {
        let idx = table
            .schema()
            .index_of(c)
            .unwrap_or_else(|| panic!("concept `{c}` not in schema"));
        let name = table.schema().concepts()[idx].name().to_string();
        if !keep.iter().any(|k| k.eq_ignore_ascii_case(&name)) {
            keep.push(name);
        }
    }
    let mut out = Table::new(Schema::new(keep.clone(), &subject));
    for i in 0..table.len() {
        let s = table.subject_of(i).to_string();
        out.row_for_subject(&s);
        for name in keep.iter().skip(1) {
            let src = table.schema().index_of(name).expect("validated above");
            for v in table.rows()[i].cell(src).values() {
                out.fill_slot(&s, name, v);
            }
        }
    }
    out
}

/// Select the rows satisfying `predicate` (applied to each row with its
/// subject value).
pub fn select(table: &Table, predicate: impl Fn(&str, &Row) -> bool) -> Table {
    let mut out = Table::new(table.schema().clone());
    for i in 0..table.len() {
        let s = table.subject_of(i).to_string();
        let row = &table.rows()[i];
        if !predicate(&s, row) {
            continue;
        }
        out.row_for_subject(&s);
        for (ci, concept) in table.schema().concepts().iter().enumerate() {
            if ci == table.schema().subject_index() {
                continue;
            }
            for v in row.cell(ci).values() {
                out.fill_slot(&s, concept.name(), v);
            }
        }
    }
    out
}

/// Rename a concept (schema evolution). The subject concept can be
/// renamed too.
///
/// # Panics
/// If `from` is not in the schema or `to` already is.
pub fn rename_concept(table: &Table, from: &str, to: &str) -> Table {
    let idx = table
        .schema()
        .index_of(from)
        .unwrap_or_else(|| panic!("concept `{from}` not in schema"));
    assert!(
        table.schema().index_of(to).is_none(),
        "concept `{to}` already exists in the schema"
    );
    let names: Vec<String> = table
        .schema()
        .concepts()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == idx {
                to.to_string()
            } else {
                c.name().to_string()
            }
        })
        .collect();
    let subject = names[table.schema().subject_index()].clone();
    let mut out = Table::new(Schema::new(names.clone(), &subject));
    for i in 0..table.len() {
        let s = table.subject_of(i).to_string();
        out.row_for_subject(&s);
        for (ci, name) in names.iter().enumerate() {
            if ci == table.schema().subject_index() {
                continue;
            }
            for v in table.rows()[i].cell(ci).values() {
                out.fill_slot(&s, name, v);
            }
        }
    }
    out
}

/// A value present in `after` but not in `before` (what enrichment
/// added), as `(subject, concept, value)` triples in deterministic
/// order.
pub fn added_values(before: &Table, after: &Table) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for i in 0..after.len() {
        let s = after.subject_of(i);
        let before_row = before.get_row(s);
        for (ci, concept) in after.schema().concepts().iter().enumerate() {
            if ci == after.schema().subject_index() {
                continue;
            }
            for v in after.rows()[i].cell(ci).values() {
                let known = before_row.is_some_and(|r| {
                    before
                        .schema()
                        .index_of(concept.name())
                        .is_some_and(|bci| r.cell(bci).contains(v))
                });
                if !known {
                    out.push((s.to_string(), concept.name().to_string(), v.to_string()));
                }
            }
        }
    }
    out.sort();
    out
}

/// A functional dependency `determinant → dependent` over single-valued
/// views of the cells: rows that agree on every determinant concept must
/// agree on the dependent concept. Multi-valued cells are compared as
/// whole sets.
#[derive(Debug, Clone)]
pub struct FunctionalDependency {
    /// Left-hand-side concepts.
    pub determinant: Vec<String>,
    /// Right-hand-side concept.
    pub dependent: String,
}

/// A violation of a functional dependency: two subjects that agree on
/// the determinant but differ on the dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdViolation {
    /// First subject instance.
    pub subject_a: String,
    /// Second subject instance.
    pub subject_b: String,
    /// The shared determinant value(s), joined for display.
    pub determinant_value: String,
}

/// Check a functional dependency over the table; each row disagreeing
/// with the *first* row seen for its determinant value is reported as
/// one violation pair. Rows with a null determinant or dependent are
/// skipped (nulls satisfy FDs vacuously, the usual certain-answer
/// semantics for labeled nulls).
///
/// # Panics
/// If a referenced concept is not in the schema.
pub fn check_fd(table: &Table, fd: &FunctionalDependency) -> Vec<FdViolation> {
    let det_idx: Vec<usize> = fd
        .determinant
        .iter()
        .map(|c| {
            table
                .schema()
                .index_of(c)
                .unwrap_or_else(|| panic!("concept `{c}` not in schema"))
        })
        .collect();
    let dep_idx = table
        .schema()
        .index_of(&fd.dependent)
        .unwrap_or_else(|| panic!("concept `{}` not in schema", fd.dependent));

    // determinant fingerprint → (subject, dependent fingerprint)
    let mut seen: std::collections::HashMap<String, (String, String)> =
        std::collections::HashMap::new();
    let mut violations = Vec::new();
    for i in 0..table.len() {
        let row = &table.rows()[i];
        if det_idx.iter().any(|&d| row.cell(d).is_null()) || row.cell(dep_idx).is_null() {
            continue;
        }
        let det: String = det_idx
            .iter()
            .map(|&d| row.cell(d).values().collect::<Vec<_>>().join("|"))
            .collect::<Vec<_>>()
            .join("§");
        let dep: String = row.cell(dep_idx).values().collect::<Vec<_>>().join("|");
        let subject = table.subject_of(i).to_string();
        match seen.get(&det) {
            Some((other, other_dep)) if *other_dep != dep => {
                violations.push(FdViolation {
                    subject_a: other.clone(),
                    subject_b: subject,
                    determinant_value: det.clone(),
                });
            }
            Some(_) => {}
            None => {
                seen.insert(det, (subject, dep));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(
            ["Disease", "Anatomy", "Complication"],
            "Disease",
        ));
        t.fill_slot("TB", "Anatomy", "lungs");
        t.fill_slot("TB", "Complication", "empyema");
        t.fill_slot("Acne", "Anatomy", "skin");
        t.row_for_subject("Flu");
        t
    }

    #[test]
    fn project_keeps_subject_and_requested() {
        let p = project(&sample(), &["Anatomy"]);
        assert_eq!(p.schema().arity(), 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.column_values("Anatomy"), ["lungs", "skin"]);
        assert!(p.schema().index_of("Complication").is_none());
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn project_unknown_concept_panics() {
        project(&sample(), &["Bogus"]);
    }

    #[test]
    fn select_by_predicate() {
        let t = sample();
        let anatomy = t.schema().index_of("Anatomy").unwrap();
        let filled = select(&t, |_, row| !row.cell(anatomy).is_null());
        assert_eq!(filled.len(), 2);
        assert!(filled.get_row("Flu").is_none());
    }

    #[test]
    fn rename_preserves_data() {
        let r = rename_concept(&sample(), "Complication", "Side Effect");
        assert!(r.schema().index_of("Complication").is_none());
        assert_eq!(r.column_values("Side Effect"), ["empyema"]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn rename_to_existing_panics() {
        rename_concept(&sample(), "Anatomy", "Complication");
    }

    #[test]
    fn added_values_diff() {
        let before = sample();
        let mut after = before.clone();
        after.fill_slot("Flu", "Anatomy", "throat");
        after.fill_slot("TB", "Complication", "meningitis");
        let added = added_values(&before, &after);
        assert_eq!(
            added,
            vec![
                (
                    "Flu".to_string(),
                    "Anatomy".to_string(),
                    "throat".to_string()
                ),
                (
                    "TB".to_string(),
                    "Complication".to_string(),
                    "meningitis".to_string()
                ),
            ]
        );
        assert!(added_values(&before, &before).is_empty());
    }

    #[test]
    fn fd_violations_detected() {
        let mut t = Table::new(Schema::new(["Person", "Zip", "City"], "Person"));
        t.fill_slot("alice", "Zip", "08034");
        t.fill_slot("alice", "City", "Barcelona");
        t.fill_slot("bob", "Zip", "08034");
        t.fill_slot("bob", "City", "Brussels"); // violates Zip → City
        t.fill_slot("carol", "Zip", "10115");
        t.fill_slot("carol", "City", "Berlin");
        let fd = FunctionalDependency {
            determinant: vec!["Zip".to_string()],
            dependent: "City".to_string(),
        };
        let v = check_fd(&t, &fd);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].determinant_value, "08034");
    }

    #[test]
    fn fd_nulls_vacuously_satisfy() {
        let mut t = Table::new(Schema::new(["Person", "Zip", "City"], "Person"));
        t.fill_slot("alice", "Zip", "08034");
        // alice has no City; bob has neither.
        t.row_for_subject("bob");
        let fd = FunctionalDependency {
            determinant: vec!["Zip".to_string()],
            dependent: "City".to_string(),
        };
        assert!(check_fd(&t, &fd).is_empty());
    }

    #[test]
    fn fd_multi_determinant() {
        let mut t = Table::new(Schema::new(["Id", "A", "B", "C"], "Id"));
        for (id, a, b, c) in [
            ("1", "x", "y", "v1"),
            ("2", "x", "y", "v2"),
            ("3", "x", "z", "v1"),
        ] {
            t.fill_slot(id, "A", a);
            t.fill_slot(id, "B", b);
            t.fill_slot(id, "C", c);
        }
        let fd = FunctionalDependency {
            determinant: vec!["A".to_string(), "B".to_string()],
            dependent: "C".to_string(),
        };
        let v = check_fd(&t, &fd);
        assert_eq!(v.len(), 1, "{v:?}"); // rows 1 and 2 clash; row 3 differs on B
    }
}
