//! Sparsity statistics.
//!
//! The paper motivates THOR with the observation that integrated data
//! carries ~15% missing values. [`sparsity`] measures exactly that on a
//! table: the fraction of non-subject cells that are labeled nulls,
//! overall and per concept.

use crate::table::Table;

/// Sparsity measurements of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityReport {
    /// Number of non-subject cells (rows × slot concepts).
    pub total_slots: usize,
    /// Number of those cells that are ⊥.
    pub missing_slots: usize,
    /// `missing_slots / total_slots` (0 when there are no slots).
    pub ratio: f64,
    /// Per-concept `(name, missing, total)` in schema order, subject
    /// excluded.
    pub per_concept: Vec<(String, usize, usize)>,
}

impl SparsityReport {
    /// Number of filled (non-null) slots.
    pub fn filled_slots(&self) -> usize {
        self.total_slots - self.missing_slots
    }
}

/// Measure the sparsity of `table`.
pub fn sparsity(table: &Table) -> SparsityReport {
    let subject_idx = table.schema().subject_index();
    let rows = table.rows();
    let mut per_concept = Vec::new();
    let mut total = 0usize;
    let mut missing = 0usize;

    for (ci, concept) in table.schema().concepts().iter().enumerate() {
        if ci == subject_idx {
            continue;
        }
        let concept_missing = rows.iter().filter(|r| r.cell(ci).is_null()).count();
        per_concept.push((concept.name().to_string(), concept_missing, rows.len()));
        total += rows.len();
        missing += concept_missing;
    }

    SparsityReport {
        total_slots: total,
        missing_slots: missing,
        ratio: if total == 0 {
            0.0
        } else {
            missing as f64 / total as f64
        },
        per_concept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn empty_table_zero_sparsity() {
        let t = Table::new(Schema::new(["D", "A"], "D"));
        let r = sparsity(&t);
        assert_eq!(r.total_slots, 0);
        assert_eq!(r.ratio, 0.0);
    }

    #[test]
    fn mixed_table() {
        let mut t = Table::new(Schema::new(["D", "A", "C"], "D"));
        t.fill_slot("x", "A", "v"); // x: A filled, C null
        t.row_for_subject("y"); // y: both null
        let r = sparsity(&t);
        assert_eq!(r.total_slots, 4);
        assert_eq!(r.missing_slots, 3);
        assert!((r.ratio - 0.75).abs() < 1e-12);
        assert_eq!(r.filled_slots(), 1);
        assert_eq!(
            r.per_concept,
            vec![("A".to_string(), 1, 2), ("C".to_string(), 2, 2)]
        );
    }

    #[test]
    fn enrichment_reduces_sparsity() {
        let mut t = Table::new(Schema::new(["D", "A"], "D"));
        t.row_for_subject("x");
        let before = sparsity(&t).ratio;
        t.fill_slot("x", "A", "v");
        let after = sparsity(&t).ratio;
        assert!(after < before);
    }
}
