//! Streaming corpus discovery: enumerate a document directory without
//! reading any document body.
//!
//! Out-of-core enrichment needs two things *before* the first byte of
//! text is read: the complete, deterministic document-id list (the
//! checkpoint fingerprint is keyed on ids, so a streaming run and a
//! batch run over the same corpus must agree on it) and a stable
//! processing order (so resume can skip completed prefixes). This
//! module provides both — [`CorpusDir::discover`] walks a directory
//! once, keeps only `(id, path)` pairs (bytes-per-document stays out of
//! memory), and sorts by id. Document *contents* are read later, chunk
//! by chunk, by the caller.

use std::io;
use std::path::{Path, PathBuf};

/// A discovered corpus: sorted `(document id, file path)` pairs.
///
/// Ids are file stems (matching `thor generate`'s gold TSVs and the
/// CLI's per-file convention); only regular files with a `.txt`
/// extension are picked up, non-recursively. Discovery is O(files) in
/// memory for the id list only — no document body is read.
#[derive(Debug, Clone)]
pub struct CorpusDir {
    files: Vec<(String, PathBuf)>,
}

impl CorpusDir {
    /// Enumerate `dir`, sorted by document id. Duplicate ids (e.g.
    /// `a.txt` alongside `a.TXT` on a case-sensitive filesystem
    /// mapping to the same stem) are reported as an error here, where
    /// the colliding paths can still be named.
    pub fn discover(dir: &Path) -> io::Result<Self> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if !entry.file_type()?.is_file() {
                continue;
            }
            let is_txt = path
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("txt"));
            if !is_txt {
                continue;
            }
            let Some(stem) = path.file_stem() else {
                continue;
            };
            files.push((stem.to_string_lossy().into_owned(), path));
        }
        files.sort();
        for pair in files.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "duplicate document id `{}` ({} and {})",
                        pair[0].0,
                        pair[0].1.display(),
                        pair[1].1.display()
                    ),
                ));
            }
        }
        Ok(CorpusDir { files })
    }

    /// The sorted document ids, cloned for fingerprinting.
    pub fn ids(&self) -> Vec<String> {
        self.files.iter().map(|(id, _)| id.clone()).collect()
    }

    /// Iterate the sorted `(id, path)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(String, PathBuf)> {
        self.files.iter()
    }

    /// Number of discovered documents.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the directory held no corpus files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl IntoIterator for CorpusDir {
    type Item = (String, PathBuf);
    type IntoIter = std::vec::IntoIter<(String, PathBuf)>;
    fn into_iter(self) -> Self::IntoIter {
        self.files.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("thor-corpus-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn discovery_is_sorted_and_txt_only() {
        let dir = scratch_dir("sorted");
        std::fs::write(dir.join("b.txt"), "beta").unwrap();
        std::fs::write(dir.join("a.txt"), "alpha").unwrap();
        std::fs::write(dir.join("notes.md"), "ignored").unwrap();
        std::fs::create_dir(dir.join("sub.txt")).unwrap(); // directory, ignored
        let corpus = CorpusDir::discover(&dir).unwrap();
        assert_eq!(corpus.ids(), ["a", "b"]);
        assert_eq!(corpus.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_is_empty_corpus() {
        let dir = scratch_dir("empty");
        let corpus = CorpusDir::discover(&dir).unwrap();
        assert!(corpus.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let dir = std::env::temp_dir().join("thor-corpus-definitely-missing");
        assert!(CorpusDir::discover(&dir).is_err());
    }
}
