#![warn(missing_docs)]
//! # thor-data
//!
//! The structured-data substrate: concept-oriented schemas, multi-valued
//! tables with labeled nulls, the integration operators that *create* the
//! data sparsity problem, and sparsity statistics.
//!
//! The paper's setting: "Data integration … typically combines the
//! underlying datasets with operators that allow for partial matches,
//! such as outer join or full disjunction. The consequence, however, is
//! the generation of a large number of missing values (a.k.a. labeled
//! nulls, denoted by ⊥)". This crate implements:
//!
//! * [`schema`] — concepts `C`, the subject concept `C*`, schemas `𝒞`;
//! * [`table`] — tables `R` whose rows have a single-valued subject and
//!   multi-valued cells for every other concept, with ⊥ as the empty
//!   cell;
//! * [`integrate`] — full outer join and (star-schema) full disjunction
//!   over partial sources, producing the sparse integrated table;
//! * [`csv`] — plain-text serialization for artifacts;
//! * [`corpus`] — streaming corpus discovery (sorted ids, no document
//!   bodies in memory) for out-of-core enrichment;
//! * [`stats`] — sparsity measurements (the "15% of the values" figure).

pub mod corpus;
pub mod csv;
pub mod integrate;
pub mod ops;
pub mod schema;
pub mod stats;
pub mod table;

pub use corpus::CorpusDir;
pub use csv::{from_csv, from_csv_lenient, to_csv, CsvError, LenientCsv, SkippedRow};
pub use integrate::{full_disjunction, outer_join};
pub use ops::{
    added_values, check_fd, project, rename_concept, select, FdViolation, FunctionalDependency,
};
pub use schema::{Concept, Schema};
pub use stats::{sparsity, SparsityReport};
pub use table::{Cell, Row, Table};
