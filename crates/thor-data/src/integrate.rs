//! Integration operators: full outer join and full disjunction.
//!
//! These operators are what *generate* the sparsity THOR mitigates: each
//! source covers different subject instances and different concepts, so
//! combining them "with operators that allow for partial matches"
//! produces rows full of ⊥.
//!
//! For concept-oriented (star) schemas keyed by a shared subject concept,
//! the full disjunction of n sources coincides with the n-way full outer
//! join on the subject key: every subject instance appearing in any
//! source yields one maximal combined row. We implement the binary
//! [`outer_join`] and the n-ary [`full_disjunction`] on top of the same
//! merge kernel.

use crate::table::Table;

/// Merge `src` into `dst` (both keyed by the same subject concept):
/// union of rows by subject, union of multi-values per concept.
fn merge_into(dst: &mut Table, src: &Table) {
    for i in 0..src.len() {
        let subject = src.subject_of(i).to_string();
        let ri = dst.row_for_subject(&subject);
        for (ci, concept) in src.schema().concepts().iter().enumerate() {
            if ci == src.schema().subject_index() {
                continue;
            }
            let dst_ci = dst
                .schema()
                .index_of(concept.name())
                .expect("destination schema is a union of source schemas");
            let row = dst.row_mut(ri);
            for v in src.rows()[i].cell(ci).values() {
                row.cell_mut(dst_ci).insert(v);
            }
        }
    }
}

/// Full outer join of two tables on their (shared) subject concept.
///
/// The result schema is the union of the input schemas; every subject
/// instance of either input appears exactly once; unmatched concepts are
/// labeled nulls.
///
/// # Panics
/// If the subject concepts differ.
pub fn outer_join(left: &Table, right: &Table) -> Table {
    let schema = left.schema().union(right.schema());
    let mut out = Table::new(schema);
    merge_into(&mut out, left);
    merge_into(&mut out, right);
    out
}

/// Full disjunction of any number of sources sharing a subject concept.
/// With zero sources the call panics (no schema to produce).
///
/// # Panics
/// If `sources` is empty or subjects differ.
pub fn full_disjunction(sources: &[&Table]) -> Table {
    assert!(
        !sources.is_empty(),
        "full disjunction needs at least one source"
    );
    let mut schema = sources[0].schema().clone();
    for s in &sources[1..] {
        schema = schema.union(s.schema());
    }
    let mut out = Table::new(schema);
    for s in sources {
        merge_into(&mut out, s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn source(concepts: &[&str], rows: &[(&str, &[(&str, &str)])]) -> Table {
        let schema = Schema::new(concepts.iter().copied(), concepts[0]);
        let mut t = Table::new(schema);
        for (subject, fills) in rows {
            t.row_for_subject(subject);
            for (concept, value) in *fills {
                t.fill_slot(subject, concept, value);
            }
        }
        t
    }

    #[test]
    fn outer_join_unions_subjects_and_schemas() {
        // The Fig. 1 scenario: D1 and D2 both contain `Disease` but
        // different instances and different concepts.
        let d1 = source(
            &["Disease", "Anatomy"],
            &[
                ("Acoustic Neuroma", &[("Anatomy", "nervous system")]),
                ("Acne", &[("Anatomy", "skin")]),
            ],
        );
        let d2 = source(
            &["Disease", "Complication"],
            &[
                ("Tuberculosis", &[("Complication", "empyema")]),
                ("Acne", &[("Complication", "skin cancer")]),
            ],
        );
        let joined = outer_join(&d1, &d2);
        assert_eq!(joined.len(), 3);
        let names: Vec<&str> = joined
            .schema()
            .concepts()
            .iter()
            .map(|c| c.name())
            .collect();
        assert_eq!(names, ["Disease", "Anatomy", "Complication"]);

        // Acne matched in both sources: both concepts filled.
        let acne = joined.get_row("Acne").unwrap();
        assert!(!acne.cell(1).is_null());
        assert!(!acne.cell(2).is_null());
        // Acoustic Neuroma appears only in D1: Complication is ⊥.
        let an = joined.get_row("Acoustic Neuroma").unwrap();
        assert!(!an.cell(1).is_null());
        assert!(an.cell(2).is_null());
        // Tuberculosis appears only in D2: Anatomy is ⊥.
        let tb = joined.get_row("Tuberculosis").unwrap();
        assert!(tb.cell(1).is_null());
        assert!(!tb.cell(2).is_null());
    }

    #[test]
    fn outer_join_merges_multivalues() {
        let a = source(&["Disease", "Anatomy"], &[("TB", &[("Anatomy", "lungs")])]);
        let b = source(&["Disease", "Anatomy"], &[("TB", &[("Anatomy", "pleura")])]);
        let j = outer_join(&a, &b);
        assert_eq!(j.len(), 1);
        assert_eq!(j.column_values("Anatomy"), ["lungs", "pleura"]);
    }

    #[test]
    fn outer_join_idempotent_on_duplicates() {
        let a = source(&["Disease", "Anatomy"], &[("TB", &[("Anatomy", "lungs")])]);
        let j = outer_join(&a, &a);
        assert_eq!(j.len(), 1);
        assert_eq!(j.column_values("Anatomy"), ["lungs"]);
    }

    #[test]
    fn full_disjunction_many_sources() {
        let sources: Vec<Table> = (0..5)
            .map(|i| {
                let concept = format!("C{i}");
                let schema = Schema::new(vec!["Disease".to_string(), concept.clone()], "Disease");
                let mut t = Table::new(schema);
                t.fill_slot(&format!("D{i}"), &concept, "v");
                t.fill_slot("Shared", &concept, &format!("v{i}"));
                t
            })
            .collect();
        let refs: Vec<&Table> = sources.iter().collect();
        let fd = full_disjunction(&refs);
        // 5 distinct subjects + the shared one.
        assert_eq!(fd.len(), 6);
        assert_eq!(fd.schema().arity(), 6);
        // The shared subject has every concept filled; the others have
        // exactly one non-null slot.
        let shared = fd.get_row("Shared").unwrap();
        let filled = shared.cells().iter().filter(|c| !c.is_null()).count();
        assert_eq!(filled, 6);
        let d0 = fd.get_row("D0").unwrap();
        let filled = d0.cells().iter().filter(|c| !c.is_null()).count();
        assert_eq!(filled, 2); // subject + C0
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn full_disjunction_empty_panics() {
        full_disjunction(&[]);
    }

    #[test]
    fn binary_fd_equals_outer_join() {
        let a = source(
            &["Disease", "Anatomy"],
            &[
                ("TB", &[("Anatomy", "lungs")]),
                ("Acne", &[("Anatomy", "skin")]),
            ],
        );
        let b = source(
            &["Disease", "Complication"],
            &[("TB", &[("Complication", "empyema")])],
        );
        let oj = outer_join(&a, &b);
        let fd = full_disjunction(&[&a, &b]);
        assert_eq!(oj.len(), fd.len());
        for i in 0..oj.len() {
            let s = oj.subject_of(i);
            assert_eq!(oj.get_row(s).unwrap(), fd.get_row(s).unwrap());
        }
    }
}
