//! Property tests for the structured-data substrate: integration
//! operators and CSV serialization.

use proptest::prelude::*;

use thor_data::csv::{from_csv, to_csv};
use thor_data::{full_disjunction, outer_join, sparsity, Schema, Table};

/// Strategy: a small table over a fixed concept universe.
fn arb_table(concepts: &'static [&'static str]) -> impl Strategy<Value = Table> {
    // Each fill: (subject idx, concept idx (non-zero), value idx).
    prop::collection::vec((0usize..5, 1usize..3, 0usize..6), 0..20).prop_map(move |fills| {
        let mut t = Table::new(Schema::new(concepts.iter().copied(), concepts[0]));
        for (s, c, v) in fills {
            let c = c.min(concepts.len() - 1);
            t.fill_slot(&format!("subject{s}"), concepts[c], &format!("value{v}"));
        }
        t
    })
}

fn table_fingerprint(t: &Table) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        let subject = t.subject_of(i).to_string();
        for (ci, concept) in t.schema().concepts().iter().enumerate() {
            for v in t.rows()[i].cell(ci).values() {
                out.push((subject.clone(), concept.key(), v.to_string()));
            }
        }
    }
    out.sort();
    out
}

const CONCEPTS: &[&str] = &["Disease", "Anatomy", "Complication"];

proptest! {
    /// Outer join is commutative up to row order.
    #[test]
    fn outer_join_commutative(a in arb_table(CONCEPTS), b in arb_table(CONCEPTS)) {
        let ab = outer_join(&a, &b);
        let ba = outer_join(&b, &a);
        prop_assert_eq!(table_fingerprint(&ab), table_fingerprint(&ba));
    }

    /// Joining a table with itself changes nothing.
    #[test]
    fn outer_join_idempotent(a in arb_table(CONCEPTS)) {
        let aa = outer_join(&a, &a);
        prop_assert_eq!(table_fingerprint(&aa), table_fingerprint(&a));
    }

    /// n-ary full disjunction equals a left fold of binary outer joins.
    #[test]
    fn full_disjunction_equals_fold(
        a in arb_table(CONCEPTS),
        b in arb_table(CONCEPTS),
        c in arb_table(CONCEPTS),
    ) {
        let fd = full_disjunction(&[&a, &b, &c]);
        let folded = outer_join(&outer_join(&a, &b), &c);
        prop_assert_eq!(table_fingerprint(&fd), table_fingerprint(&folded));
    }

    /// Every value of every input survives integration.
    #[test]
    fn integration_is_lossless(a in arb_table(CONCEPTS), b in arb_table(CONCEPTS)) {
        let joined = outer_join(&a, &b);
        let joined_fp = table_fingerprint(&joined);
        for source in [&a, &b] {
            for item in table_fingerprint(source) {
                prop_assert!(joined_fp.contains(&item), "lost {item:?}");
            }
        }
    }

    /// Sparsity is a ratio in [0, 1] and consistent with its counts.
    #[test]
    fn sparsity_consistent(a in arb_table(CONCEPTS)) {
        let r = sparsity(&a);
        prop_assert!((0.0..=1.0).contains(&r.ratio));
        prop_assert!(r.missing_slots <= r.total_slots);
        let per_concept_missing: usize = r.per_concept.iter().map(|(_, m, _)| m).sum();
        prop_assert_eq!(per_concept_missing, r.missing_slots);
    }

    /// CSV round-trips every table (values here avoid the multi-value
    /// separator by construction).
    #[test]
    fn csv_round_trip(a in arb_table(CONCEPTS)) {
        // Empty tables round-trip to empty tables.
        let csv = to_csv(&a);
        let back = from_csv(&csv).expect("parse");
        prop_assert_eq!(table_fingerprint(&back), table_fingerprint(&a));
    }
}
