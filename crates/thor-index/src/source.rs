//! The trait unifying every candidate-generation engine.

use crate::entity::CandidateEntity;

/// A source of candidate entities for a phrase.
///
/// Implemented by the fine-tuned semantic matcher, the Aho–Corasick
/// dictionary baseline, and the perceptron tagger baseline, so the
/// pipeline's extraction step and the experiment harness drive one
/// engine surface regardless of which system generates candidates.
///
/// Implementations must be deterministic: the same phrase (and anchor
/// decisions) must always yield the same candidate list in the same
/// order — the pipeline's cross-thread determinism and the phrase
/// cache both rely on it.
pub trait CandidateSource {
    /// Short identifier for metrics and reporting (e.g. `"semantic"`,
    /// `"dictionary"`, `"tagger"`).
    fn source_name(&self) -> &str;

    /// Candidate entities for `phrase`, considering only subphrases in
    /// which at least one word satisfies `anchor` (the pipeline passes
    /// a nominality test).
    fn candidates_anchored(
        &self,
        phrase: &str,
        anchor: &dyn Fn(&str) -> bool,
    ) -> Vec<CandidateEntity>;

    /// Candidate entities for `phrase` with no anchor restriction.
    fn candidates(&self, phrase: &str) -> Vec<CandidateEntity> {
        self.candidates_anchored(phrase, &|_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy source: every word of the phrase becomes a candidate when
    /// anchored.
    struct EveryWord;

    impl CandidateSource for EveryWord {
        fn source_name(&self) -> &str {
            "every-word"
        }

        fn candidates_anchored(
            &self,
            phrase: &str,
            anchor: &dyn Fn(&str) -> bool,
        ) -> Vec<CandidateEntity> {
            phrase
                .split_whitespace()
                .filter(|w| anchor(w))
                .map(|w| CandidateEntity {
                    phrase: w.to_string(),
                    concept: "Word".to_string(),
                    matched_instance: w.to_string(),
                    semantic_score: 1.0,
                    cluster_score: 1.0,
                })
                .collect()
        }
    }

    #[test]
    fn default_candidates_uses_permissive_anchor() {
        let src = EveryWord;
        assert_eq!(src.candidates("a b c").len(), 3);
        assert_eq!(src.candidates_anchored("a b c", &|w| w == "b").len(), 1);
        assert_eq!(src.source_name(), "every-word");
    }

    #[test]
    fn trait_object_usable() {
        let src: &dyn CandidateSource = &EveryWord;
        assert_eq!(src.candidates("x y").len(), 2);
    }
}
