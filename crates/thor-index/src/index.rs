//! Structure-of-arrays vector index over concept representatives.
//!
//! The index is an immutable snapshot built once per fine-tune: all
//! representative vectors live in one contiguous `f32` buffer, rows
//! grouped by concept with seeds first, and every row's L2 norm is
//! precomputed. A query is scored with a single fused pass per concept
//! — one dot product per row against a flat slice — which removes the
//! per-pair norm recomputation and `Vector` indirection of the
//! brute-force scan while producing bit-identical similarity values
//! (same `f64` accumulation order over the same `f32` bits).

use std::cmp::Ordering;

use thor_fault::FrozenSlice;

/// One concept's slice of the row buffer.
#[derive(Debug, Clone)]
struct ConceptEntry {
    /// Concept name (display form).
    name: String,
    /// First row index.
    start: usize,
    /// Number of representative rows (seeds first).
    rows: usize,
    /// The first `seed_rows` rows are seed instances; `c_m` is chosen
    /// among them.
    seed_rows: usize,
}

/// Per-concept similarity scores from one fused scan of the index.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptScores<'a> {
    /// Concept position in the index (stable across scans).
    pub concept: usize,
    /// Concept name (display form).
    pub name: &'a str,
    /// Highest cosine similarity between the query and any row of the
    /// concept; `None` when the concept has no rows.
    pub max: Option<f64>,
    /// Mean cosine similarity between the query and the concept's rows;
    /// `None` when the concept has no rows, `Some(0.0)` for a
    /// zero-norm query.
    pub mean: Option<f64>,
}

/// Immutable structure-of-arrays index of concept representative
/// vectors. Build with [`VectorIndexBuilder`]; query with
/// [`VectorIndex::scan`] and [`VectorIndex::best_seed`].
#[derive(Debug, Clone)]
pub struct VectorIndex {
    dim: usize,
    /// Row-major `rows × dim` buffer, concept-major. Owned after a
    /// build; a zero-copy view into the artifact after a mapped load.
    data: FrozenSlice<f32>,
    /// Precomputed L2 norm per row (f64, same formula as
    /// `thor_embed::Vector::norm`).
    norms: FrozenSlice<f64>,
    /// Cached element-wise `f32` row sums, one `dim`-length row per
    /// concept (accumulated in row order), for O(d) mean-similarity
    /// queries.
    rep_sums: FrozenSlice<f32>,
    /// Word / instance label per row (normalized form).
    words: Vec<String>,
    concepts: Vec<ConceptEntry>,
}

/// Incremental builder for [`VectorIndex`]; concepts are appended in
/// the order they should be scanned.
#[derive(Debug)]
pub struct VectorIndexBuilder {
    dim: usize,
    data: Vec<f32>,
    norms: Vec<f64>,
    rep_sums: Vec<f32>,
    words: Vec<String>,
    concepts: Vec<ConceptEntry>,
}

impl VectorIndexBuilder {
    /// An empty builder for vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            data: Vec::new(),
            norms: Vec::new(),
            rep_sums: Vec::new(),
            words: Vec::new(),
            concepts: Vec::new(),
        }
    }

    /// Append one concept's representative rows. The first `seed_rows`
    /// entries of `rows` must be the concept's seed instances (the rows
    /// eligible as `c_m`). Panics on a dimension mismatch or when
    /// `seed_rows` exceeds the row count.
    pub fn add_concept<'a>(
        &mut self,
        name: &str,
        seed_rows: usize,
        rows: impl IntoIterator<Item = (&'a str, &'a [f32])>,
    ) -> &mut Self {
        let start = self.words.len();
        let mut rep_sum = vec![0.0f32; self.dim];
        for (word, vector) in rows {
            assert_eq!(vector.len(), self.dim, "row dimension mismatch");
            self.data.extend_from_slice(vector);
            self.norms.push(slice_norm(vector));
            self.words.push(word.to_string());
            for (acc, &x) in rep_sum.iter_mut().zip(vector) {
                *acc += x;
            }
        }
        let rows = self.words.len() - start;
        assert!(seed_rows <= rows, "seed_rows {seed_rows} > rows {rows}");
        self.rep_sums.extend_from_slice(&rep_sum);
        self.concepts.push(ConceptEntry {
            name: name.to_string(),
            start,
            rows,
            seed_rows,
        });
        self
    }

    /// Append concept `concept` of `src` verbatim: the rows, norms,
    /// labels and cached rep-sum are block-copied bit-for-bit, so a
    /// delta apply can reuse untouched concepts without rescanning
    /// them. Panics on a dimension mismatch.
    pub fn add_concept_from(&mut self, src: &VectorIndex, concept: usize) -> &mut Self {
        assert_eq!(src.dim(), self.dim, "index dimension mismatch");
        let entry = &src.concepts[concept];
        let start = self.words.len();
        self.data.extend_from_slice(
            &src.data[entry.start * self.dim..(entry.start + entry.rows) * self.dim],
        );
        self.norms
            .extend_from_slice(&src.norms[entry.start..entry.start + entry.rows]);
        self.words.extend(
            src.words[entry.start..entry.start + entry.rows]
                .iter()
                .cloned(),
        );
        self.rep_sums.extend_from_slice(src.rep_sum(concept));
        self.concepts.push(ConceptEntry {
            name: entry.name.clone(),
            start,
            rows: entry.rows,
            seed_rows: entry.seed_rows,
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> VectorIndex {
        VectorIndex {
            dim: self.dim,
            data: self.data.into(),
            norms: self.norms.into(),
            rep_sums: self.rep_sums.into(),
            words: self.words,
            concepts: self.concepts,
        }
    }
}

impl VectorIndex {
    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Total representative rows across all concepts.
    pub fn row_count(&self) -> usize {
        self.words.len()
    }

    /// Name of concept `concept`.
    pub fn concept_name(&self, concept: usize) -> &str {
        &self.concepts[concept].name
    }

    /// Seed-row count of concept `concept`.
    pub fn seed_rows(&self, concept: usize) -> usize {
        self.concepts[concept].seed_rows
    }

    /// Word / instance label of row `row` (normalized form).
    pub fn row_word(&self, row: usize) -> &str {
        &self.words[row]
    }

    /// The raw row buffer (`row_count × dim`, row-major), for artifact
    /// serialization.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The precomputed per-row L2 norms, for artifact serialization.
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// The cached per-concept row sums (`concept_count × dim`,
    /// row-major), for artifact serialization.
    pub fn rep_sums(&self) -> &[f32] {
        &self.rep_sums
    }

    /// Per-concept layout `(name, start, rows, seed_rows)` in scan
    /// order, for artifact serialization.
    pub fn concept_layout(&self) -> impl Iterator<Item = (&str, usize, usize, usize)> {
        self.concepts
            .iter()
            .map(|c| (c.name.as_str(), c.start, c.rows, c.seed_rows))
    }

    /// Reassemble an index from its flat arrays (the artifact load
    /// path). The slices may be zero-copy views into a mapped file;
    /// every layout invariant the scan loops rely on is validated here
    /// so corrupt metadata yields a named error instead of a panic.
    pub fn from_parts(
        dim: usize,
        data: FrozenSlice<f32>,
        norms: FrozenSlice<f64>,
        rep_sums: FrozenSlice<f32>,
        words: Vec<String>,
        concepts: Vec<(String, usize, usize, usize)>,
    ) -> Result<Self, String> {
        let rows = words.len();
        if data.len() != rows * dim {
            return Err(format!(
                "index row buffer has {} floats, expected {rows} rows x {dim} dims",
                data.len()
            ));
        }
        if norms.len() != rows {
            return Err(format!("index has {} norms for {rows} rows", norms.len()));
        }
        if rep_sums.len() != concepts.len() * dim {
            return Err(format!(
                "index rep-sum buffer has {} floats, expected {} concepts x {dim} dims",
                rep_sums.len(),
                concepts.len()
            ));
        }
        let mut next = 0usize;
        for (name, start, crows, seed_rows) in &concepts {
            if *start != next || start.checked_add(*crows).is_none_or(|end| end > rows) {
                return Err(format!(
                    "concept `{name}` rows {start}..{} do not tile the {rows}-row buffer",
                    start.saturating_add(*crows)
                ));
            }
            if seed_rows > crows {
                return Err(format!(
                    "concept `{name}` claims {seed_rows} seed rows of {crows}"
                ));
            }
            next = start + crows;
        }
        if next != rows {
            return Err(format!(
                "concepts cover {next} rows but the buffer has {rows}"
            ));
        }
        Ok(Self {
            dim,
            data,
            norms,
            rep_sums,
            words,
            concepts: concepts
                .into_iter()
                .map(|(name, start, rows, seed_rows)| ConceptEntry {
                    name,
                    start,
                    rows,
                    seed_rows,
                })
                .collect(),
        })
    }

    /// Number of representative rows of concept `concept`.
    pub fn concept_rows(&self, concept: usize) -> usize {
        self.concepts[concept].rows
    }

    /// Layout of concept `concept` as `(start, rows, seed_rows)`, for
    /// the pruning structures that address rows globally.
    pub(crate) fn concept_range(&self, concept: usize) -> (usize, usize, usize) {
        let entry = &self.concepts[concept];
        (entry.start, entry.rows, entry.seed_rows)
    }

    /// Precomputed L2 norm of row `row`.
    pub(crate) fn row_norm(&self, row: usize) -> f64 {
        self.norms[row]
    }

    pub(crate) fn rep_sum(&self, concept: usize) -> &[f32] {
        &self.rep_sums[concept * self.dim..(concept + 1) * self.dim]
    }

    pub(crate) fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.dim..(row + 1) * self.dim]
    }

    /// Mean cosine similarity between `query` and concept `concept`'s
    /// rows, bit-identical to the `mean` field produced by
    /// [`VectorIndex::scan`]: `None` when the concept has no rows,
    /// `Some(0.0)` for a zero-norm query.
    pub fn concept_mean(&self, concept: usize, query: &[f32], query_norm: f64) -> Option<f64> {
        let entry = &self.concepts[concept];
        if entry.rows == 0 {
            None
        } else if query_norm == 0.0 {
            Some(0.0)
        } else {
            Some(dot(query, self.rep_sum(concept)) / (query_norm * entry.rows as f64))
        }
    }

    /// Cosine similarity between `query` (with precomputed norm
    /// `query_norm`) and row `row`; 0.0 when either norm is zero.
    pub(crate) fn row_cosine(&self, row: usize, query: &[f32], query_norm: f64) -> f64 {
        let rn = self.norms[row];
        if query_norm == 0.0 || rn == 0.0 {
            return 0.0;
        }
        (dot(query, self.row(row)) / (query_norm * rn)).clamp(-1.0, 1.0)
    }

    /// Score `query` against every concept in one fused pass each:
    /// the per-concept max over rows and the O(d) mean via the cached
    /// row sum. `query_norm` must be `query`'s L2 norm (callers compute
    /// it once per query instead of once per pair).
    pub fn scan<'a>(
        &'a self,
        query: &'a [f32],
        query_norm: f64,
    ) -> impl Iterator<Item = ConceptScores<'a>> + 'a {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        self.concepts.iter().enumerate().map(move |(ci, entry)| {
            let mut max: Option<f64> = None;
            for row in entry.start..entry.start + entry.rows {
                let sim = self.row_cosine(row, query, query_norm);
                max = Some(max.map_or(sim, |a: f64| a.max(sim)));
            }
            let mean = if entry.rows == 0 {
                None
            } else if query_norm == 0.0 {
                Some(0.0)
            } else {
                Some(dot(query, self.rep_sum(ci)) / (query_norm * entry.rows as f64))
            };
            ConceptScores {
                concept: ci,
                name: &entry.name,
                max,
                mean,
            }
        })
    }

    /// The seed row of concept `concept` most similar to `query`:
    /// `(instance, sim)`. Ties prefer the lexicographically smaller
    /// instance. `None` when the concept has no seed rows.
    pub fn best_seed(&self, concept: usize, query: &[f32], query_norm: f64) -> Option<(&str, f64)> {
        let entry = &self.concepts[concept];
        let mut best: Option<(&str, f64)> = None;
        for row in entry.start..entry.start + entry.seed_rows {
            let word = self.words[row].as_str();
            let sim = self.row_cosine(row, query, query_norm);
            let replace = match best {
                None => true,
                Some((bw, bs)) => sim.total_cmp(&bs).then_with(|| bw.cmp(word)) != Ordering::Less,
            };
            if replace {
                best = Some((word, sim));
            }
        }
        best
    }
}

/// Dot product of two equal-length slices, accumulated in `f64` in
/// element order (matches `thor_embed::Vector::dot`).
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// L2 norm of a slice (matches `thor_embed::Vector::norm`).
pub(crate) fn slice_norm(v: &[f32]) -> f64 {
    v.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine_ref(a: &[f32], b: &[f32]) -> f64 {
        let (na, nb) = (slice_norm(a), slice_norm(b));
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }

    fn sample_index() -> VectorIndex {
        let mut b = VectorIndexBuilder::new(3);
        b.add_concept(
            "A",
            2,
            [
                ("a1", &[1.0f32, 0.0, 0.0][..]),
                ("a2", &[0.6, 0.8, 0.0][..]),
                ("ax", &[0.0, 1.0, 0.0][..]),
            ],
        );
        b.add_concept("B", 1, [("b1", &[0.0f32, 0.0, 2.0][..])]);
        b.add_concept("Empty", 0, []);
        b.build()
    }

    #[test]
    fn layout_accessors() {
        let ix = sample_index();
        assert_eq!(ix.dim(), 3);
        assert_eq!(ix.concept_count(), 3);
        assert_eq!(ix.row_count(), 4);
        assert_eq!(ix.concept_name(0), "A");
        assert_eq!(ix.seed_rows(0), 2);
        assert_eq!(ix.seed_rows(2), 0);
    }

    #[test]
    fn scan_matches_reference_cosines() {
        let ix = sample_index();
        let q = [0.5f32, 0.5, 0.1];
        let qn = slice_norm(&q);
        let scores: Vec<ConceptScores> = ix.scan(&q, qn).collect();

        let a_rows: [&[f32]; 3] = [&[1.0, 0.0, 0.0], &[0.6, 0.8, 0.0], &[0.0, 1.0, 0.0]];
        let max_a = a_rows
            .iter()
            .map(|r| cosine_ref(&q, r))
            .fold(f64::MIN, f64::max);
        let mean_a = a_rows.iter().map(|r| cosine_ref(&q, r)).sum::<f64>() / 3.0;
        assert_eq!(scores[0].max, Some(max_a));
        assert!((scores[0].mean.unwrap() - mean_a).abs() < 1e-6);

        assert_eq!(scores[1].name, "B");
        assert_eq!(
            scores[1].max,
            Some(cosine_ref(&q, &[0.0, 0.0, 2.0])),
            "non-unit rows score via their precomputed norm"
        );

        assert_eq!(scores[2].max, None);
        assert_eq!(scores[2].mean, None);
    }

    #[test]
    fn zero_query_scores_zero() {
        let ix = sample_index();
        let q = [0.0f32; 3];
        let scores: Vec<ConceptScores> = ix.scan(&q, slice_norm(&q)).collect();
        assert_eq!(scores[0].max, Some(0.0));
        assert_eq!(scores[0].mean, Some(0.0));
        assert!(ix.best_seed(0, &q, 0.0).is_some());
    }

    #[test]
    fn best_seed_only_considers_seed_prefix() {
        let ix = sample_index();
        // Query aligned with "ax" (an expanded rep, not a seed): the
        // best *seed* must still come from the seed prefix.
        let q = [0.0f32, 1.0, 0.0];
        let qn = slice_norm(&q);
        let (word, sim) = ix.best_seed(0, &q, qn).unwrap();
        assert_eq!(word, "a2");
        assert!((sim - 0.8).abs() < 1e-6);
        assert!(ix.best_seed(2, &q, qn).is_none());
    }

    #[test]
    fn best_seed_tie_prefers_lexicographically_smaller() {
        let mut b = VectorIndexBuilder::new(2);
        let v: &[f32] = &[1.0, 0.0];
        b.add_concept("C", 3, [("zeta", v), ("beta", v), ("gamma", v)]);
        let ix = b.build();
        let (word, _) = ix.best_seed(0, &[2.0, 0.0], 2.0).unwrap();
        assert_eq!(word, "beta");
    }

    #[test]
    fn from_parts_round_trip_scans_identically() {
        let ix = sample_index();
        let rebuilt = VectorIndex::from_parts(
            ix.dim(),
            ix.data().to_vec().into(),
            ix.norms().to_vec().into(),
            ix.rep_sums().to_vec().into(),
            (0..ix.row_count())
                .map(|r| ix.row_word(r).to_string())
                .collect(),
            ix.concept_layout()
                .map(|(n, s, r, k)| (n.to_string(), s, r, k))
                .collect(),
        )
        .expect("valid parts");
        let q = [0.4f32, 0.3, 0.2];
        let qn = slice_norm(&q);
        let a: Vec<ConceptScores> = ix.scan(&q, qn).collect();
        let b: Vec<ConceptScores> = rebuilt.scan(&q, qn).collect();
        assert_eq!(a, b);
        assert_eq!(ix.best_seed(0, &q, qn), rebuilt.best_seed(0, &q, qn));
    }

    #[test]
    fn from_parts_rejects_inconsistent_layout() {
        let ix = sample_index();
        let words: Vec<String> = (0..ix.row_count())
            .map(|r| ix.row_word(r).to_string())
            .collect();
        let concepts: Vec<(String, usize, usize, usize)> = ix
            .concept_layout()
            .map(|(n, s, r, k)| (n.to_string(), s, r, k))
            .collect();
        let build = |data: Vec<f32>,
                     norms: Vec<f64>,
                     reps: Vec<f32>,
                     cs: Vec<(String, usize, usize, usize)>| {
            VectorIndex::from_parts(3, data.into(), norms.into(), reps.into(), words.clone(), cs)
        };
        let (d, n, r) = (
            ix.data().to_vec(),
            ix.norms().to_vec(),
            ix.rep_sums().to_vec(),
        );
        assert!(build(
            d[..d.len() - 1].to_vec(),
            n.clone(),
            r.clone(),
            concepts.clone()
        )
        .is_err());
        assert!(build(
            d.clone(),
            n[..n.len() - 1].to_vec(),
            r.clone(),
            concepts.clone()
        )
        .is_err());
        assert!(build(
            d.clone(),
            n.clone(),
            r[..r.len() - 1].to_vec(),
            concepts.clone()
        )
        .is_err());
        let mut gap = concepts.clone();
        gap[1].1 += 1;
        assert!(build(d.clone(), n.clone(), r.clone(), gap).is_err());
        let mut bad_seeds = concepts.clone();
        bad_seeds[0].3 = 99;
        assert!(build(d.clone(), n.clone(), r.clone(), bad_seeds).is_err());
        let mut short = concepts.clone();
        short.pop();
        assert!(build(d, n, r, short).is_err());
    }

    #[test]
    fn add_concept_from_block_copies_bit_identically() {
        let ix = sample_index();
        // Interleave block-copied concepts with a freshly scanned one.
        let mut b = VectorIndexBuilder::new(3);
        b.add_concept_from(&ix, 0);
        b.add_concept("New", 1, [("n1", &[0.3f32, 0.3, 0.3][..])]);
        b.add_concept_from(&ix, 2);
        let out = b.build();

        let mut fresh = VectorIndexBuilder::new(3);
        fresh.add_concept(
            "A",
            2,
            [
                ("a1", &[1.0f32, 0.0, 0.0][..]),
                ("a2", &[0.6, 0.8, 0.0][..]),
                ("ax", &[0.0, 1.0, 0.0][..]),
            ],
        );
        fresh.add_concept("New", 1, [("n1", &[0.3f32, 0.3, 0.3][..])]);
        fresh.add_concept("Empty", 0, []);
        let fresh = fresh.build();

        assert_eq!(out.data(), fresh.data());
        assert_eq!(out.norms(), fresh.norms());
        assert_eq!(out.rep_sums(), fresh.rep_sums());
        assert_eq!(
            out.concept_layout().collect::<Vec<_>>(),
            fresh.concept_layout().collect::<Vec<_>>()
        );
        assert_eq!(
            (0..out.row_count())
                .map(|r| out.row_word(r))
                .collect::<Vec<_>>(),
            (0..fresh.row_count())
                .map(|r| fresh.row_word(r))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn builder_rejects_wrong_dimension() {
        let mut b = VectorIndexBuilder::new(3);
        b.add_concept("A", 0, [("x", &[1.0f32, 2.0][..])]);
    }
}
