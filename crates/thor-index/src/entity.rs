//! The candidate-entity record shared by every [`crate::CandidateSource`].

/// A candidate entity produced by candidate generation: a subphrase of
/// the input noun phrase, the concept it matched, and the best-matching
/// seed instance `c_m` with its semantic score.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEntity {
    /// The matched subphrase `e.p` (normalized).
    pub phrase: String,
    /// The assigned concept `e.C`.
    pub concept: String,
    /// The best-matching seed instance `c_m` (normalized).
    pub matched_instance: String,
    /// Semantic similarity between `e.p` and `c_m` (`e.score_s`).
    pub semantic_score: f64,
    /// Mean pairwise similarity to the concept cluster (ranking score).
    pub cluster_score: f64,
}
