//! Exact-match dictionary index: the Aho–Corasick half of a prepared
//! engine bundle.
//!
//! The paper's Baseline matches table instances against document text
//! with substring search. That automaton is pure build-time state — it
//! depends only on the (concept, instance) pairs of the integrated
//! table — so it belongs next to [`VectorIndex`](crate::VectorIndex)
//! in the candidate-generation layer, where the prepared engine can
//! freeze it once and share it across every serve call. The
//! `DictionaryBaseline` in `thor-baselines` wraps this index and adds
//! the table-driven extraction protocol on top.

use thor_automata::{AhoCorasick, AhoCorasickBuilder};
use thor_text::normalize_phrase;

use crate::entity::CandidateEntity;
use crate::source::CandidateSource;

/// Aho–Corasick automaton over normalized (concept, instance) patterns.
#[derive(Debug)]
pub struct DictionaryIndex {
    automaton: AhoCorasick,
    /// pattern index → (concept, display phrase).
    patterns: Vec<(String, String)>,
}

impl DictionaryIndex {
    /// Build the index from `(concept, instances)` pairs. Instances are
    /// normalized before insertion; empty-after-normalization instances
    /// are skipped. Pair order is preserved, so identical input yields
    /// an identical automaton.
    pub fn from_concepts<C, I>(concepts: C) -> Self
    where
        C: IntoIterator<Item = (String, I)>,
        I: IntoIterator<Item = String>,
    {
        let mut builder = AhoCorasickBuilder::new().ascii_case_insensitive(true);
        let mut patterns = Vec::new();
        for (concept, instances) in concepts {
            for instance in instances {
                let norm = normalize_phrase(&instance);
                if norm.is_empty() {
                    continue;
                }
                builder.add_pattern(norm.as_bytes());
                patterns.push((concept.clone(), instance));
            }
        }
        Self {
            automaton: builder.build(),
            patterns,
        }
    }

    /// Extend the dictionary to cover `concepts` — the **full** new
    /// `(concept, instances)` list after a delta — without recomputing
    /// the normalization of existing patterns. The old pattern list
    /// must be a subsequence of the new canonical list (deltas only add
    /// instances); additions are positionally inserted so the rebuilt
    /// automaton is byte-identical to [`DictionaryIndex::from_concepts`]
    /// over the merged list.
    pub fn extend<C, I>(&self, concepts: C) -> Result<Self, String>
    where
        C: IntoIterator<Item = (String, I)>,
        I: IntoIterator<Item = String>,
    {
        // The canonical merged pattern list, with normalization computed
        // only where the old list has no matching entry.
        let mut merged: Vec<(String, String)> = Vec::new();
        for (concept, instances) in concepts {
            for instance in instances {
                if normalize_phrase(&instance).is_empty() {
                    continue;
                }
                merged.push((concept.clone(), instance));
            }
        }
        let mut builder = AhoCorasickBuilder::new().ascii_case_insensitive(true);
        for (_, display) in &self.patterns {
            builder.add_pattern(normalize_phrase(display).as_bytes());
        }
        // Invariant: after k merged entries, the builder's first k
        // patterns equal the merged prefix and the rest is the
        // unconsumed old tail, so the next old match is already at
        // position k and each addition is inserted at k.
        let mut old = self.patterns.iter().peekable();
        for (at, (concept, display)) in merged.iter().enumerate() {
            match old.peek() {
                Some((oc, od)) if oc == concept && od == display => {
                    old.next();
                }
                _ => {
                    builder.insert_pattern_at(at, normalize_phrase(display).as_bytes());
                }
            }
        }
        if let Some((oc, od)) = old.next() {
            return Err(format!(
                "dictionary extension drops pattern ({oc}, {od}); deltas may only add instances"
            ));
        }
        Ok(Self {
            automaton: builder.build(),
            patterns: merged,
        })
    }

    /// Reassemble an index from a deserialized automaton and pattern
    /// table (the artifact load path). The automaton's pattern count
    /// must match the table.
    pub fn from_parts(
        automaton: AhoCorasick,
        patterns: Vec<(String, String)>,
    ) -> Result<Self, String> {
        if automaton.pattern_count() != patterns.len() {
            return Err(format!(
                "dictionary automaton has {} patterns but the table lists {}",
                automaton.pattern_count(),
                patterns.len()
            ));
        }
        Ok(Self {
            automaton,
            patterns,
        })
    }

    /// The underlying automaton, for artifact serialization.
    pub fn automaton(&self) -> &AhoCorasick {
        &self.automaton
    }

    /// Number of dictionary patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// The (concept, display instance) pairs backing the automaton, in
    /// pattern order.
    pub fn patterns(&self) -> &[(String, String)] {
        &self.patterns
    }
}

impl CandidateSource for DictionaryIndex {
    fn source_name(&self) -> &str {
        "dictionary"
    }

    /// Exact dictionary occurrences in `phrase`: every word-aligned
    /// automaton match whose words pass `anchor` becomes a candidate
    /// with score 1.0 (exact matching is all-or-nothing).
    fn candidates_anchored(
        &self,
        phrase: &str,
        anchor: &dyn Fn(&str) -> bool,
    ) -> Vec<CandidateEntity> {
        // Match against the normalized phrase so case/punct differences
        // don't break exactness.
        let normalized = normalize_phrase(phrase);
        let mut out = Vec::new();
        for m in self.automaton.find_words(&normalized) {
            let (concept, display) = &self.patterns[m.pattern];
            let matched = normalize_phrase(display);
            if !matched.split_whitespace().any(anchor) {
                continue;
            }
            out.push(CandidateEntity {
                phrase: matched.clone(),
                concept: concept.clone(),
                matched_instance: matched,
                semantic_score: 1.0,
                cluster_score: 1.0,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> DictionaryIndex {
        DictionaryIndex::from_concepts([
            (
                "Disease".to_string(),
                vec!["Tuberculosis".to_string(), "Acne".to_string()],
            ),
            (
                "Anatomy".to_string(),
                vec!["lungs".to_string(), "skin".to_string()],
            ),
        ])
    }

    #[test]
    fn exact_candidates_found_case_insensitively() {
        let idx = index();
        assert_eq!(idx.pattern_count(), 4);
        let found = idx.candidates("TUBERCULOSIS affects the LUNGS");
        assert!(found.iter().any(|c| c.phrase == "tuberculosis"));
        assert!(found.iter().any(|c| c.phrase == "lungs"));
        assert!(found.iter().all(|c| c.semantic_score == 1.0));
    }

    #[test]
    fn anchor_filters_candidates() {
        let idx = index();
        let anchored = idx.candidates_anchored("tuberculosis damages the lungs", &|w| w != "lungs");
        assert!(!anchored.iter().any(|c| c.phrase == "lungs"));
        assert!(anchored.iter().any(|c| c.phrase == "tuberculosis"));
        assert_eq!(idx.source_name(), "dictionary");
    }

    #[test]
    fn extend_matches_fresh_build_over_merged_concepts() {
        // Base: one concept with instances, one concept still empty.
        let base = DictionaryIndex::from_concepts([
            (
                "Disease".to_string(),
                vec!["Tuberculosis".to_string(), "Acne".to_string()],
            ),
            ("Anatomy".to_string(), vec![]),
        ]);
        assert_eq!(base.pattern_count(), 2);
        // Merged state: an instance inserted mid-run, the empty concept
        // gains its first instance, and a brand-new concept is appended.
        let merged = [
            (
                "Disease".to_string(),
                vec![
                    "Tuberculosis".to_string(),
                    "  ".to_string(),
                    "Measles".to_string(),
                    "Acne".to_string(),
                ],
            ),
            ("Anatomy".to_string(), vec!["lungs".to_string()]),
            ("Drug".to_string(), vec!["Aspirin".to_string()]),
        ];
        let extended = base.extend(merged.clone()).expect("additive extension");
        let fresh = DictionaryIndex::from_concepts(merged);
        assert_eq!(extended.patterns(), fresh.patterns());
        assert_eq!(extended.automaton().parts(), fresh.automaton().parts());
    }

    #[test]
    fn extend_rejects_dropped_patterns() {
        let base = index();
        let err = base
            .extend([(
                "Disease".to_string(),
                vec!["Tuberculosis".to_string(), "Acne".to_string()],
            )])
            .unwrap_err();
        assert!(err.contains("drops pattern"), "unexpected error: {err}");
    }

    #[test]
    fn empty_normalized_instances_skipped() {
        let idx = DictionaryIndex::from_concepts([(
            "Anatomy".to_string(),
            vec!["  ".to_string(), "ear".to_string()],
        )]);
        assert_eq!(idx.pattern_count(), 1);
        assert_eq!(idx.patterns()[0].1, "ear");
    }
}
