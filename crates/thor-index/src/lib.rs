#![warn(missing_docs)]
//! # thor-index
//!
//! The shared candidate-generation engine behind THOR's Entity
//! Extraction phase. Every component that turns a phrase into candidate
//! entities — the fine-tuned semantic matcher, the dictionary baseline,
//! the tagger baseline — drives the same three pieces:
//!
//! * [`VectorIndex`] — a structure-of-arrays snapshot of every concept's
//!   representative vectors, built once at fine-tune time: contiguous
//!   `f32` rows grouped by concept with their L2 norms precomputed, so
//!   scoring a query is one fused dot-product pass over a flat slice
//!   instead of per-pair `Vector` traffic.
//! * [`PhraseCache`] — an interning, bounded-LRU cache keyed by
//!   normalized subphrase, shared across an enrichment session so
//!   repeated phrases in a document stream hit cached candidate sets.
//! * [`CandidateSource`] — the trait unifying all candidate producers
//!   behind one call surface, so the pipeline and the experiment
//!   harness are agnostic to which engine generates candidates.
//!
//! The crate is std-only and layout-focused; embedding construction and
//! linguistic normalization stay in `thor-embed` / `thor-text`.

pub mod cache;
pub mod dictionary;
pub mod entity;
pub mod index;
pub mod prune;
pub mod source;

pub use cache::{CacheStats, PhraseCache};
pub use dictionary::DictionaryIndex;
pub use entity::CandidateEntity;
pub use index::{ConceptScores, VectorIndex, VectorIndexBuilder};
pub use prune::{PruneIndex, PruneMode, PruneStats, PruneSummary, QuantQuery};
pub use source::CandidateSource;
pub use thor_automata::AhoCorasick;
