//! Interning bounded-LRU cache keyed by normalized subphrase.
//!
//! Candidate generation is a pure function of the subphrase once a
//! matcher is fine-tuned, so repeated phrases across a document stream
//! can reuse the first scan's result. The cache is shared (`Arc`) by
//! every clone of its owner — one cache per fine-tune, which also makes
//! invalidation automatic: re-fine-tuning builds a fresh matcher and
//! with it a fresh, empty cache.
//!
//! Keys are interned as `Arc<str>` (one allocation per distinct
//! subphrase, shared between the hash map and the LRU slot). Entries
//! are evicted least-recently-used once `capacity` is reached; a
//! capacity of 0 disables the cache entirely (every lookup misses
//! without recording statistics), which the equivalence tests use to
//! compare cached and uncached runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel for "no slot" in the intrusive LRU list.
const NONE: usize = usize::MAX;

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries (0 = disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, bounded, interning LRU cache from normalized phrase
/// to an arbitrary cloneable value. Clones share the same underlying
/// storage and statistics.
#[derive(Debug)]
pub struct PhraseCache<V> {
    shared: Arc<Shared<V>>,
}

#[derive(Debug)]
struct Shared<V> {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    lru: Mutex<Lru<V>>,
}

impl<V> Clone for PhraseCache<V> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<V: Clone> PhraseCache<V> {
    /// A cache holding at most `capacity` entries; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        Self {
            shared: Arc::new(Shared {
                capacity,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                lru: Mutex::new(Lru::new(capacity)),
            }),
        }
    }

    /// Whether lookups can ever hit (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.shared.capacity > 0
    }

    /// Look up `key`, refreshing its recency on a hit. Records a hit or
    /// miss in the statistics; a disabled cache returns `None` without
    /// recording anything.
    pub fn get(&self, key: &str) -> Option<V> {
        if !self.is_enabled() {
            return None;
        }
        let mut lru = self.shared.lru.lock().unwrap();
        match lru.get(key) {
            Some(value) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key → value`, evicting the least recently
    /// used entry when full. No-op on a disabled cache.
    pub fn put(&self, key: &str, value: V) {
        if !self.is_enabled() {
            return;
        }
        self.shared.lru.lock().unwrap().insert(key, value);
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let len = self.shared.lru.lock().unwrap().map.len();
        CacheStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            len,
            capacity: self.shared.capacity,
        }
    }

    /// Drop every entry (statistics are kept).
    pub fn clear(&self) {
        let mut lru = self.shared.lru.lock().unwrap();
        let capacity = lru.capacity;
        *lru = Lru::new(capacity);
    }
}

/// Arena-backed LRU list: slots hold the entries, `prev`/`next` indices
/// form the recency list (head = most recent), and the map points keys
/// at slots. The `Arc<str>` key is shared between map and slot.
#[derive(Debug)]
struct Lru<V> {
    capacity: usize,
    map: HashMap<Arc<str>, usize>,
    slots: Vec<Slot<V>>,
    head: usize,
    tail: usize,
}

#[derive(Debug)]
struct Slot<V> {
    key: Arc<str>,
    value: V,
    prev: usize,
    next: usize,
}

impl<V: Clone> Lru<V> {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::with_capacity(capacity.min(1024)),
            head: NONE,
            tail: NONE,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NONE {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, i: usize) {
        self.slots[i].prev = NONE;
        self.slots[i].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    fn get(&mut self, key: &str) -> Option<V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.detach(i);
            self.attach_front(i);
        }
        Some(self.slots[i].value.clone())
    }

    fn insert(&mut self, key: &str, value: V) {
        if let Some(&i) = self.map.get(key) {
            self.slots[i].value = value;
            if self.head != i {
                self.detach(i);
                self.attach_front(i);
            }
            return;
        }
        if self.map.len() == self.capacity {
            // Evict the least recently used entry, reusing its slot.
            let i = self.tail;
            self.detach(i);
            self.map.remove(&self.slots[i].key);
            let key: Arc<str> = Arc::from(key);
            self.slots[i].key = Arc::clone(&key);
            self.slots[i].value = value;
            self.map.insert(key, i);
            self.attach_front(i);
            return;
        }
        let key: Arc<str> = Arc::from(key);
        let i = self.slots.len();
        self.slots.push(Slot {
            key: Arc::clone(&key),
            value,
            prev: NONE,
            next: NONE,
        });
        self.map.insert(key, i);
        self.attach_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let cache: PhraseCache<u32> = PhraseCache::new(8);
        assert_eq!(cache.get("brain"), None);
        cache.put("brain", 7);
        assert_eq!(cache.get("brain"), Some(7));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache: PhraseCache<u32> = PhraseCache::new(2);
        cache.put("a", 1);
        cache.put("b", 2);
        assert_eq!(cache.get("a"), Some(1)); // refresh "a"
        cache.put("c", 3); // evicts "b"
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(1));
        assert_eq!(cache.get("c"), Some(3));
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn refresh_existing_key_updates_value() {
        let cache: PhraseCache<u32> = PhraseCache::new(2);
        cache.put("a", 1);
        cache.put("b", 2);
        cache.put("a", 10); // refresh, not insert
        cache.put("c", 3); // evicts "b" (LRU), not "a"
        assert_eq!(cache.get("a"), Some(10));
        assert_eq!(cache.get("b"), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache: PhraseCache<u32> = PhraseCache::new(0);
        assert!(!cache.is_enabled());
        cache.put("a", 1);
        assert_eq!(cache.get("a"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 0, 0));
    }

    #[test]
    fn clones_share_storage() {
        let cache: PhraseCache<u32> = PhraseCache::new(4);
        let clone = cache.clone();
        cache.put("a", 1);
        assert_eq!(clone.get("a"), Some(1));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache: PhraseCache<usize> = PhraseCache::new(64);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = cache.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 31 + i) % 80);
                        match c.get(&key) {
                            Some(_) => {}
                            None => c.put(&key, i),
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(stats.len <= 64);
    }

    #[test]
    fn clear_drops_entries_but_keeps_stats() {
        let cache: PhraseCache<u32> = PhraseCache::new(4);
        cache.put("a", 1);
        assert_eq!(cache.get("a"), Some(1));
        cache.clear();
        assert_eq!(cache.get("a"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 0));
    }
}
