//! Sub-linear candidate generation: clustered bound-pruned scans plus
//! an i8-quantized row matrix.
//!
//! The exhaustive [`VectorIndex::scan`] touches every representative
//! row for every query. This module freezes a three-level triage next
//! to the index so the hot paths can skip almost all of that work while
//! staying **bit-identical** to the exhaustive scan in exact mode:
//!
//! 1. **Concept bounds** — one centroid+radius ball per concept over
//!    its normalized rows. A concept whose bound cannot beat the
//!    admission threshold (τ or the running argmax floor) is skipped
//!    whole, O(d) instead of O(rows·d).
//! 2. **Cluster bounds** — a deterministic k-means (vendored SplitMix64
//!    seeding, fixed iteration count) over each concept's seed prefix
//!    and expansion suffix, stored as centroid+radius balls over row
//!    blocks. Surviving concepts prune at block granularity.
//! 3. **Quantized rescore** (opt-in `approx` mode) — an i8 copy of the
//!    row matrix with one scale per row (the `thor_embed::quant`
//!    scheme). The cheap integer dot filters rows; survivors are
//!    exactly rescored in f32/f64, so approximation only ever *misses*
//!    rows, never admits a wrong one.
//!
//! ## Why exact mode is bit-identical
//!
//! For a normalized query `q̂` and normalized member row `r̂` of a ball
//! `(c, radius)`: `cos(q, r) = dot(q̂, r̂) ≤ dot(q̂, c) + ‖r̂ − c‖ ≤
//! dot(q̂, c) + radius` (Cauchy–Schwarz). [`PRUNE_SLACK`] is added on
//! top, which swallows both the floating-point error of the bound
//! arithmetic and the `clamp(-1, 1)` lift of the similarity, so every
//! stored bound is *strictly* greater than every member similarity.
//! Skip decisions compare bounds with strict `<` against a floor that
//! is itself an attained similarity (or τ), so a skipped block can
//! never contain the row that decides the result; the surviving rows
//! are folded with the very same `f64` operations as the exhaustive
//! scan. Similarities here are never `-0.0` (accumulation starts at
//! `+0.0` and IEEE-754 round-to-nearest sums that hit zero produce
//! `+0.0`), so equal values are bit-equal and the fold's result does
//! not depend on traversal order.
//!
//! The whole structure is a pure deterministic function of the
//! [`VectorIndex`] bits, which is what lets delta applies rebuild it
//! and still match a fresh build byte-for-byte.

use std::cmp::Ordering;
use std::ops::Range;

use thor_fault::{ByteReader, ByteWriter, FrozenSlice};

use crate::index::{dot, VectorIndex};

/// Additive slack on every stored bound: strictly larger than the
/// floating-point error of the bound arithmetic (dots of unit-scale
/// values at embedding dimensionality are exact to ~1e-12), so a bound
/// is always *strictly* above every member similarity.
pub const PRUNE_SLACK: f64 = 1e-7;

/// Target rows per cluster; `k = rows.div_ceil(CLUSTER_TARGET)`.
const CLUSTER_TARGET: usize = 16;

/// Fixed k-means iteration count — never data-dependent, so the stored
/// sections (and with them the artifact bytes) are stable.
const KMEANS_ITERS: usize = 8;

/// Base seed for the deterministic k-means initialization.
const KMEANS_SEED: u64 = 0x7468_6f72_2d70_7231;

/// How candidate generation uses the pruning structures.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PruneMode {
    /// Bound-pruned scans whose output is bit-identical to the
    /// exhaustive path (the default).
    #[default]
    Exact,
    /// Like `Exact`, but the τ-gate scan first filters rows through the
    /// i8-quantized matrix: rows whose approximate similarity plus
    /// `margin` stays below τ are dropped without an exact rescore.
    /// Larger margins rescore more rows (higher recall, less speedup).
    Approx {
        /// Additive slack on the approximate similarity before a row is
        /// dropped; the recall knob.
        margin: f64,
    },
    /// Exhaustive scans only (the pre-pruning behavior).
    Off,
}

/// Counters accumulated by one pruned operation, flushed into
/// `PipelineMetrics` by the matcher.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Whole concepts skipped via their concept-level bound.
    pub concepts: u64,
    /// Cluster blocks skipped via their centroid+radius bound.
    pub clusters: u64,
    /// Rows never exactly scored (covered by a skipped concept or
    /// cluster, or dropped by the quantized filter).
    pub rows: u64,
    /// Rows that survived the quantized filter and were exactly
    /// rescored in f32/f64.
    pub rescored: u64,
}

impl PruneStats {
    /// Fold `other` into `self`.
    pub fn absorb(&mut self, other: &PruneStats) {
        self.concepts += other.concepts;
        self.clusters += other.clusters;
        self.rows += other.rows;
        self.rescored += other.rescored;
    }
}

/// A query quantized with the same per-vector scale scheme as the rows,
/// computed once per subphrase in approx mode.
#[derive(Debug, Clone)]
pub struct QuantQuery {
    codes: Vec<i8>,
    scale: f64,
}

/// Structural summary of a frozen [`PruneIndex`], decodable from the
/// `prune.meta` section bytes alone (for `thor inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneSummary {
    /// Vector dimensionality the structure was built for.
    pub dim: usize,
    /// Total representative rows covered.
    pub rows: usize,
    /// Concepts covered.
    pub concepts: usize,
    /// Total clusters across all concepts.
    pub clusters: usize,
    /// Rows of the largest single cluster.
    pub max_cluster_rows: usize,
}

/// The frozen pruning structure: concept balls, cluster balls with
/// their member row lists, and the quantized row matrix. Built once at
/// prepare time (or rebuilt deterministically on load/delta), immutable
/// afterwards; the flat arrays may be zero-copy views into a mapped
/// artifact.
#[derive(Debug, Clone)]
pub struct PruneIndex {
    dim: usize,
    /// Per concept: `(first_cluster, clusters, seed_clusters)`. The
    /// first `seed_clusters` clusters cover exactly the concept's seed
    /// prefix; the rest cover the expansion suffix.
    concept_clusters: Vec<(usize, usize, usize)>,
    /// Per cluster: `(member_start, member_len)` into `members`.
    clusters: Vec<(usize, usize)>,
    /// Global row ids, ascending within each cluster.
    members: FrozenSlice<u32>,
    /// Cluster centroids over normalized rows, `clusters × dim`.
    centroids: FrozenSlice<f32>,
    /// Cluster ball radii (f64, computed against the stored f32
    /// centroid so the query-time bound uses the exact same values).
    radii: FrozenSlice<f64>,
    /// Concept centroids over normalized rows, `concepts × dim`.
    concept_centroids: FrozenSlice<f32>,
    /// Concept ball radii.
    concept_radii: FrozenSlice<f64>,
    /// i8 row codes stored as raw `u8` bit patterns, `rows × dim`
    /// (`thor-fault` sections carry unsigned lanes only).
    quant_codes: FrozenSlice<u8>,
    /// Per-row quantization scale (`max|x| / 127`).
    quant_scales: FrozenSlice<f32>,
}

impl PruneIndex {
    /// Build the pruning structure for `ix`. Pure and deterministic:
    /// the same index bits always produce the same structure, so a
    /// delta-rebuilt instance is byte-identical to a fresh one.
    pub fn build(ix: &VectorIndex) -> Self {
        let dim = ix.dim();
        let rows = ix.row_count();
        assert!(rows <= u32::MAX as usize, "row ids must fit in u32");

        // Normalized f64 copies of every row, zero-norm rows as the
        // zero vector (which every ball then contains, keeping the
        // bound valid for their defined similarity of 0.0).
        let mut unit = vec![0.0f64; rows * dim];
        for r in 0..rows {
            let rn = ix.row_norm(r);
            if rn != 0.0 {
                for (u, &x) in unit[r * dim..(r + 1) * dim].iter_mut().zip(ix.row(r)) {
                    *u = x as f64 / rn;
                }
            }
        }

        let mut concept_clusters = Vec::with_capacity(ix.concept_count());
        let mut clusters = Vec::new();
        let mut members: Vec<u32> = Vec::with_capacity(rows);
        let mut centroids: Vec<f32> = Vec::new();
        let mut radii: Vec<f64> = Vec::new();
        let mut concept_centroids: Vec<f32> = Vec::with_capacity(ix.concept_count() * dim);
        let mut concept_radii: Vec<f64> = Vec::with_capacity(ix.concept_count());

        for ci in 0..ix.concept_count() {
            let (start, crows, seed_rows) = ix.concept_range(ci);
            let all = start..start + crows;
            let centroid = mean_centroid(&unit, dim, all.clone());
            concept_radii.push(ball_radius(&unit, dim, all, &centroid));
            concept_centroids.extend_from_slice(&centroid);

            let first = clusters.len();
            let mut seed_clusters = 0usize;
            for (group, range) in [
                (0u64, start..start + seed_rows),
                (1u64, start + seed_rows..start + crows),
            ] {
                let seed = KMEANS_SEED ^ (((ci as u64) << 1) | group);
                for group_members in kmeans_groups(&unit, dim, range, seed) {
                    let centroid =
                        mean_centroid(&unit, dim, group_members.iter().map(|&r| r as usize));
                    let radius = ball_radius(
                        &unit,
                        dim,
                        group_members.iter().map(|&r| r as usize),
                        &centroid,
                    );
                    clusters.push((members.len(), group_members.len()));
                    members.extend_from_slice(&group_members);
                    centroids.extend_from_slice(&centroid);
                    radii.push(radius);
                    if group == 0 {
                        seed_clusters += 1;
                    }
                }
            }
            concept_clusters.push((first, clusters.len() - first, seed_clusters));
        }

        // The i8 shadow matrix, mirroring `thor_embed::quant::quantize`
        // exactly: symmetric linear, one scale per row.
        let mut quant_codes: Vec<u8> = Vec::with_capacity(rows * dim);
        let mut quant_scales: Vec<f32> = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = ix.row(r);
            let max = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            if max == 0.0 {
                quant_scales.push(0.0);
                quant_codes.extend(std::iter::repeat_n(0u8, dim));
            } else {
                let scale = max / 127.0;
                quant_scales.push(scale);
                quant_codes.extend(
                    row.iter()
                        .map(|&x| ((x / scale).round().clamp(-127.0, 127.0) as i8) as u8),
                );
            }
        }

        Self {
            dim,
            concept_clusters,
            clusters,
            members: members.into(),
            centroids: centroids.into(),
            radii: radii.into(),
            concept_centroids: concept_centroids.into(),
            concept_radii: concept_radii.into(),
            quant_codes: quant_codes.into(),
            quant_scales: quant_scales.into(),
        }
    }

    /// Total clusters across all concepts.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Global row ids, cluster-major, for artifact serialization.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Cluster centroids (`clusters × dim`), for artifact serialization.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Cluster ball radii, for artifact serialization.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// Concept centroids (`concepts × dim`), for artifact serialization.
    pub fn concept_centroids(&self) -> &[f32] {
        &self.concept_centroids
    }

    /// Concept ball radii, for artifact serialization.
    pub fn concept_radii(&self) -> &[f64] {
        &self.concept_radii
    }

    /// Quantized row codes (`rows × dim` i8 bit patterns), for artifact
    /// serialization.
    pub fn quant_codes(&self) -> &[u8] {
        &self.quant_codes
    }

    /// Per-row quantization scales, for artifact serialization.
    pub fn quant_scales(&self) -> &[f32] {
        &self.quant_scales
    }

    /// Encode the structural layout (everything not carried by the flat
    /// arrays) for the `prune.meta` artifact section.
    pub fn meta_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.dim as u64);
        w.put_u64(self.quant_scales.len() as u64);
        w.put_u64(self.concept_clusters.len() as u64);
        w.put_u64(self.clusters.len() as u64);
        for &(_, count, seed_count) in &self.concept_clusters {
            w.put_u64(count as u64);
            w.put_u64(seed_count as u64);
        }
        for &(_, len) in &self.clusters {
            w.put_u64(len as u64);
        }
        w.into_bytes()
    }

    /// Decode a [`PruneSummary`] from `prune.meta` section bytes.
    pub fn summarize_meta(meta: &[u8]) -> Result<PruneSummary, String> {
        let mut r = ByteReader::new(meta);
        let e = |err: thor_fault::ThorError| format!("prune.meta: {err}");
        let dim = r.get_u64().map_err(e)? as usize;
        let rows = r.get_u64().map_err(e)? as usize;
        let concepts = r.get_u64().map_err(e)? as usize;
        let clusters = r.get_u64().map_err(e)? as usize;
        for _ in 0..concepts {
            r.get_u64().map_err(e)?;
            r.get_u64().map_err(e)?;
        }
        let mut max_cluster_rows = 0usize;
        for _ in 0..clusters {
            max_cluster_rows = max_cluster_rows.max(r.get_u64().map_err(e)? as usize);
        }
        Ok(PruneSummary {
            dim,
            rows,
            concepts,
            clusters,
            max_cluster_rows,
        })
    }

    /// Reassemble a pruning structure from its artifact sections,
    /// validating every layout invariant the query loops rely on
    /// against `ix` — corrupt or mismatched sections yield a named
    /// error instead of a panic or a silently different scan.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        ix: &VectorIndex,
        meta: &[u8],
        members: FrozenSlice<u32>,
        centroids: FrozenSlice<f32>,
        radii: FrozenSlice<f64>,
        concept_centroids: FrozenSlice<f32>,
        concept_radii: FrozenSlice<f64>,
        quant_codes: FrozenSlice<u8>,
        quant_scales: FrozenSlice<f32>,
    ) -> Result<Self, String> {
        let mut r = ByteReader::new(meta);
        let e = |err: thor_fault::ThorError| format!("prune.meta: {err}");
        let dim = r.get_u64().map_err(e)? as usize;
        let rows = r.get_u64().map_err(e)? as usize;
        let concepts = r.get_u64().map_err(e)? as usize;
        let cluster_total = r.get_u64().map_err(e)? as usize;
        if dim != ix.dim() || rows != ix.row_count() || concepts != ix.concept_count() {
            return Err(format!(
                "prune structure shape ({concepts} concepts, {rows} rows, dim {dim}) \
                 does not match the index ({} concepts, {} rows, dim {})",
                ix.concept_count(),
                ix.row_count(),
                ix.dim()
            ));
        }
        let mut concept_clusters = Vec::with_capacity(concepts);
        let mut next = 0usize;
        for ci in 0..concepts {
            let count = r.get_u64().map_err(e)? as usize;
            let seed_count = r.get_u64().map_err(e)? as usize;
            if seed_count > count {
                return Err(format!(
                    "prune concept {ci} claims {seed_count} seed clusters of {count}"
                ));
            }
            concept_clusters.push((next, count, seed_count));
            next += count;
        }
        if next != cluster_total {
            return Err(format!(
                "prune concepts claim {next} clusters but the structure has {cluster_total}"
            ));
        }
        let mut clusters = Vec::with_capacity(cluster_total);
        let mut mstart = 0usize;
        for _ in 0..cluster_total {
            let len = r.get_u64().map_err(e)? as usize;
            clusters.push((mstart, len));
            mstart += len;
        }
        if mstart != rows || members.len() != rows {
            return Err(format!(
                "prune clusters cover {mstart} member rows, section has {}, index has {rows}",
                members.len()
            ));
        }
        for (name, have, want) in [
            ("prune.centroids", centroids.len(), cluster_total * dim),
            ("prune.radii", radii.len(), cluster_total),
            (
                "prune.concept_centroids",
                concept_centroids.len(),
                concepts * dim,
            ),
            ("prune.concept_radii", concept_radii.len(), concepts),
            ("quant.rows", quant_codes.len(), rows * dim),
            ("quant.scales", quant_scales.len(), rows),
        ] {
            if have != want {
                return Err(format!("{name} has {have} entries, expected {want}"));
            }
        }
        // Every cluster must hold ascending row ids inside its
        // concept's seed prefix or expansion suffix, and together the
        // clusters must cover each concept's rows exactly once.
        let mut seen = vec![false; rows];
        for (ci, &(first, count, seed_count)) in concept_clusters.iter().enumerate() {
            let (start, crows, seed_rows) = ix.concept_range(ci);
            for (k, &(cstart, clen)) in clusters[first..first + count].iter().enumerate() {
                let range = if k < seed_count {
                    start..start + seed_rows
                } else {
                    start + seed_rows..start + crows
                };
                let mut prev: Option<u32> = None;
                for &row in &members[cstart..cstart + clen] {
                    let r = row as usize;
                    if !range.contains(&r) || seen[r] || prev.is_some_and(|p| p >= row) {
                        return Err(format!(
                            "prune cluster {} of concept {ci} does not partition rows \
                             {}..{} of the index",
                            first + k,
                            start,
                            start + crows
                        ));
                    }
                    seen[r] = true;
                    prev = Some(row);
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("prune clusters do not cover every index row".to_string());
        }
        Ok(Self {
            dim,
            concept_clusters,
            clusters,
            members,
            centroids,
            radii,
            concept_centroids,
            concept_radii,
            quant_codes,
            quant_scales,
        })
    }

    /// Quantize `query` with the row scheme, once per subphrase.
    pub fn quantize_query(&self, query: &[f32]) -> QuantQuery {
        let max = query.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        if max == 0.0 {
            return QuantQuery {
                codes: vec![0; query.len()],
                scale: 0.0,
            };
        }
        let scale = max / 127.0;
        QuantQuery {
            codes: query
                .iter()
                .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
                .collect(),
            scale: scale as f64,
        }
    }

    /// Upper bound on `cos(query, row)` over all rows of `concept`;
    /// `f64::MIN` for an empty concept. `query_norm` must be non-zero.
    fn concept_bound(
        &self,
        ix: &VectorIndex,
        concept: usize,
        query: &[f32],
        query_norm: f64,
    ) -> f64 {
        let (_, rows, _) = ix.concept_range(concept);
        if rows == 0 {
            return f64::MIN;
        }
        let c = &self.concept_centroids[concept * self.dim..(concept + 1) * self.dim];
        dot(query, c) / query_norm + self.concept_radii[concept] + PRUNE_SLACK
    }

    /// Upper bound on `cos(query, row)` over the member rows of cluster
    /// `k`. `query_norm` must be non-zero.
    fn cluster_bound(&self, k: usize, query: &[f32], query_norm: f64) -> f64 {
        let c = &self.centroids[k * self.dim..(k + 1) * self.dim];
        dot(query, c) / query_norm + self.radii[k] + PRUNE_SLACK
    }

    /// Approximate cosine via the i8 matrices; both norms must be
    /// non-zero.
    fn approx_cosine(&self, qq: &QuantQuery, row: usize, query_norm: f64, row_norm: f64) -> f64 {
        let codes = &self.quant_codes[row * self.dim..(row + 1) * self.dim];
        let mut acc: i64 = 0;
        for (&qc, &rc) in qq.codes.iter().zip(codes) {
            acc += qc as i64 * (rc as i8) as i64;
        }
        acc as f64 * qq.scale * self.quant_scales[row] as f64 / (query_norm * row_norm)
    }

    /// The τ-admission gate of `match_phrase`, pruned: does `concept`
    /// hold any row with `sim + 1e-9 >= tau`? Exact mode (`quant:
    /// None`) answers identically to folding the exhaustive scan's max;
    /// approx mode may answer `false` where the exhaustive gate says
    /// `true` (a recall miss), never the reverse — quantized survivors
    /// are always exactly rescored.
    #[allow(clippy::too_many_arguments)]
    pub fn gate(
        &self,
        ix: &VectorIndex,
        concept: usize,
        query: &[f32],
        query_norm: f64,
        tau: f64,
        quant: Option<(&QuantQuery, f64)>,
        stats: &mut PruneStats,
    ) -> bool {
        let (_, crows, _) = ix.concept_range(concept);
        if crows == 0 {
            return false;
        }
        if query_norm == 0.0 {
            // All similarities are exactly 0.0 for a zero-norm query.
            return 0.0 + 1e-9 >= tau;
        }
        if self.concept_bound(ix, concept, query, query_norm) + 1e-9 < tau {
            stats.concepts += 1;
            stats.rows += crows as u64;
            return false;
        }
        let (first, count, _) = self.concept_clusters[concept];
        for k in first..first + count {
            let (mstart, mlen) = self.clusters[k];
            if self.cluster_bound(k, query, query_norm) + 1e-9 < tau {
                stats.clusters += 1;
                stats.rows += mlen as u64;
                continue;
            }
            for &row in &self.members[mstart..mstart + mlen] {
                let row = row as usize;
                let pass = match quant {
                    None => ix.row_cosine(row, query, query_norm) + 1e-9 >= tau,
                    Some((qq, margin)) => {
                        let rn = ix.row_norm(row);
                        if rn == 0.0 {
                            0.0 + 1e-9 >= tau
                        } else if self.approx_cosine(qq, row, query_norm, rn) + margin + 1e-9 < tau
                        {
                            stats.rows += 1;
                            false
                        } else {
                            stats.rescored += 1;
                            ix.row_cosine(row, query, query_norm) + 1e-9 >= tau
                        }
                    }
                };
                if pass {
                    return true;
                }
            }
        }
        false
    }

    /// The cross-concept argmax of the fine-tune τ-expansion, pruned:
    /// equivalent to folding `scan`'s per-concept max with strict `>`
    /// in index order (ties keep the lowest concept), with `f64::MIN`
    /// standing in for empty concepts. Results whose similarity falls
    /// below `floor` may carry an under-reported value (their blocks
    /// are dropped unscanned); callers must only consume results `>=
    /// floor`. Pass `f64::MIN` for the unrestricted argmax.
    pub fn best_concept(
        &self,
        ix: &VectorIndex,
        query: &[f32],
        query_norm: f64,
        floor: f64,
        stats: &mut PruneStats,
    ) -> Option<(usize, f64)> {
        let concepts = ix.concept_count();
        if concepts == 0 {
            return None;
        }
        if query_norm == 0.0 {
            // Exhaustive-fold semantics at zero cost: every similarity
            // is 0.0, empty concepts stand at f64::MIN.
            let mut best: Option<(usize, f64)> = None;
            for ci in 0..concepts {
                let sim = if ix.concept_rows(ci) > 0 {
                    0.0
                } else {
                    f64::MIN
                };
                if best.is_none_or(|(_, b)| sim > b) {
                    best = Some((ci, sim));
                }
            }
            return best;
        }
        let mut order: Vec<(f64, usize)> = (0..concepts)
            .map(|ci| (self.concept_bound(ix, ci, query, query_norm), ci))
            .collect();
        order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut best: Option<(usize, f64)> = None;
        for (pos, &(bound, ci)) in order.iter().enumerate() {
            let eff = match best {
                None => floor,
                Some((_, bs)) => {
                    if bs > floor {
                        bs
                    } else {
                        floor
                    }
                }
            };
            if bound < eff {
                // Bounds are sorted descending: everything from here on
                // is dominated.
                for &(_, rest) in &order[pos..] {
                    stats.concepts += 1;
                    stats.rows += ix.concept_rows(rest) as u64;
                }
                break;
            }
            if let Some((bi, bs)) = best {
                if bound == bs && ci > bi {
                    // Every member sim is strictly below the bound, so
                    // this concept cannot displace an equal-valued,
                    // lower-indexed incumbent.
                    stats.concepts += 1;
                    stats.rows += ix.concept_rows(ci) as u64;
                    continue;
                }
            }
            let Some(m) = self.concept_max(ix, ci, query, query_norm, eff, stats) else {
                continue;
            };
            let replace = match best {
                None => true,
                Some((bi, bs)) => m > bs || (m == bs && ci < bi),
            };
            if replace {
                best = Some((ci, m));
            }
        }
        best
    }

    /// Max member similarity of `concept` with cluster blocks below
    /// `floor` dropped. `Some(f64::MIN)` for an empty concept; `None`
    /// when every block was dropped. The fold over surviving rows uses
    /// the same operations as the exhaustive scan, and every row that
    /// can decide a result `>= floor` survives (its block's bound is
    /// strictly above its similarity), so the returned bits equal the
    /// exhaustive max whenever that max is `>= floor`.
    fn concept_max(
        &self,
        ix: &VectorIndex,
        concept: usize,
        query: &[f32],
        query_norm: f64,
        floor: f64,
        stats: &mut PruneStats,
    ) -> Option<f64> {
        let (_, crows, _) = ix.concept_range(concept);
        if crows == 0 {
            return Some(f64::MIN);
        }
        let (first, count, _) = self.concept_clusters[concept];
        let mut max: Option<f64> = None;
        for k in first..first + count {
            let (mstart, mlen) = self.clusters[k];
            let eff = match max {
                Some(m) if m > floor => m,
                _ => floor,
            };
            if self.cluster_bound(k, query, query_norm) < eff {
                stats.clusters += 1;
                stats.rows += mlen as u64;
                continue;
            }
            for &row in &self.members[mstart..mstart + mlen] {
                let sim = ix.row_cosine(row as usize, query, query_norm);
                max = Some(max.map_or(sim, |a: f64| a.max(sim)));
            }
        }
        max
    }

    /// The best-seed lookup of `match_phrase`, pruned over the seed
    /// clusters only: identical to [`VectorIndex::best_seed`] (ties
    /// prefer the lexicographically smaller instance — a total order,
    /// so traversal order does not matter).
    pub fn best_seed<'a>(
        &self,
        ix: &'a VectorIndex,
        concept: usize,
        query: &[f32],
        query_norm: f64,
        stats: &mut PruneStats,
    ) -> Option<(&'a str, f64)> {
        if query_norm == 0.0 {
            return ix.best_seed(concept, query, query_norm);
        }
        let (first, _, seed_count) = self.concept_clusters[concept];
        let mut best: Option<(&str, f64)> = None;
        for k in first..first + seed_count {
            let (mstart, mlen) = self.clusters[k];
            if let Some((_, bs)) = best {
                if self.cluster_bound(k, query, query_norm) < bs {
                    stats.clusters += 1;
                    stats.rows += mlen as u64;
                    continue;
                }
            }
            for &row in &self.members[mstart..mstart + mlen] {
                let row = row as usize;
                let word = ix.row_word(row);
                let sim = ix.row_cosine(row, query, query_norm);
                let replace = match best {
                    None => true,
                    Some((bw, bs)) => {
                        sim.total_cmp(&bs).then_with(|| bw.cmp(word)) != Ordering::Less
                    }
                };
                if replace {
                    best = Some((word, sim));
                }
            }
        }
        best
    }
}

/// Mean of the normalized rows in `rows`, stored in f32 (the query-time
/// bound widens the stored values back to f64, and the radius below is
/// computed against the *stored* centroid, so precision loss here can
/// never invalidate a bound).
fn mean_centroid(unit: &[f64], dim: usize, rows: impl Iterator<Item = usize> + Clone) -> Vec<f32> {
    let mut acc = vec![0.0f64; dim];
    let mut count = 0usize;
    for r in rows {
        count += 1;
        for (a, &x) in acc.iter_mut().zip(&unit[r * dim..(r + 1) * dim]) {
            *a += x;
        }
    }
    if count == 0 {
        return vec![0.0f32; dim];
    }
    acc.iter().map(|&x| (x / count as f64) as f32).collect()
}

/// Max L2 distance from the stored f32 centroid to any normalized row
/// in `rows`.
fn ball_radius(
    unit: &[f64],
    dim: usize,
    rows: impl Iterator<Item = usize>,
    centroid: &[f32],
) -> f64 {
    let mut worst = 0.0f64;
    for r in rows {
        let d2: f64 = unit[r * dim..(r + 1) * dim]
            .iter()
            .zip(centroid)
            .map(|(&x, &c)| {
                let d = x - c as f64;
                d * d
            })
            .sum();
        worst = worst.max(d2.sqrt());
    }
    worst
}

/// Deterministic fixed-iteration k-means over the rows of `range`,
/// returning non-empty member groups (ascending row ids within each).
fn kmeans_groups(unit: &[f64], dim: usize, range: Range<usize>, seed: u64) -> Vec<Vec<u32>> {
    let rows: Vec<usize> = range.collect();
    let n = rows.len();
    if n == 0 {
        return Vec::new();
    }
    let k = n.div_ceil(CLUSTER_TARGET);
    let mut rng = SplitMix64::new(seed);
    let mut picks: Vec<usize> = Vec::with_capacity(k);
    while picks.len() < k {
        let p = (rng.next() % n as u64) as usize;
        if !picks.contains(&p) {
            picks.push(p);
        }
    }
    let mut cents = vec![0.0f64; k * dim];
    for (c, &p) in picks.iter().enumerate() {
        cents[c * dim..(c + 1) * dim].copy_from_slice(&unit[rows[p] * dim..(rows[p] + 1) * dim]);
    }
    let mut assign = vec![0usize; n];
    for _ in 0..KMEANS_ITERS {
        for (i, &r) in rows.iter().enumerate() {
            assign[i] = nearest_centroid(&unit[r * dim..(r + 1) * dim], &cents, dim);
        }
        let mut acc = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (i, &r) in rows.iter().enumerate() {
            let c = assign[i];
            counts[c] += 1;
            for (a, &x) in acc[c * dim..(c + 1) * dim]
                .iter_mut()
                .zip(&unit[r * dim..(r + 1) * dim])
            {
                *a += x;
            }
        }
        for c in 0..k {
            // An emptied cluster keeps its previous centroid.
            if counts[c] > 0 {
                for d in 0..dim {
                    cents[c * dim + d] = acc[c * dim + d] / counts[c] as f64;
                }
            }
        }
    }
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); k];
    for &r in &rows {
        let c = nearest_centroid(&unit[r * dim..(r + 1) * dim], &cents, dim);
        groups[c].push(r as u32);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Index of the nearest centroid by squared L2 distance; ties keep the
/// lowest index.
fn nearest_centroid(v: &[f64], cents: &[f64], dim: usize) -> usize {
    let k = cents.len() / dim;
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for c in 0..k {
        let d2: f64 = v
            .iter()
            .zip(&cents[c * dim..(c + 1) * dim])
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum();
        if d2 < best_d2 {
            best_d2 = d2;
            best = c;
        }
    }
    best
}

/// The vendored SplitMix64 generator (Steele, Lea & Flood 2014): a
/// tiny, dependency-free stream with fixed constants, used only to
/// seed the k-means picks deterministically.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{slice_norm, VectorIndexBuilder};

    /// A deterministic index with enough rows per concept to form
    /// multiple clusters, plus an empty concept and a zero-norm row.
    fn fixture(dim: usize, concepts: usize, rows_per: usize) -> VectorIndex {
        let mut rng = SplitMix64::new(42);
        let mut next = move || (rng.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let mut b = VectorIndexBuilder::new(dim);
        for ci in 0..concepts {
            let mut rows: Vec<(String, Vec<f32>)> = Vec::new();
            for r in 0..rows_per {
                let v: Vec<f32> = if ci == 0 && r == 3 {
                    vec![0.0; dim] // a zero-norm row
                } else {
                    (0..dim).map(|_| next() as f32).collect()
                };
                rows.push((format!("w{ci}-{r}"), v));
            }
            let seed_rows = rows_per / 2;
            b.add_concept(
                &format!("C{ci}"),
                seed_rows,
                rows.iter().map(|(w, v)| (w.as_str(), v.as_slice())),
            );
        }
        b.add_concept("Empty", 0, []);
        b.build()
    }

    fn queries(dim: usize, n: usize) -> Vec<Vec<f32>> {
        let mut rng = SplitMix64::new(7);
        let mut next = move || (rng.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let mut out: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| next() as f32).collect())
            .collect();
        out.push(vec![0.0; dim]); // zero-norm query
        out
    }

    /// The exhaustive gate: does the scan's max pass τ?
    fn gate_reference(ix: &VectorIndex, ci: usize, q: &[f32], qn: f64, tau: f64) -> bool {
        ix.scan(q, qn)
            .nth(ci)
            .and_then(|s| s.max)
            .is_some_and(|m| m + 1e-9 >= tau)
    }

    /// The exhaustive argmax fold of the fine-tune τ-expansion.
    fn best_concept_reference(ix: &VectorIndex, q: &[f32], qn: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for scores in ix.scan(q, qn) {
            let sim = scores.max.unwrap_or(f64::MIN);
            if sim.is_finite() && best.is_none_or(|(_, b)| sim > b) {
                best = Some((scores.concept, sim));
            }
        }
        best
    }

    #[test]
    fn exact_gate_matches_exhaustive_everywhere() {
        let ix = fixture(16, 5, 40);
        let pr = PruneIndex::build(&ix);
        for q in queries(16, 24) {
            let qn = slice_norm(&q);
            for tau in [0.0, 0.05, 0.1, 0.3, 0.7, 1.0] {
                for ci in 0..ix.concept_count() {
                    let mut stats = PruneStats::default();
                    assert_eq!(
                        pr.gate(&ix, ci, &q, qn, tau, None, &mut stats),
                        gate_reference(&ix, ci, &q, qn, tau),
                        "gate diverged at tau {tau} concept {ci}"
                    );
                }
            }
        }
    }

    #[test]
    fn best_concept_matches_exhaustive_fold_bit_for_bit() {
        let ix = fixture(16, 5, 40);
        let pr = PruneIndex::build(&ix);
        for q in queries(16, 24) {
            let qn = slice_norm(&q);
            let mut stats = PruneStats::default();
            let got = pr.best_concept(&ix, &q, qn, f64::MIN, &mut stats);
            let want = best_concept_reference(&ix, &q, qn);
            match (got, want) {
                (Some((gc, gs)), Some((wc, ws))) => {
                    assert_eq!(gc, wc);
                    assert_eq!(gs.to_bits(), ws.to_bits(), "value bits diverged");
                }
                (g, w) => assert_eq!(g.is_some(), w.is_some()),
            }
        }
    }

    #[test]
    fn best_concept_with_floor_agrees_above_the_floor() {
        let ix = fixture(12, 4, 32);
        let pr = PruneIndex::build(&ix);
        for q in queries(12, 16) {
            let qn = slice_norm(&q);
            for floor in [0.0, 0.2, 0.5] {
                let mut stats = PruneStats::default();
                let got = pr.best_concept(&ix, &q, qn, floor, &mut stats);
                let want = best_concept_reference(&ix, &q, qn);
                if let Some((wc, ws)) = want {
                    if ws >= floor {
                        let (gc, gs) = got.expect("winner above the floor must survive");
                        assert_eq!(gc, wc);
                        assert_eq!(gs.to_bits(), ws.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn best_seed_matches_exhaustive() {
        let ix = fixture(16, 5, 40);
        let pr = PruneIndex::build(&ix);
        for q in queries(16, 24) {
            let qn = slice_norm(&q);
            for ci in 0..ix.concept_count() {
                let mut stats = PruneStats::default();
                let got = pr.best_seed(&ix, ci, &q, qn, &mut stats);
                let want = ix.best_seed(ci, &q, qn);
                match (got, want) {
                    (Some((gw, gs)), Some((ww, ws))) => {
                        assert_eq!(gw, ww);
                        assert_eq!(gs.to_bits(), ws.to_bits());
                    }
                    (g, w) => assert_eq!(g.is_some(), w.is_some()),
                }
            }
        }
    }

    #[test]
    fn wide_margin_approx_gate_equals_exact() {
        // With a margin of 2.0 every row is rescored exactly, so the
        // approximate gate must agree with the exact one everywhere.
        let ix = fixture(16, 4, 32);
        let pr = PruneIndex::build(&ix);
        for q in queries(16, 12) {
            let qn = slice_norm(&q);
            if qn == 0.0 {
                continue;
            }
            let qq = pr.quantize_query(&q);
            for tau in [0.0, 0.3, 0.7] {
                for ci in 0..ix.concept_count() {
                    let mut a = PruneStats::default();
                    let mut b = PruneStats::default();
                    assert_eq!(
                        pr.gate(&ix, ci, &q, qn, tau, Some((&qq, 2.0)), &mut a),
                        pr.gate(&ix, ci, &q, qn, tau, None, &mut b),
                    );
                }
            }
        }
    }

    #[test]
    fn approx_gate_never_admits_a_wrong_concept() {
        // Rows that survive the quantized filter are exactly rescored,
        // so a passing approx gate implies a passing exact gate.
        let ix = fixture(16, 4, 32);
        let pr = PruneIndex::build(&ix);
        let mut rescored = 0u64;
        for q in queries(16, 12) {
            let qn = slice_norm(&q);
            if qn == 0.0 {
                continue;
            }
            let qq = pr.quantize_query(&q);
            for tau in [0.1, 0.3, 0.5] {
                for ci in 0..ix.concept_count() {
                    let mut stats = PruneStats::default();
                    if pr.gate(&ix, ci, &q, qn, tau, Some((&qq, 0.02)), &mut stats) {
                        let mut e = PruneStats::default();
                        assert!(pr.gate(&ix, ci, &q, qn, tau, None, &mut e));
                    }
                    rescored += stats.rescored;
                }
            }
        }
        assert!(rescored > 0, "the quantized filter never ran");
    }

    /// Concepts as tight balls around distinct directions — the shape
    /// real topic embeddings have, and the one pruning exists for.
    fn clustered_fixture(dim: usize, concepts: usize, rows_per: usize) -> VectorIndex {
        let mut rng = SplitMix64::new(11);
        let mut next = move || (rng.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let mut b = VectorIndexBuilder::new(dim);
        for ci in 0..concepts {
            let rows: Vec<(String, Vec<f32>)> = (0..rows_per)
                .map(|r| {
                    let v: Vec<f32> = (0..dim)
                        .map(|d| {
                            let base = if d == ci % dim { 1.0 } else { 0.0 };
                            (base + next() * 0.05) as f32
                        })
                        .collect();
                    (format!("w{ci}-{r}"), v)
                })
                .collect();
            b.add_concept(
                &format!("C{ci}"),
                rows_per / 2,
                rows.iter().map(|(w, v)| (w.as_str(), v.as_slice())),
            );
        }
        b.build()
    }

    #[test]
    fn pruning_actually_skips_work() {
        let ix = clustered_fixture(16, 8, 48);
        let pr = PruneIndex::build(&ix);
        let mut stats = PruneStats::default();
        for ci in 0..8usize {
            // Queries aligned with one concept's direction: every other
            // concept's bound falls below the floor.
            let q: Vec<f32> = (0..16).map(|d| if d == ci { 1.0 } else { 0.0 }).collect();
            let qn = slice_norm(&q);
            pr.best_concept(&ix, &q, qn, 0.5, &mut stats);
            let mut gs = PruneStats::default();
            pr.gate(&ix, (ci + 1) % 8, &q, qn, 0.7, None, &mut gs);
            stats.absorb(&gs);
        }
        assert!(stats.concepts > 0, "no concepts were ever pruned");
        assert!(stats.rows > 0, "no rows were ever pruned");
    }

    #[test]
    fn build_is_deterministic_and_round_trips_through_parts() {
        let ix = fixture(12, 3, 24);
        let a = PruneIndex::build(&ix);
        let b = PruneIndex::build(&ix);
        assert_eq!(a.meta_bytes(), b.meta_bytes());
        assert_eq!(a.members(), b.members());
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.radii(), b.radii());

        let rt = PruneIndex::from_parts(
            &ix,
            &a.meta_bytes(),
            a.members().to_vec().into(),
            a.centroids().to_vec().into(),
            a.radii().to_vec().into(),
            a.concept_centroids().to_vec().into(),
            a.concept_radii().to_vec().into(),
            a.quant_codes().to_vec().into(),
            a.quant_scales().to_vec().into(),
        )
        .expect("valid parts");
        for q in queries(12, 8) {
            let qn = slice_norm(&q);
            let mut s1 = PruneStats::default();
            let mut s2 = PruneStats::default();
            assert_eq!(
                a.best_concept(&ix, &q, qn, f64::MIN, &mut s1),
                rt.best_concept(&ix, &q, qn, f64::MIN, &mut s2)
            );
        }

        let summary = PruneIndex::summarize_meta(&a.meta_bytes()).expect("valid meta");
        assert_eq!(summary.dim, 12);
        assert_eq!(summary.rows, ix.row_count());
        assert_eq!(summary.concepts, ix.concept_count());
        assert_eq!(summary.clusters, a.cluster_count());
        assert!(summary.max_cluster_rows > 0);
    }

    #[test]
    fn from_parts_rejects_mismatched_sections_by_name() {
        let ix = fixture(12, 3, 24);
        let a = PruneIndex::build(&ix);
        let parts = |meta: Vec<u8>, members: Vec<u32>, radii: Vec<f64>| {
            PruneIndex::from_parts(
                &ix,
                &meta,
                members.into(),
                a.centroids().to_vec().into(),
                radii.into(),
                a.concept_centroids().to_vec().into(),
                a.concept_radii().to_vec().into(),
                a.quant_codes().to_vec().into(),
                a.quant_scales().to_vec().into(),
            )
        };
        // Truncated meta.
        let meta = a.meta_bytes();
        assert!(parts(
            meta[..meta.len() - 4].to_vec(),
            a.members().to_vec(),
            a.radii().to_vec()
        )
        .is_err());
        // Short radii section.
        let err = parts(
            meta.clone(),
            a.members().to_vec(),
            a.radii()[..a.radii().len() - 1].to_vec(),
        )
        .unwrap_err();
        assert!(err.contains("prune.radii"), "{err}");
        // A member row swapped across clusters breaks the partition.
        let mut bad = a.members().to_vec();
        let last = bad.len() - 1;
        bad.swap(0, last);
        let err = parts(meta.clone(), bad, a.radii().to_vec()).unwrap_err();
        assert!(err.contains("partition"), "{err}");
        // A structure built for a different index shape is named.
        let other = fixture(12, 2, 10);
        let err = PruneIndex::from_parts(
            &other,
            &meta,
            a.members().to_vec().into(),
            a.centroids().to_vec().into(),
            a.radii().to_vec().into(),
            a.concept_centroids().to_vec().into(),
            a.concept_radii().to_vec().into(),
            a.quant_codes().to_vec().into(),
            a.quant_scales().to_vec().into(),
        )
        .unwrap_err();
        assert!(err.contains("does not match the index"), "{err}");
    }

    #[test]
    fn zero_norm_query_keeps_exhaustive_semantics() {
        let ix = fixture(12, 3, 24);
        let pr = PruneIndex::build(&ix);
        let q = vec![0.0f32; 12];
        let mut stats = PruneStats::default();
        let got = pr.best_concept(&ix, &q, 0.0, f64::MIN, &mut stats);
        assert_eq!(got, best_concept_reference(&ix, &q, 0.0));
        assert!(pr.gate(&ix, 0, &q, 0.0, 0.0, None, &mut stats));
        assert!(!pr.gate(&ix, 0, &q, 0.0, 0.5, None, &mut stats));
        assert_eq!(
            pr.best_seed(&ix, 0, &q, 0.0, &mut stats),
            ix.best_seed(0, &q, 0.0)
        );
    }
}
