//! The fine-tuned similarity matcher.

use thor_embed::VectorStore;
use thor_obs::PipelineMetrics;
use thor_text::{is_stopword, normalize_phrase};

use crate::cluster::ConceptCluster;

/// Matcher configuration.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// The similarity threshold τ of Algorithm 1: controls both the
    /// seed expansion during fine-tuning and candidate acceptance during
    /// matching. Higher ⇒ precision-oriented, lower ⇒ recall-oriented.
    pub tau: f64,
    /// Maximum subphrase length, in words.
    pub max_subphrase_words: usize,
    /// Cap on τ-expanded representatives per concept (keeps fine-tuning
    /// and matching costs bounded at low τ).
    pub max_expansion: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            tau: 0.7,
            max_subphrase_words: 4,
            max_expansion: 200,
        }
    }
}

impl MatcherConfig {
    /// Config with a specific τ.
    pub fn with_tau(tau: f64) -> Self {
        assert!((0.0..=1.0).contains(&tau), "tau must be in [0, 1]");
        Self {
            tau,
            ..Self::default()
        }
    }
}

/// A candidate entity produced by semantic matching: a subphrase of the
/// input noun phrase, the concept it matched, and the best-matching seed
/// instance `c_m` with its semantic score.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEntity {
    /// The matched subphrase `e.p` (normalized).
    pub phrase: String,
    /// The assigned concept `e.C`.
    pub concept: String,
    /// The best-matching seed instance `c_m` (normalized).
    pub matched_instance: String,
    /// Semantic similarity between `e.p` and `c_m` (`e.score_s`).
    pub semantic_score: f64,
    /// Mean pairwise similarity to the concept cluster (ranking score).
    pub cluster_score: f64,
}

/// The fine-tuned semantic similarity matcher.
#[derive(Debug, Clone)]
pub struct SimilarityMatcher {
    store: VectorStore,
    clusters: Vec<ConceptCluster>,
    config: MatcherConfig,
    metrics: Option<PipelineMetrics>,
}

impl SimilarityMatcher {
    /// Fine-tune a matcher: one cluster per `(concept, instances)` pair.
    /// Corresponds to `MATCHER.FINETUNE(𝒞, R, τ)` — the instances come
    /// from the table columns `R.C`.
    ///
    /// The τ-expansion is *competitive*: each vocabulary word is offered
    /// only to the concept whose seeds it is most similar to, and joins
    /// that concept's representatives when the similarity reaches τ.
    /// Without the competition, correlated concepts would absorb each
    /// other's vocabulary at low τ and concept assignment would degrade
    /// exactly when the user asks for recall.
    pub fn fine_tune(
        concepts: &[(String, Vec<String>)],
        store: VectorStore,
        config: MatcherConfig,
    ) -> Self {
        Self::fine_tune_impl(concepts, store, config, None)
    }

    /// [`SimilarityMatcher::fine_tune`] with observability: fine-tuning
    /// statistics (vocabulary size, expansion counts, representative
    /// counts) are recorded into `metrics`, and the matcher keeps the
    /// handle so subsequent matching calls record subphrase/candidate
    /// counts and per-call timing.
    pub fn fine_tune_metered(
        concepts: &[(String, Vec<String>)],
        store: VectorStore,
        config: MatcherConfig,
        metrics: PipelineMetrics,
    ) -> Self {
        Self::fine_tune_impl(concepts, store, config, Some(metrics))
    }

    fn fine_tune_impl(
        concepts: &[(String, Vec<String>)],
        store: VectorStore,
        config: MatcherConfig,
        metrics: Option<PipelineMetrics>,
    ) -> Self {
        use thor_embed::cosine;

        let seeds: Vec<Vec<(String, thor_embed::Vector)>> = concepts
            .iter()
            .map(|(_, instances)| ConceptCluster::embed_seeds(instances, &store))
            .collect();

        // Competitive expansion: word → its best concept.
        let mut expansion: Vec<Vec<(String, f64)>> = vec![Vec::new(); concepts.len()];
        if config.tau < 1.0 {
            for (word, vec) in store.iter() {
                let mut best: Option<(usize, f64)> = None;
                for (ci, cluster_seeds) in seeds.iter().enumerate() {
                    let sim = cluster_seeds
                        .iter()
                        .map(|(_, s)| cosine(vec, s))
                        .fold(f64::MIN, f64::max);
                    if sim.is_finite() && best.is_none_or(|(_, b)| sim > b) {
                        best = Some((ci, sim));
                    }
                }
                if let Some((ci, sim)) = best {
                    if sim >= config.tau && !seeds[ci].iter().any(|(s, _)| s == word) {
                        expansion[ci].push((word.to_string(), sim));
                    }
                }
            }
        }
        let clusters: Vec<ConceptCluster> = concepts
            .iter()
            .zip(seeds)
            .zip(expansion)
            .map(|(((name, _), seeds), mut expanded)| {
                expanded.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                expanded.truncate(config.max_expansion);
                let words: Vec<String> = expanded.into_iter().map(|(w, _)| w).collect();
                if let Some(m) = &metrics {
                    m.expansion_words.add(words.len() as u64);
                }
                ConceptCluster::from_parts(name, seeds, &words, &store)
            })
            .collect();
        if let Some(m) = &metrics {
            m.vocab_words.set(store.len() as u64);
            m.cluster_representatives.set(
                clusters
                    .iter()
                    .map(|c| c.representative_count() as u64)
                    .sum(),
            );
        }
        Self {
            store,
            clusters,
            config,
            metrics,
        }
    }

    /// The metrics handle recorded at fine-tuning time, if any.
    pub fn metrics(&self) -> Option<&PipelineMetrics> {
        self.metrics.as_ref()
    }

    /// The configured τ.
    pub fn tau(&self) -> f64 {
        self.config.tau
    }

    /// The concept clusters.
    pub fn clusters(&self) -> &[ConceptCluster] {
        &self.clusters
    }

    /// The underlying vector table.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// Semantic similarity between two phrases (used by the refinement
    /// step and by segmentation); 0.0 when either is out-of-vocabulary.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        self.store.phrase_similarity(a, b).unwrap_or(0.0)
    }

    /// `MATCHER.MATCH(p)`: extract candidate entities from phrase `p`.
    ///
    /// Enumerates contiguous subphrases (up to the configured length)
    /// that do not start or end with a stop-word and embeds each as a
    /// query vector. Among the clusters whose *best* representative
    /// reaches τ for the query, "the matcher identifies the concept e.C
    /// that semantically best fits the subphrase" — the one with the
    /// highest mean pairwise similarity — and reports one candidate per
    /// subphrase, with the best seed instance as `c_m`.
    pub fn match_phrase(&self, phrase: &str) -> Vec<CandidateEntity> {
        self.match_phrase_anchored(phrase, |_| true)
    }

    /// [`SimilarityMatcher::match_phrase`] with an *anchor* predicate:
    /// a subphrase is only considered when at least one of its words
    /// satisfies `anchor`. The pipeline passes a nominality test
    /// ("entities typically consist of noun phrases or subsequences
    /// thereof") so that bare-modifier subphrases — whose vectors sit
    /// inside every seed phrase that shares the adjective — cannot
    /// become entities.
    pub fn match_phrase_anchored(
        &self,
        phrase: &str,
        anchor: impl Fn(&str) -> bool,
    ) -> Vec<CandidateEntity> {
        let _span = self.metrics.as_ref().map(|m| m.match_phrase.start());
        let normalized = normalize_phrase(phrase);
        let words: Vec<&str> = normalized.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let max_len = self.config.max_subphrase_words.min(words.len());
        let mut out = Vec::new();

        for len in 1..=max_len {
            for start in 0..=(words.len() - len) {
                let slice = &words[start..start + len];
                if is_stopword(slice[0]) || is_stopword(slice[len - 1]) {
                    continue;
                }
                if !slice.iter().any(|w| anchor(w)) {
                    continue;
                }
                let sub = slice.join(" ");
                let Some(query) = self.store.embed_phrase(&sub) else {
                    continue;
                };
                if let Some(m) = &self.metrics {
                    m.subphrases.inc();
                }
                // Pick the single best-fitting accepted cluster.
                let mut best: Option<(&ConceptCluster, f64)> = None;
                for cluster in &self.clusters {
                    let Some(best_rep) = cluster.max_similarity(&query) else {
                        continue;
                    };
                    if best_rep + 1e-9 < self.config.tau {
                        continue;
                    }
                    let cluster_score = cluster.mean_similarity(&query).unwrap_or(0.0);
                    if best.is_none_or(|(_, s)| cluster_score > s) {
                        best = Some((cluster, cluster_score));
                    }
                }
                let Some((cluster, cluster_score)) = best else {
                    continue;
                };
                let Some((seed, seed_sim)) = cluster.best_seed(&query) else {
                    continue;
                };
                if let Some(m) = &self.metrics {
                    m.candidates.inc();
                }
                out.push(CandidateEntity {
                    phrase: sub.clone(),
                    concept: cluster.concept.clone(),
                    matched_instance: seed.to_string(),
                    semantic_score: seed_sim.clamp(0.0, 1.0),
                    cluster_score,
                });
            }
        }
        // Deterministic order: by cluster score descending.
        out.sort_by(|a, b| {
            b.cluster_score
                .total_cmp(&a.cluster_score)
                .then_with(|| a.phrase.cmp(&b.phrase))
                .then_with(|| a.concept.cmp(&b.concept))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_embed::SemanticSpaceBuilder;

    fn matcher(tau: f64) -> SimilarityMatcher {
        let store = SemanticSpaceBuilder::new(32, 9)
            .topic("anatomy")
            .correlated_topic("complication", "anatomy", 0.3)
            .words(
                "anatomy",
                [
                    "brain", "nerve", "lung", "spine", "ear", "system", "nervous",
                ],
            )
            .words(
                "complication",
                ["cancer", "tumor", "stroke", "deafness", "clot"],
            )
            .ambiguous_word("blood", "anatomy", "complication", 0.55)
            .generic_words(["slow-growing", "walk", "green", "people"])
            .build()
            .into_store();
        let concepts = vec![
            (
                "Anatomy".to_string(),
                vec!["nervous system".to_string(), "ear".to_string()],
            ),
            (
                "Complication".to_string(),
                vec!["skin cancer".to_string(), "stroke".to_string()],
            ),
        ];
        // "skin" is OOV on purpose; "cancer" carries the seed.
        SimilarityMatcher::fine_tune(&concepts, store, MatcherConfig::with_tau(tau))
    }

    #[test]
    fn exact_seed_word_matches_at_tau_1() {
        let m = matcher(1.0);
        let c = m.match_phrase("the ear");
        assert!(!c.is_empty());
        assert_eq!(c[0].concept, "Anatomy");
        assert_eq!(c[0].matched_instance, "ear");
        assert!((c[0].semantic_score - 1.0).abs() < 1e-6);
    }

    #[test]
    fn novel_instance_found_at_lower_tau() {
        // "brain" is NOT a table instance but is semantically close to
        // the Anatomy cluster — the paper's 'Malaria' case.
        let strict = matcher(1.0);
        let lenient = matcher(0.55);
        let unseen = "brain";
        let strict_hits = strict
            .match_phrase(unseen)
            .iter()
            .filter(|c| c.concept == "Anatomy")
            .count();
        let lenient_hits = lenient
            .match_phrase(unseen)
            .iter()
            .filter(|c| c.concept == "Anatomy")
            .count();
        assert_eq!(strict_hits, 0, "tau=1.0 must not match unseen instances");
        assert!(
            lenient_hits > 0,
            "low tau should match semantically close words"
        );
    }

    #[test]
    fn lower_tau_never_produces_fewer_candidates() {
        let phrases = ["brain tumor", "nerve damage", "stroke risk", "green walk"];
        for phrase in phrases {
            let hi = matcher(0.9).match_phrase(phrase).len();
            let lo = matcher(0.5).match_phrase(phrase).len();
            assert!(lo >= hi, "phrase {phrase}: lo {lo} < hi {hi}");
        }
    }

    #[test]
    fn subphrases_enumerated() {
        let m = matcher(0.6);
        let candidates = m.match_phrase("slow-growing non-cancerous brain tumor");
        // Subphrases like "brain" and "tumor" should appear.
        assert!(candidates.iter().any(|c| c.phrase == "brain"));
        assert!(candidates.iter().any(|c| c.phrase == "tumor"));
        // No candidate starts/ends with a stop-word.
        for c in &candidates {
            let words: Vec<&str> = c.phrase.split_whitespace().collect();
            assert!(!is_stopword(words[0]));
            assert!(!is_stopword(words[words.len() - 1]));
        }
    }

    #[test]
    fn ambiguous_word_resolves_to_single_best_concept() {
        // The matcher assigns *the* best-fitting concept per subphrase;
        // an ambiguous word therefore yields exactly one candidate, for
        // one of its two plausible concepts.
        let m = matcher(0.5);
        let candidates = m.match_phrase("blood");
        assert_eq!(candidates.len(), 1, "{candidates:?}");
        assert!(matches!(
            candidates[0].concept.as_str(),
            "Anatomy" | "Complication"
        ));
    }

    #[test]
    fn oov_phrase_yields_nothing() {
        let m = matcher(0.5);
        assert!(m.match_phrase("xyzzy plugh").is_empty());
        assert!(m.match_phrase("").is_empty());
        assert!(m.match_phrase("the of and").is_empty());
    }

    #[test]
    fn results_sorted_by_cluster_score() {
        let m = matcher(0.5);
        let c = m.match_phrase("brain tumor");
        assert!(c
            .windows(2)
            .all(|w| w[0].cluster_score >= w[1].cluster_score));
    }

    #[test]
    fn similarity_helper() {
        let m = matcher(0.7);
        assert!(m.similarity("brain", "nerve") > m.similarity("brain", "walk"));
        assert_eq!(m.similarity("xyzzy", "brain"), 0.0);
    }
}
