//! The fine-tuned similarity matcher, built on the shared
//! `thor-index` candidate-generation engine.

use std::sync::Arc;

use thor_embed::VectorStore;
use thor_index::{
    CacheStats, CandidateSource, PhraseCache, PruneIndex, PruneMode, PruneStats, VectorIndex,
    VectorIndexBuilder,
};
use thor_obs::PipelineMetrics;
use thor_text::{is_stopword, normalize_phrase, SeedSyntax};

use crate::cluster::ConceptCluster;
use crate::prepared::PreparedMatcher;

pub use thor_index::CandidateEntity;

/// The τ values the matcher accepts: the full closed unit interval.
/// Algorithm 1 is defined for any τ ∈ [0, 1]; the paper's experiments
/// (and [`MatcherConfig::default`]) live in the precision/recall band
/// τ ∈ {0.5, 0.6, …, 1.0} — the sweep grid is `thor_bench::tau_sweep`.
/// Every τ validation in the workspace checks against this constant.
pub const TAU_RANGE: std::ops::RangeInclusive<f64> = 0.0..=1.0;

/// Matcher configuration.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// The similarity threshold τ of Algorithm 1: controls both the
    /// seed expansion during fine-tuning and candidate acceptance during
    /// matching. Higher ⇒ precision-oriented, lower ⇒ recall-oriented.
    /// Accepted values are [`TAU_RANGE`].
    pub tau: f64,
    /// Maximum subphrase length, in words.
    pub max_subphrase_words: usize,
    /// Cap on τ-expanded representatives per concept (keeps fine-tuning
    /// and matching costs bounded at low τ).
    pub max_expansion: usize,
    /// Capacity of the per-matcher phrase cache (distinct normalized
    /// subphrases whose candidate sets are retained); 0 disables
    /// caching. The cache never changes results — candidates are a pure
    /// function of the subphrase once the matcher is fine-tuned.
    pub cache_capacity: usize,
    /// How `match_phrase` uses the frozen pruning structures. `Exact`
    /// (the default) is bit-identical to the exhaustive scan; `Approx`
    /// trades recall for speed through the quantized filter; `Off`
    /// scans exhaustively. An execution knob, never part of the
    /// fingerprint or the artifact.
    pub prune: PruneMode,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            tau: 0.7,
            max_subphrase_words: 4,
            max_expansion: 200,
            cache_capacity: 4096,
            prune: PruneMode::Exact,
        }
    }
}

impl MatcherConfig {
    /// Config with a specific τ. Panics outside [`TAU_RANGE`].
    pub fn with_tau(tau: f64) -> Self {
        assert!(
            TAU_RANGE.contains(&tau),
            "tau must be in [0, 1] (TAU_RANGE)"
        );
        Self {
            tau,
            ..Self::default()
        }
    }
}

/// A scored subphrase as stored in the phrase cache. Distinguishing
/// out-of-vocabulary from matched-nothing lets cache hits replay the
/// `subphrases`/`candidates` counter increments of a fresh scan, so
/// metric totals stay deterministic whether or not a phrase hits.
#[derive(Debug, Clone)]
enum CachedMatch {
    /// No in-vocabulary word; the subphrase was never counted.
    Oov,
    /// Embedded, but no concept accepted it at this τ.
    NoMatch,
    /// Matched this candidate.
    Match(CandidateEntity),
}

/// The fine-tuned semantic similarity matcher.
///
/// The vector store is `Arc`-shared end to end: fine-tuning, the
/// prepared-engine layer and every matcher clone reference one
/// immutable store — no serve-path API deep-copies the vectors.
#[derive(Debug, Clone)]
pub struct SimilarityMatcher {
    store: Arc<VectorStore>,
    clusters: Vec<ConceptCluster>,
    index: VectorIndex,
    /// The frozen pruning structures (always built — a pure function of
    /// the index — so saved artifacts are identical whatever the
    /// serving-time [`PruneMode`]).
    prune: Arc<PruneIndex>,
    cache: PhraseCache<CachedMatch>,
    seed_syntax: Arc<SeedSyntax>,
    config: MatcherConfig,
    metrics: Option<PipelineMetrics>,
}

impl SimilarityMatcher {
    /// Fine-tune a matcher: one cluster per `(concept, instances)` pair.
    /// Corresponds to `MATCHER.FINETUNE(𝒞, R, τ)` — the instances come
    /// from the table columns `R.C`.
    ///
    /// The τ-expansion is *competitive*: each vocabulary word is offered
    /// only to the concept whose seeds it is most similar to, and joins
    /// that concept's representatives when the similarity reaches τ.
    /// Without the competition, correlated concepts would absorb each
    /// other's vocabulary at low τ and concept assignment would degrade
    /// exactly when the user asks for recall.
    ///
    /// Fine-tuning also builds the structure-of-arrays [`VectorIndex`]
    /// the matcher scans at query time, and a fresh [`PhraseCache`] —
    /// re-fine-tuning therefore invalidates all cached candidates by
    /// construction.
    pub fn fine_tune(
        concepts: &[(String, Vec<String>)],
        store: impl Into<Arc<VectorStore>>,
        config: MatcherConfig,
    ) -> Self {
        Self::fine_tune_impl(concepts, store.into(), config, None)
    }

    /// [`SimilarityMatcher::fine_tune`] with observability: fine-tuning
    /// statistics (vocabulary size, expansion counts, representative
    /// counts, index build time) are recorded into `metrics`, and the
    /// matcher keeps the handle so subsequent matching calls record
    /// subphrase/candidate/cache counts and per-call timing.
    pub fn fine_tune_metered(
        concepts: &[(String, Vec<String>)],
        store: impl Into<Arc<VectorStore>>,
        config: MatcherConfig,
        metrics: PipelineMetrics,
    ) -> Self {
        Self::fine_tune_impl(concepts, store.into(), config, Some(metrics))
    }

    /// One-shot fine-tuning is prepare-then-derive at the same τ: the
    /// [`PreparedMatcher`] runs the vocabulary scan, `matcher_at`
    /// filters/truncates and assembles the matcher. Sharing this single
    /// construction path with the engine's τ-sweep derivation is what
    /// makes derived matchers bit-identical to fresh ones.
    fn fine_tune_impl(
        concepts: &[(String, Vec<String>)],
        store: Arc<VectorStore>,
        config: MatcherConfig,
        metrics: Option<PipelineMetrics>,
    ) -> Self {
        PreparedMatcher::prepare(concepts, store, config.clone()).matcher_at(config, metrics)
    }

    /// Assemble a matcher from already-derived clusters: freeze the
    /// index (timed under `index.build`), record the fine-tune gauges,
    /// and open a fresh phrase cache. Crate-internal — the only callers
    /// are [`PreparedMatcher::matcher_at`] and (through it) fine-tuning.
    pub(crate) fn from_clusters(
        store: Arc<VectorStore>,
        clusters: Vec<ConceptCluster>,
        seed_syntax: Arc<SeedSyntax>,
        config: MatcherConfig,
        metrics: Option<PipelineMetrics>,
    ) -> Self {
        let (index, prune) = {
            let _span = metrics.as_ref().map(|m| m.index_build.start());
            let index = Self::build_index(&clusters, store.dim());
            let prune = Arc::new(PruneIndex::build(&index));
            (index, prune)
        };
        if let Some(m) = &metrics {
            m.vocab_words.set(store.len() as u64);
            m.cluster_representatives.set(
                clusters
                    .iter()
                    .map(|c| c.representative_count() as u64)
                    .sum(),
            );
            m.index_rows.set(index.row_count() as u64);
        }
        Self {
            store,
            clusters,
            index,
            prune,
            cache: PhraseCache::new(config.cache_capacity),
            seed_syntax,
            config,
            metrics,
        }
    }

    /// [`SimilarityMatcher::from_clusters`] with an already-built
    /// index (the artifact load path, where the index arrays may be
    /// zero-copy views into a mapped file). The caller is responsible
    /// for the index matching the clusters —
    /// `PreparedMatcher::matcher_with_index` validates the layout. A
    /// `None` prune structure is rebuilt deterministically from the
    /// index (the pre-pruning-artifact compatibility path).
    pub(crate) fn from_clusters_prebuilt(
        store: Arc<VectorStore>,
        clusters: Vec<ConceptCluster>,
        index: VectorIndex,
        prune: Option<Arc<PruneIndex>>,
        seed_syntax: Arc<SeedSyntax>,
        config: MatcherConfig,
        metrics: Option<PipelineMetrics>,
    ) -> Self {
        if let Some(m) = &metrics {
            m.vocab_words.set(store.len() as u64);
            m.cluster_representatives.set(
                clusters
                    .iter()
                    .map(|c| c.representative_count() as u64)
                    .sum(),
            );
            m.index_rows.set(index.row_count() as u64);
        }
        let prune = prune.unwrap_or_else(|| Arc::new(PruneIndex::build(&index)));
        Self {
            store,
            clusters,
            index,
            prune,
            cache: PhraseCache::new(config.cache_capacity),
            seed_syntax,
            config,
            metrics,
        }
    }

    /// A clone of this matcher serving with `prune` instead. The phrase
    /// cache starts fresh: approx-mode results may differ from exact
    /// ones, and cached entries must never leak across modes.
    pub fn with_prune_mode(&self, prune: PruneMode) -> Self {
        let mut config = self.config.clone();
        config.prune = prune;
        Self {
            store: self.store.clone(),
            clusters: self.clusters.clone(),
            index: self.index.clone(),
            prune: self.prune.clone(),
            cache: PhraseCache::new(config.cache_capacity),
            seed_syntax: self.seed_syntax.clone(),
            config,
            metrics: self.metrics.clone(),
        }
    }

    /// Freeze the fine-tuned clusters into the structure-of-arrays
    /// index: seeds first per concept (so `c_m` search is a prefix
    /// scan), identical `f32` bits, norms precomputed.
    fn build_index(clusters: &[ConceptCluster], dim: usize) -> VectorIndex {
        let mut builder = VectorIndexBuilder::new(dim);
        for cluster in clusters {
            builder.add_concept(
                &cluster.concept,
                cluster.seed_count(),
                cluster
                    .representative_vectors()
                    .map(|(w, v)| (w, v.as_slice())),
            );
        }
        builder.build()
    }

    /// The metrics handle recorded at fine-tuning time, if any.
    pub fn metrics(&self) -> Option<&PipelineMetrics> {
        self.metrics.as_ref()
    }

    /// The configured τ.
    pub fn tau(&self) -> f64 {
        self.config.tau
    }

    /// The concept clusters.
    pub fn clusters(&self) -> &[ConceptCluster] {
        &self.clusters
    }

    /// The underlying vector table.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// The shared handle to the vector table — cloning this is a
    /// refcount bump, never a deep copy.
    pub fn store_arc(&self) -> &Arc<VectorStore> {
        &self.store
    }

    /// The structure-of-arrays index frozen at fine-tune time.
    pub fn index(&self) -> &VectorIndex {
        &self.index
    }

    /// The pruning structures frozen next to the index, for artifact
    /// serialization.
    pub fn prune_index(&self) -> &PruneIndex {
        &self.prune
    }

    /// The configured [`PruneMode`].
    pub fn prune_mode(&self) -> PruneMode {
        self.config.prune
    }

    /// Precomputed refinement syntax (lowercase word sets + char
    /// arrays) for every seed instance this matcher can report as
    /// `matched_instance`, frozen at preparation time. The refinement
    /// kernels look the seed side of each similarity up here instead of
    /// re-tokenizing it per candidate.
    pub fn seed_syntax(&self) -> &SeedSyntax {
        &self.seed_syntax
    }

    /// Statistics of the phrase cache (shared by all clones of this
    /// matcher).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Semantic similarity between two phrases (used by the refinement
    /// step and by segmentation); `None` when either phrase has no
    /// in-vocabulary word.
    pub fn try_similarity(&self, a: &str, b: &str) -> Option<f64> {
        self.store.phrase_similarity(a, b)
    }

    /// [`SimilarityMatcher::try_similarity`] collapsed to `0.0` for
    /// out-of-vocabulary input. Lossy: an OOV phrase is
    /// indistinguishable from true orthogonality; callers that must
    /// tell the two apart use `try_similarity`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        self.try_similarity(a, b).unwrap_or(0.0)
    }

    /// `MATCHER.MATCH(p)`: extract candidate entities from phrase `p`.
    ///
    /// Enumerates contiguous subphrases (up to the configured length)
    /// that do not start or end with a stop-word and embeds each as a
    /// query vector. Among the clusters whose *best* representative
    /// reaches τ for the query, "the matcher identifies the concept e.C
    /// that semantically best fits the subphrase" — the one with the
    /// highest mean pairwise similarity — and reports one candidate per
    /// subphrase, with the best seed instance as `c_m`.
    pub fn match_phrase(&self, phrase: &str) -> Vec<CandidateEntity> {
        self.match_phrase_anchored(phrase, |_| true)
    }

    /// [`SimilarityMatcher::match_phrase`] with an *anchor* predicate:
    /// a subphrase is only considered when at least one of its words
    /// satisfies `anchor`. The pipeline passes a nominality test
    /// ("entities typically consist of noun phrases or subsequences
    /// thereof") so that bare-modifier subphrases — whose vectors sit
    /// inside every seed phrase that shares the adjective — cannot
    /// become entities.
    ///
    /// Each accepted subphrase is scored with one fused pass over the
    /// [`VectorIndex`]; distinct subphrases seen before are answered
    /// from the phrase cache. Results are identical either way.
    pub fn match_phrase_anchored(
        &self,
        phrase: &str,
        anchor: impl Fn(&str) -> bool,
    ) -> Vec<CandidateEntity> {
        let _span = self.metrics.as_ref().map(|m| m.match_phrase.start());
        let normalized = normalize_phrase(phrase);
        let words: Vec<&str> = normalized.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let max_len = self.config.max_subphrase_words.min(words.len());
        let mut out = Vec::new();

        for len in 1..=max_len {
            for start in 0..=(words.len() - len) {
                let slice = &words[start..start + len];
                if is_stopword(slice[0]) || is_stopword(slice[len - 1]) {
                    continue;
                }
                if !slice.iter().any(|w| anchor(w)) {
                    continue;
                }
                let sub = slice.join(" ");
                let scored = match self.cache.get(&sub) {
                    Some(cached) => {
                        if let Some(m) = &self.metrics {
                            m.cache_hits.inc();
                        }
                        cached
                    }
                    None => {
                        if self.cache.is_enabled() {
                            if let Some(m) = &self.metrics {
                                m.cache_misses.inc();
                            }
                        }
                        let scored = self.score_subphrase(&sub);
                        self.cache.put(&sub, scored.clone());
                        scored
                    }
                };
                // Replay the counter increments a fresh scan would have
                // made, so totals are independent of cache state.
                match scored {
                    CachedMatch::Oov => {}
                    CachedMatch::NoMatch => {
                        if let Some(m) = &self.metrics {
                            m.subphrases.inc();
                        }
                    }
                    CachedMatch::Match(candidate) => {
                        if let Some(m) = &self.metrics {
                            m.subphrases.inc();
                            m.candidates.inc();
                        }
                        out.push(candidate);
                    }
                }
            }
        }
        // Deterministic order: by cluster score descending.
        out.sort_by(|a, b| {
            b.cluster_score
                .total_cmp(&a.cluster_score)
                .then_with(|| a.phrase.cmp(&b.phrase))
                .then_with(|| a.concept.cmp(&b.concept))
        });
        out
    }

    /// Score one normalized subphrase against the index: embed, gate
    /// each concept on its best representative reaching τ, rank the
    /// survivors by mean pairwise similarity, then find `c_m` among the
    /// winner's seed rows.
    fn score_subphrase(&self, sub: &str) -> CachedMatch {
        let Some(query) = self.store.embed_phrase(sub) else {
            return CachedMatch::Oov;
        };
        let qn = query.norm();
        let q = query.as_slice();
        // Pruned triage needs a usable query direction; zero-norm
        // queries (all similarities exactly 0.0) take the exhaustive
        // path, which costs nothing extra at that degenerate point.
        let pruned = qn != 0.0 && !matches!(self.config.prune, PruneMode::Off);
        let mut stats = PruneStats::default();
        let best: Option<(usize, f64)> = if pruned {
            self.best_gated_concept_pruned(q, qn, &mut stats)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for scores in self.index.scan(q, qn) {
                let Some(best_rep) = scores.max else {
                    continue;
                };
                if best_rep + 1e-9 < self.config.tau {
                    continue;
                }
                let cluster_score = scores.mean.unwrap_or(0.0);
                if best.is_none_or(|(_, s)| cluster_score > s) {
                    best = Some((scores.concept, cluster_score));
                }
            }
            best
        };
        let scored = (|| {
            let (ci, cluster_score) = best?;
            let seed = if pruned {
                self.prune.best_seed(&self.index, ci, q, qn, &mut stats)
            } else {
                self.index.best_seed(ci, q, qn)
            };
            let (seed, seed_sim) = seed?;
            Some(CandidateEntity {
                phrase: sub.to_string(),
                concept: self.index.concept_name(ci).to_string(),
                matched_instance: seed.to_string(),
                semantic_score: seed_sim.clamp(0.0, 1.0),
                cluster_score,
            })
        })();
        if let Some(m) = &self.metrics {
            // Effectiveness counters (like cache misses) reflect work
            // actually done, so cache hits do not replay them.
            m.pruned_concepts.add(stats.concepts);
            m.pruned_clusters.add(stats.clusters);
            m.pruned_rows.add(stats.rows);
            m.rescored_rows.add(stats.rescored);
        }
        match scored {
            Some(candidate) => CachedMatch::Match(candidate),
            None => CachedMatch::NoMatch,
        }
    }

    /// The gate-and-rank of [`score_subphrase`](Self::score_subphrase),
    /// pruned. The exhaustive loop picks, among concepts whose best
    /// representative reaches τ, the one with the highest mean (ties to
    /// the lowest index). Means are O(d) via the cached row sums, so
    /// they are all computed exactly up front; concepts are then walked
    /// in (mean desc, index asc) order and the first one whose τ-gate
    /// passes is *the* winner — identical selection, but the expensive
    /// per-row gate runs only until the first survivor, and each gate
    /// prunes concept- and cluster-level blocks via their bounds.
    fn best_gated_concept_pruned(
        &self,
        q: &[f32],
        qn: f64,
        stats: &mut PruneStats,
    ) -> Option<(usize, f64)> {
        let quant = match self.config.prune {
            PruneMode::Approx { margin } => Some((self.prune.quantize_query(q), margin)),
            _ => None,
        };
        let mut order: Vec<(f64, usize)> = (0..self.index.concept_count())
            .filter_map(|ci| self.index.concept_mean(ci, q, qn).map(|m| (m, ci)))
            .collect();
        // Similarity means are never -0.0 (f64 sums that hit zero round
        // to +0.0), so total_cmp ranks exactly like the exhaustive
        // loop's numeric strict-greater with first-wins ties.
        order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for &(mean, ci) in &order {
            let quant_ref = quant.as_ref().map(|(qq, margin)| (qq, *margin));
            if self
                .prune
                .gate(&self.index, ci, q, qn, self.config.tau, quant_ref, stats)
            {
                return Some((ci, mean));
            }
        }
        None
    }

    /// The retained brute-force reference path: identical semantics to
    /// [`SimilarityMatcher::match_phrase_anchored`], but scanning the
    /// [`ConceptCluster`]s directly with per-pair `Vector` cosines — no
    /// index, no cache, no metrics. Kept off the hot path as ground
    /// truth for the index/cache equivalence property tests and as the
    /// baseline that `bench_matcher` measures the engine against.
    pub fn match_phrase_reference(
        &self,
        phrase: &str,
        anchor: impl Fn(&str) -> bool,
    ) -> Vec<CandidateEntity> {
        let normalized = normalize_phrase(phrase);
        let words: Vec<&str> = normalized.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let max_len = self.config.max_subphrase_words.min(words.len());
        let mut out = Vec::new();

        for len in 1..=max_len {
            for start in 0..=(words.len() - len) {
                let slice = &words[start..start + len];
                if is_stopword(slice[0]) || is_stopword(slice[len - 1]) {
                    continue;
                }
                if !slice.iter().any(|w| anchor(w)) {
                    continue;
                }
                let sub = slice.join(" ");
                let Some(query) = self.store.embed_phrase(&sub) else {
                    continue;
                };
                // Pick the single best-fitting accepted cluster.
                let mut best: Option<(&ConceptCluster, f64)> = None;
                for cluster in &self.clusters {
                    let Some(score) = cluster.score(&query) else {
                        continue;
                    };
                    if score.max + 1e-9 < self.config.tau {
                        continue;
                    }
                    if best.is_none_or(|(_, s)| score.mean > s) {
                        best = Some((cluster, score.mean));
                    }
                }
                let Some((cluster, cluster_score)) = best else {
                    continue;
                };
                let Some((seed, seed_sim)) = cluster.best_seed(&query) else {
                    continue;
                };
                out.push(CandidateEntity {
                    phrase: sub.clone(),
                    concept: cluster.concept.clone(),
                    matched_instance: seed.to_string(),
                    semantic_score: seed_sim.clamp(0.0, 1.0),
                    cluster_score,
                });
            }
        }
        out.sort_by(|a, b| {
            b.cluster_score
                .total_cmp(&a.cluster_score)
                .then_with(|| a.phrase.cmp(&b.phrase))
                .then_with(|| a.concept.cmp(&b.concept))
        });
        out
    }
}

impl CandidateSource for SimilarityMatcher {
    fn source_name(&self) -> &str {
        "semantic"
    }

    fn candidates_anchored(
        &self,
        phrase: &str,
        anchor: &dyn Fn(&str) -> bool,
    ) -> Vec<CandidateEntity> {
        self.match_phrase_anchored(phrase, anchor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_embed::SemanticSpaceBuilder;

    fn matcher(tau: f64) -> SimilarityMatcher {
        let store = SemanticSpaceBuilder::new(32, 9)
            .topic("anatomy")
            .correlated_topic("complication", "anatomy", 0.3)
            .words(
                "anatomy",
                [
                    "brain", "nerve", "lung", "spine", "ear", "system", "nervous",
                ],
            )
            .words(
                "complication",
                ["cancer", "tumor", "stroke", "deafness", "clot"],
            )
            .ambiguous_word("blood", "anatomy", "complication", 0.55)
            .generic_words(["slow-growing", "walk", "green", "people"])
            .build()
            .into_store();
        let concepts = vec![
            (
                "Anatomy".to_string(),
                vec!["nervous system".to_string(), "ear".to_string()],
            ),
            (
                "Complication".to_string(),
                vec!["skin cancer".to_string(), "stroke".to_string()],
            ),
        ];
        // "skin" is OOV on purpose; "cancer" carries the seed.
        SimilarityMatcher::fine_tune(&concepts, store, MatcherConfig::with_tau(tau))
    }

    #[test]
    fn exact_seed_word_matches_at_tau_1() {
        let m = matcher(1.0);
        let c = m.match_phrase("the ear");
        assert!(!c.is_empty());
        assert_eq!(c[0].concept, "Anatomy");
        assert_eq!(c[0].matched_instance, "ear");
        assert!((c[0].semantic_score - 1.0).abs() < 1e-6);
    }

    #[test]
    fn novel_instance_found_at_lower_tau() {
        // "brain" is NOT a table instance but is semantically close to
        // the Anatomy cluster — the paper's 'Malaria' case.
        let strict = matcher(1.0);
        let lenient = matcher(0.55);
        let unseen = "brain";
        let strict_hits = strict
            .match_phrase(unseen)
            .iter()
            .filter(|c| c.concept == "Anatomy")
            .count();
        let lenient_hits = lenient
            .match_phrase(unseen)
            .iter()
            .filter(|c| c.concept == "Anatomy")
            .count();
        assert_eq!(strict_hits, 0, "tau=1.0 must not match unseen instances");
        assert!(
            lenient_hits > 0,
            "low tau should match semantically close words"
        );
    }

    #[test]
    fn lower_tau_never_produces_fewer_candidates() {
        let phrases = ["brain tumor", "nerve damage", "stroke risk", "green walk"];
        for phrase in phrases {
            let hi = matcher(0.9).match_phrase(phrase).len();
            let lo = matcher(0.5).match_phrase(phrase).len();
            assert!(lo >= hi, "phrase {phrase}: lo {lo} < hi {hi}");
        }
    }

    #[test]
    fn subphrases_enumerated() {
        let m = matcher(0.6);
        let candidates = m.match_phrase("slow-growing non-cancerous brain tumor");
        // Subphrases like "brain" and "tumor" should appear.
        assert!(candidates.iter().any(|c| c.phrase == "brain"));
        assert!(candidates.iter().any(|c| c.phrase == "tumor"));
        // No candidate starts/ends with a stop-word.
        for c in &candidates {
            let words: Vec<&str> = c.phrase.split_whitespace().collect();
            assert!(!is_stopword(words[0]));
            assert!(!is_stopword(words[words.len() - 1]));
        }
    }

    #[test]
    fn ambiguous_word_resolves_to_single_best_concept() {
        // The matcher assigns *the* best-fitting concept per subphrase;
        // an ambiguous word therefore yields exactly one candidate, for
        // one of its two plausible concepts.
        let m = matcher(0.5);
        let candidates = m.match_phrase("blood");
        assert_eq!(candidates.len(), 1, "{candidates:?}");
        assert!(matches!(
            candidates[0].concept.as_str(),
            "Anatomy" | "Complication"
        ));
    }

    #[test]
    fn oov_phrase_yields_nothing() {
        let m = matcher(0.5);
        assert!(m.match_phrase("xyzzy plugh").is_empty());
        assert!(m.match_phrase("").is_empty());
        assert!(m.match_phrase("the of and").is_empty());
    }

    #[test]
    fn results_sorted_by_cluster_score() {
        let m = matcher(0.5);
        let c = m.match_phrase("brain tumor");
        assert!(c
            .windows(2)
            .all(|w| w[0].cluster_score >= w[1].cluster_score));
    }

    #[test]
    fn similarity_helper() {
        let m = matcher(0.7);
        assert!(m.similarity("brain", "nerve") > m.similarity("brain", "walk"));
        assert_eq!(m.similarity("xyzzy", "brain"), 0.0);
    }

    #[test]
    fn try_similarity_distinguishes_oov_from_orthogonal() {
        let m = matcher(0.7);
        assert!(m.try_similarity("brain", "nerve").is_some());
        assert_eq!(m.try_similarity("xyzzy", "brain"), None);
        assert_eq!(m.try_similarity("brain", "xyzzy"), None);
    }

    #[test]
    fn index_path_equals_reference_path() {
        for tau in [0.5, 0.7, 1.0] {
            let m = matcher(tau);
            for phrase in [
                "slow-growing non-cancerous brain tumor",
                "the nervous system",
                "blood clot in the lung",
                "green walk",
                "",
            ] {
                let via_index = m.match_phrase(phrase);
                let reference = m.match_phrase_reference(phrase, |_| true);
                assert_eq!(via_index, reference, "tau {tau}, phrase {phrase:?}");
            }
        }
    }

    #[test]
    fn repeated_phrases_hit_the_cache_with_identical_results() {
        let m = matcher(0.6);
        let cold = m.match_phrase("brain tumor");
        assert_eq!(m.cache_stats().hits, 0);
        let warm = m.match_phrase("brain tumor");
        assert_eq!(cold, warm);
        let stats = m.cache_stats();
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.len > 0);
    }

    #[test]
    fn disabled_cache_gives_identical_results() {
        let store_matcher = matcher(0.6);
        let mut config = MatcherConfig::with_tau(0.6);
        config.cache_capacity = 0;
        let uncached = SimilarityMatcher::fine_tune(
            &[
                (
                    "Anatomy".to_string(),
                    vec!["nervous system".to_string(), "ear".to_string()],
                ),
                (
                    "Complication".to_string(),
                    vec!["skin cancer".to_string(), "stroke".to_string()],
                ),
            ],
            store_matcher.store().clone(),
            config,
        );
        for phrase in ["brain tumor", "brain tumor", "the ear"] {
            assert_eq!(
                store_matcher.match_phrase(phrase),
                uncached.match_phrase(phrase)
            );
        }
        let stats = uncached.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.capacity), (0, 0, 0));
    }

    #[test]
    fn candidate_source_trait_drives_the_matcher() {
        let m = matcher(0.6);
        let source: &dyn CandidateSource = &m;
        assert_eq!(source.source_name(), "semantic");
        assert_eq!(
            source.candidates("brain tumor"),
            m.match_phrase("brain tumor")
        );
    }

    #[test]
    fn index_reflects_clusters() {
        let m = matcher(0.6);
        let total: usize = m.clusters().iter().map(|c| c.representative_count()).sum();
        assert_eq!(m.index().row_count(), total);
        assert_eq!(m.index().concept_count(), m.clusters().len());
    }
}
