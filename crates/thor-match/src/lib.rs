#![warn(missing_docs)]
//! # thor-match
//!
//! The semantic similarity matcher of THOR's Preparation and Entity
//! Extraction phases (the paper builds it on spaczz's
//! `SimilarityMatcher`; we implement the documented behaviour from
//! scratch).
//!
//! **Fine-tuning** (Phase ①, weak supervision): every schema concept `C`
//! is associated with a set of *representative vectors* — the embeddings
//! of its known table instances (*seeds*) plus every vocabulary word
//! whose similarity to a seed exceeds the user threshold τ. Together they
//! form a cluster that "semantically covers the domain of C". Raising τ
//! makes the system precision-oriented; lowering it recall-oriented.
//!
//! **Matching** (Phase ②): given a noun phrase, the matcher enumerates
//! its subphrases, embeds each as a mean-pooled query vector, assigns the
//! concept whose cluster has the highest mean pairwise similarity to the
//! query, and reports the best-matching *seed instance* `c_m` used later
//! by the syntactic refinement.
//!
//! **Preparation reuse**: [`PreparedMatcher`] freezes the fine-tuning
//! output (seed clusters + the untruncated τ-expansion candidate lists)
//! so one Preparation pass at the lowest τ can derive the matcher for
//! any τ′ ≥ τ — bit-identically to a fresh `fine_tune(τ′)`, because
//! both share the same construction path.

pub mod cluster;
pub mod matcher;
pub mod prepared;

pub use cluster::{ClusterScore, ConceptCluster};
pub use matcher::{CandidateEntity, MatcherConfig, SimilarityMatcher, TAU_RANGE};
pub use prepared::PreparedMatcher;
pub use thor_index::{
    CacheStats, CandidateSource, PhraseCache, PruneIndex, PruneMode, PruneStats, VectorIndex,
};
